"""Binary framed shuffle transport: struct-packed Writable pairs.

Why this exists: the pooled execution backends ship map output across
the process boundary, and pickling a list of per-record ``Writable``
objects costs more than the map work itself — ``BENCH_parallelism.json``
showed pooled runs *losing* to serial.  Real Hadoop moves map output as
compact binary IFile runs; this module is that idea.  A partition's
pairs become one ``bytes`` blob of type-tagged frames, decoded lazily
with ``memoryview`` slices on the reduce side.

Blob layout (all integers big-endian)::

    +------+-------+---------+----------------------------+
    | RWF1 | flags | count   | frame frame frame ...      |
    | 4 B  | 1 B   | u32     | key/value alternating      |
    +------+-------+---------+----------------------------+

    flags bit 0: every key is in non-descending sort order
                 (lets the reduce side k-way merge without re-sorting)

    frame := tag(1 B) + payload
      0x01 TEXT     u32 length + UTF-8 bytes
      0x02 INT32    >i  (IntWritable within 32 bits)
      0x03 INT64    >q  (IntWritable within 64 bits)
      0x04 LONG64   >q  (LongWritable within 64 bits)
      0x05 FLOAT    >d  (FloatWritable / DoubleWritable)
      0x06 NULL     (empty)
      0x07 INTBIG   u32 length + decimal ASCII (beyond 64 bits)
      0x08 LONGBIG  u32 length + decimal ASCII (beyond 64 bits)
      0x09 GENERIC  u16 classref length + "module:qualname" UTF-8
                    + u32 length + the Writable's encode() text

The *payload* width of every frame (tag and length prefixes excluded)
equals that Writable's ``serialized_size()`` — the invariant that keeps
the combiner lecture's byte counters equal to what actually crosses the
simulated network, asserted by ``tests/mapreduce/test_wire.py``.

Malformed input (truncated blob, unknown tag, bad magic, trailing
bytes) raises :class:`~repro.util.errors.WireFormatError` with the
offset, never raw ``struct.error`` noise.
"""

from __future__ import annotations

import struct
import sys
from typing import Iterable, Iterator

from repro.mapreduce.types import (
    INT32_MAX,
    INT32_MIN,
    INT64_MAX,
    INT64_MIN,
    FloatWritable,
    IntWritable,
    LongWritable,
    NullWritable,
    Text,
    Writable,
)
from repro.util.errors import WireFormatError

Pair = tuple[Writable, Writable]

MAGIC = b"RWF1"
FLAG_KEY_SORTED = 0x01
HEADER = struct.Struct(">4sBI")  # magic, flags, record count

TAG_TEXT = 0x01
TAG_INT32 = 0x02
TAG_INT64 = 0x03
TAG_LONG64 = 0x04
TAG_FLOAT = 0x05
TAG_NULL = 0x06
TAG_INTBIG = 0x07
TAG_LONGBIG = 0x08
TAG_GENERIC = 0x09

_U16 = struct.Struct(">H")
_U32 = struct.Struct(">I")
_I32 = struct.Struct(">i")
_I64 = struct.Struct(">q")
_F64 = struct.Struct(">d")


# ---------------------------------------------------------------------------
# encoding


def _class_ref(cls: type) -> str:
    return f"{cls.__module__}:{cls.__qualname__}"


_class_cache: dict[str, type] = {}


def _resolve_class(ref: str) -> type:
    """Resolve a ``module:qualname`` ref back to a Writable subclass."""
    cls = _class_cache.get(ref)
    if cls is not None:
        return cls
    module_name, _, qualname = ref.partition(":")
    module = sys.modules.get(module_name)
    if module is None:
        try:
            import importlib

            module = importlib.import_module(module_name)
        except ImportError as exc:
            raise WireFormatError(
                f"cannot decode frame: module {module_name!r} for "
                f"Writable class {ref!r} is not importable ({exc})"
            ) from None
    obj: object = module
    for part in qualname.split("."):
        obj = getattr(obj, part, None)
        if obj is None:
            raise WireFormatError(
                f"cannot decode frame: {ref!r} does not resolve to a class"
            )
    if not (isinstance(obj, type) and issubclass(obj, Writable)):
        raise WireFormatError(
            f"cannot decode frame: {ref!r} is not a Writable subclass"
        )
    _class_cache[ref] = obj
    return obj


def _encode_generic(out: list[bytes], w: Writable) -> int:
    """Frame a custom/record Writable by class reference + encode() text.

    Verified round-trippable at encode time: the ref must resolve back
    to the instance's own class (a class defined inside a function has
    a ``<locals>`` qualname and cannot), otherwise the caller falls
    back to the object path — the same constraint pickling has.
    """
    cls = type(w)
    ref = _class_ref(cls)
    if _resolve_class(ref) is not cls:
        raise WireFormatError(
            f"cannot frame {cls.__qualname__}: {ref!r} resolves to a "
            f"different class (shadowed or rebound name)"
        )
    ref_bytes = ref.encode("utf-8")
    if len(ref_bytes) > 0xFFFF:
        raise WireFormatError(f"class ref too long: {ref!r}")
    payload = w.encode().encode("utf-8")
    out.append(bytes((TAG_GENERIC,)))
    out.append(_U16.pack(len(ref_bytes)))
    out.append(ref_bytes)
    out.append(_U32.pack(len(payload)))
    out.append(payload)
    return len(payload)


def _encode_one(out: list[bytes], w: Writable) -> int:
    """Append one frame to ``out``; return its payload byte width."""
    cls = type(w)
    if cls is Text:
        payload = w.value.encode("utf-8")
        out.append(bytes((TAG_TEXT,)))
        out.append(_U32.pack(len(payload)))
        out.append(payload)
        return len(payload)
    if cls is IntWritable or cls is LongWritable:
        v = w.value
        if cls is IntWritable and INT32_MIN <= v <= INT32_MAX:
            out.append(bytes((TAG_INT32,)))
            out.append(_I32.pack(v))
            return 4
        if INT64_MIN <= v <= INT64_MAX:
            out.append(bytes((TAG_INT64 if cls is IntWritable else TAG_LONG64,)))
            out.append(_I64.pack(v))
            return 8
        payload = str(v).encode("ascii")
        out.append(bytes((TAG_INTBIG if cls is IntWritable else TAG_LONGBIG,)))
        out.append(_U32.pack(len(payload)))
        out.append(payload)
        return len(payload)
    if cls is FloatWritable:
        out.append(bytes((TAG_FLOAT,)))
        out.append(_F64.pack(w.value))
        return 8
    if cls is NullWritable:
        out.append(bytes((TAG_NULL,)))
        return 0
    if not isinstance(w, Writable):
        raise WireFormatError(
            f"cannot frame {type(w).__name__}: not a Writable"
        )
    return _encode_generic(out, w)


def encode_pairs(pairs: Iterable[Pair]) -> tuple[bytes, int]:
    """Frame a pair sequence into one blob.

    Returns ``(blob, payload_bytes)`` where ``payload_bytes`` is the sum
    of frame payload widths — by construction equal to
    :func:`~repro.mapreduce.shuffle.serialized_bytes` over the same
    pairs.  The key-sorted flag is computed during the same pass.
    """
    frames: list[bytes] = []
    payload_bytes = 0
    count = 0
    key_sorted = True
    prev_key = None
    for key, value in pairs:
        if key_sorted:
            sk = key.sort_key()
            try:
                if prev_key is not None and sk < prev_key:
                    key_sorted = False
            except TypeError:
                # Incomparable (mixed-type) keys: not sortable, so not
                # sorted.  Encoding them is still fine — only the merge
                # optimisation is off the table.
                key_sorted = False
            prev_key = sk
        payload_bytes += _encode_one(frames, key)
        payload_bytes += _encode_one(frames, value)
        count += 1
    flags = FLAG_KEY_SORTED if key_sorted else 0
    blob = HEADER.pack(MAGIC, flags, count) + b"".join(frames)
    return blob, payload_bytes


# ---------------------------------------------------------------------------
# decoding


def _parse_header(buf) -> tuple[memoryview, int, int]:
    view = memoryview(buf)
    if len(view) < HEADER.size:
        raise WireFormatError(
            f"truncated blob: {len(view)} bytes, header needs {HEADER.size}"
        )
    magic, flags, count = HEADER.unpack_from(view, 0)
    if magic != MAGIC:
        raise WireFormatError(f"bad magic {bytes(magic)!r}; expected {MAGIC!r}")
    return view, flags, count


def blob_key_sorted(buf) -> bool:
    """Read a blob's key-sorted flag without decoding any frames."""
    _, flags, _ = _parse_header(buf)
    return bool(flags & FLAG_KEY_SORTED)


def blob_record_count(buf) -> int:
    """Read a blob's record count without decoding any frames."""
    _, _, count = _parse_header(buf)
    return count


def _truncated(offset: int, need: int, have: int) -> WireFormatError:
    return WireFormatError(
        f"truncated frame at offset {offset}: need {need} bytes, have {have}"
    )


def _decode_one(view: memoryview, offset: int) -> tuple[Writable, int]:
    """Decode one frame; return (writable, next offset).

    Decoded instances bypass constructor validation (the wire format is
    the validation) and arrive with ``serialized_size`` pre-memoised
    from the frame width, so reduce-side byte accounting never
    re-encodes them.
    """
    end = len(view)
    if offset >= end:
        raise _truncated(offset, 1, 0)
    tag = view[offset]
    offset += 1
    try:
        if tag == TAG_TEXT:
            (length,) = _U32.unpack_from(view, offset)
            offset += 4
            if offset + length > end:
                raise _truncated(offset, length, end - offset)
            w = Text.__new__(Text)
            w.value = str(view[offset : offset + length], "utf-8")
            w._size_memo = length
            return w, offset + length
        if tag == TAG_INT32:
            (v,) = _I32.unpack_from(view, offset)
            w = IntWritable.__new__(IntWritable)
            w.value = v
            w._size_memo = 4
            return w, offset + 4
        if tag == TAG_INT64 or tag == TAG_LONG64:
            (v,) = _I64.unpack_from(view, offset)
            cls = IntWritable if tag == TAG_INT64 else LongWritable
            w = cls.__new__(cls)
            w.value = v
            w._size_memo = 8
            return w, offset + 8
        if tag == TAG_FLOAT:
            (v,) = _F64.unpack_from(view, offset)
            w = FloatWritable.__new__(FloatWritable)
            w.value = v
            w._size_memo = 8
            return w, offset + 8
        if tag == TAG_NULL:
            return NullWritable(), offset
        if tag == TAG_INTBIG or tag == TAG_LONGBIG:
            (length,) = _U32.unpack_from(view, offset)
            offset += 4
            if offset + length > end:
                raise _truncated(offset, length, end - offset)
            cls = IntWritable if tag == TAG_INTBIG else LongWritable
            w = cls.__new__(cls)
            w.value = int(str(view[offset : offset + length], "ascii"))
            w._size_memo = length
            return w, offset + length
        if tag == TAG_GENERIC:
            (ref_len,) = _U16.unpack_from(view, offset)
            offset += 2
            if offset + ref_len > end:
                raise _truncated(offset, ref_len, end - offset)
            ref = str(view[offset : offset + ref_len], "utf-8")
            offset += ref_len
            (length,) = _U32.unpack_from(view, offset)
            offset += 4
            if offset + length > end:
                raise _truncated(offset, length, end - offset)
            cls = _resolve_class(ref)
            w = cls.decode(str(view[offset : offset + length], "utf-8"))
            w._size_memo = length
            return w, offset + length
    except struct.error as exc:
        raise WireFormatError(
            f"truncated frame at offset {offset}: {exc}"
        ) from None
    except (UnicodeDecodeError, ValueError) as exc:
        raise WireFormatError(
            f"corrupt frame payload at offset {offset}: {exc}"
        ) from None
    raise WireFormatError(f"unknown frame tag 0x{tag:02x} at offset {offset - 1}")


def _decode_frames(view: memoryview, count: int) -> Iterator[Pair]:
    offset = HEADER.size
    decode = _decode_one
    for _ in range(count):
        key, offset = decode(view, offset)
        value, offset = decode(view, offset)
        yield key, value
    if offset != len(view):
        raise WireFormatError(
            f"{len(view) - offset} trailing bytes after {count} records"
        )


def decode_pairs(buf) -> Iterator[Pair]:
    """Lazily decode a blob back into Writable pairs.

    Header validation is eager (bad blobs fail at call time); frame
    decoding happens as the iterator is consumed.
    """
    view, _flags, count = _parse_header(buf)
    return _decode_frames(view, count)


def decode_pair_list(buf) -> list[Pair]:
    """Decode a whole blob into a list (the reduce fetch path)."""
    return list(decode_pairs(buf))


# ---------------------------------------------------------------------------
# framed result transport


class FramedPairs:
    """A task's output pairs, held as one wire blob.

    Drop-in for the pair list it replaces — ``len()``, iteration and
    truthiness behave identically — but what crosses a process boundary
    is a single ``bytes`` object instead of N pickled Writables.
    """

    __slots__ = ("blob", "count")

    def __init__(self, blob: bytes, count: int):
        self.blob = blob
        self.count = count

    @classmethod
    def from_pairs(cls, pairs: list[Pair]) -> "FramedPairs":
        blob, _ = encode_pairs(pairs)
        return cls(blob, len(pairs))

    def __len__(self) -> int:
        return self.count

    def __bool__(self) -> bool:
        return self.count > 0

    def __iter__(self) -> Iterator[Pair]:
        return decode_pairs(self.blob)

    def to_list(self) -> list[Pair]:
        return list(self)

    def __repr__(self) -> str:
        return f"FramedPairs(count={self.count}, blob_bytes={len(self.blob)})"


# ---------------------------------------------------------------------------
# shared-memory descriptor frames
#
# The shm shuffle plane (``repro.mapreduce.shm``) moves frozen RWF1
# blobs into shared segments; what crosses the process pool is one of
# these descriptors per partition.  Layout (big-endian)::
#
#     +------+------+----------+--------------+--------+--------+
#     | RWD1 | kind | name len | segment name | offset | length |
#     | 4 B  | 1 B  | u16      | UTF-8        | u64    | u64    |
#     +------+------+----------+--------------+--------+--------+
#
#     kind 0x01: POSIX shared memory (multiprocessing.shared_memory)
#     kind 0x02: file-backed arena (mmap over a host temp file)
#
# Malformed descriptors (bad magic, unknown kind, truncation at any
# boundary, trailing bytes) raise WireFormatError, same contract as the
# pair codec above.

DESC_MAGIC = b"RWD1"
DESC_KIND_POSIX = 0x01
DESC_KIND_FILE = 0x02
_DESC_KINDS = (DESC_KIND_POSIX, DESC_KIND_FILE)
_DESC_HEADER = struct.Struct(">4sBH")  # magic, kind, segment-name length
_DESC_RANGE = struct.Struct(">QQ")  # offset, length
_U64_MAX = (1 << 64) - 1


class ShmSlice:
    """One partition blob's address inside a shared segment.

    The triple the tentpole is named after: ``(segment, offset,
    length)`` plus an arena ``kind``.  Instances pickle *through the
    binary codec* (``__reduce__`` packs, the constructor-side unpack
    validates), so every descriptor that crosses the pool exercises the
    same encode/decode path the property tests fuzz.
    """

    __slots__ = ("kind", "segment", "offset", "length")

    def __init__(self, kind: int, segment: str, offset: int, length: int):
        if kind not in _DESC_KINDS:
            raise WireFormatError(f"unknown shm descriptor kind 0x{kind:02x}")
        if not segment:
            raise WireFormatError("shm descriptor needs a segment name")
        if len(segment.encode("utf-8")) > 0xFFFF:
            raise WireFormatError(f"segment name too long: {segment!r}")
        if not (0 <= offset <= _U64_MAX) or not (0 <= length <= _U64_MAX):
            raise WireFormatError(
                f"shm descriptor range out of u64: offset={offset} "
                f"length={length}"
            )
        self.kind = kind
        self.segment = segment
        self.offset = offset
        self.length = length

    def pack(self) -> bytes:
        name = self.segment.encode("utf-8")
        return (
            _DESC_HEADER.pack(DESC_MAGIC, self.kind, len(name))
            + name
            + _DESC_RANGE.pack(self.offset, self.length)
        )

    @classmethod
    def unpack(cls, buf) -> "ShmSlice":
        view = memoryview(buf)
        if len(view) < _DESC_HEADER.size:
            raise WireFormatError(
                f"truncated shm descriptor: {len(view)} bytes, header "
                f"needs {_DESC_HEADER.size}"
            )
        magic, kind, name_len = _DESC_HEADER.unpack_from(view, 0)
        if magic != DESC_MAGIC:
            raise WireFormatError(
                f"bad shm descriptor magic {bytes(magic)!r}; "
                f"expected {DESC_MAGIC!r}"
            )
        offset = _DESC_HEADER.size
        end = offset + name_len + _DESC_RANGE.size
        if len(view) < end:
            raise _truncated(offset, end - offset, len(view) - offset)
        if len(view) > end:
            raise WireFormatError(
                f"{len(view) - end} trailing bytes after shm descriptor"
            )
        try:
            segment = str(view[offset : offset + name_len], "utf-8")
        except UnicodeDecodeError as exc:
            raise WireFormatError(
                f"corrupt shm descriptor segment name: {exc}"
            ) from None
        start, length = _DESC_RANGE.unpack_from(view, offset + name_len)
        return cls(kind, segment, start, length)

    def __reduce__(self):
        return (_unpack_slice, (self.pack(),))

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, ShmSlice)
            and self.kind == other.kind
            and self.segment == other.segment
            and self.offset == other.offset
            and self.length == other.length
        )

    def __hash__(self) -> int:
        return hash((self.kind, self.segment, self.offset, self.length))

    def __repr__(self) -> str:
        return (
            f"ShmSlice(kind=0x{self.kind:02x}, segment={self.segment!r}, "
            f"offset={self.offset}, length={self.length})"
        )


def _unpack_slice(blob: bytes) -> ShmSlice:
    return ShmSlice.unpack(blob)
