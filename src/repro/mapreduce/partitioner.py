"""Partitioners: which reduce task sees which key.

The default hash partitioner uses CRC32 rather than Python's ``hash``
so partition assignment is stable across processes and runs — the same
reason Hadoop uses ``key.hashCode()`` deterministically.
"""

from __future__ import annotations

import zlib

from repro.mapreduce.types import Writable


class Partitioner:
    """Base contract: map a key to a partition in ``[0, num_reduces)``."""

    def partition(self, key: Writable, num_reduces: int) -> int:
        raise NotImplementedError


class HashPartitioner(Partitioner):
    """CRC32(key bytes) mod reduces — Hadoop's default, stabilized."""

    def partition(self, key: Writable, num_reduces: int) -> int:
        if num_reduces <= 1:
            return 0
        digest = zlib.crc32(key.encode().encode("utf-8")) & 0x7FFFFFFF
        return digest % num_reduces


class KeyFieldPartitioner(Partitioner):
    """Partition on a prefix field of the key (split at ``separator``).

    Useful when composite keys like ``"airline|month"`` must keep all of
    one airline's records in one reduce.
    """

    def __init__(self, separator: str = "|", field_index: int = 0):
        self.separator = separator
        self.field_index = field_index
        self._hash = HashPartitioner()

    def partition(self, key: Writable, num_reduces: int) -> int:
        from repro.mapreduce.types import Text

        fields = key.encode().split(self.separator)
        index = min(self.field_index, len(fields) - 1)
        return self._hash.partition(Text(fields[index]), num_reduces)
