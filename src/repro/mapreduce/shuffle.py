"""Sort, partition, combine, group: the machinery between map and reduce.

This module is pure data-plumbing over Writable pairs; the byte and
record accounting it returns feeds the counters the course's combiner
lecture has students compare ("increased map task run time ... versus
reduced network traffic").

Hot-path notes: these functions sit inside every task attempt, so they
are written for throughput — a single bucketing pass that materialises
only non-empty partitions, per-instance ``serialized_size`` memos (see
:class:`~repro.mapreduce.types.Writable`), per-partition byte memos on
:class:`MapOutput`, and a ``presorted`` fast path for the combiner so a
map task sorts its output exactly once.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator

from repro.mapreduce.api import Context, Reducer
from repro.mapreduce.counters import C, Counters
from repro.mapreduce.partitioner import Partitioner
from repro.mapreduce.types import Writable

Pair = tuple[Writable, Writable]


def serialized_bytes(pairs: Iterable[Pair]) -> int:
    """Wire size of a pair list (key bytes + value bytes per record)."""
    return sum(k.serialized_size() + v.serialized_size() for k, v in pairs)


def sort_pairs(pairs: list[Pair]) -> list[Pair]:
    """Sort by key (stable, so equal-key value order is emission order)."""
    return sorted(pairs, key=_pair_sort_key)


def _pair_sort_key(kv: Pair):
    return kv[0].sort_key()


def is_key_sorted(pairs: list[Pair]) -> bool:
    """True when ``pairs`` is non-descending by key sort order."""
    return all(
        pairs[i][0].sort_key() <= pairs[i + 1][0].sort_key()
        for i in range(len(pairs) - 1)
    )


def group_by_key(sorted_pairs: Iterable[Pair]) -> Iterator[tuple[Writable, list[Writable]]]:
    """Group a key-sorted pair stream into (key, values) runs."""
    current_key: Writable | None = None
    values: list[Writable] = []
    for key, value in sorted_pairs:
        if current_key is None or key != current_key:
            if current_key is not None:
                yield current_key, values
            current_key, values = key, [value]
        else:
            values.append(value)
    if current_key is not None:
        yield current_key, values


def partition_pairs(
    pairs: Iterable[Pair], partitioner: Partitioner, num_reduces: int
) -> dict[int, list[Pair]]:
    """Bucket pairs by reduce partition in a single pass.

    Only partitions that receive at least one pair are materialised;
    consumers read absent partitions via ``.get(p, ())``.  For wide
    reduce fan-outs this skips allocating hundreds of empty lists per
    map task.
    """
    buckets: dict[int, list[Pair]] = {}
    part = partitioner.partition
    get = buckets.get
    for kv in pairs:
        p = part(kv[0], num_reduces)
        bucket = get(p)
        if bucket is None:
            buckets[p] = [kv]
        else:
            bucket.append(kv)
    return buckets


def run_combiner(
    combiner_cls: type[Reducer],
    pairs: list[Pair],
    context: Context,
    counters: Counters,
    presorted: bool = False,
) -> list[Pair]:
    """Apply a combiner to one map task's (sorted) output.

    Returns the combined pair list.  Counter deltas
    (COMBINE_INPUT/OUTPUT_RECORDS) land in ``counters``.

    ``presorted=True`` promises the caller already key-sorted ``pairs``
    (the map task sorts its output exactly once before partitioning, and
    a stable sort bucketed on a key-derived partition stays sorted), so
    the redundant per-partition re-sort is skipped.  The promise is
    checked in debug mode.
    """
    counters.increment(C.COMBINE_INPUT_RECORDS, len(pairs))
    if presorted:
        if __debug__ and not is_key_sorted(pairs):
            raise AssertionError(
                "run_combiner(presorted=True) received unsorted pairs"
            )
        source = pairs
    else:
        source = sort_pairs(pairs)
    combiner = combiner_cls()
    combiner.setup(context)
    for key, values in group_by_key(source):
        combiner.reduce(key, values, context)
    combiner.cleanup(context)
    combined = context.drain()
    counters.increment(C.COMBINE_OUTPUT_RECORDS, len(combined))
    return combined


@dataclass
class MapOutput:
    """One completed map task's partitioned, (optionally) combined output.

    Partition pair lists are immutable once the map task finishes, so
    per-partition byte totals are memoised: the JobTracker and every
    reduce's shuffle pricing re-read them repeatedly, and recomputing
    meant re-walking every pair list per reduce per map.
    """

    task_index: int
    node: str
    partitions: dict[int, list[Pair]] = field(default_factory=dict)
    #: partition -> serialized bytes, filled lazily.
    _bytes_memo: dict[int, int] = field(
        default_factory=dict, repr=False, compare=False
    )

    def partition_bytes(self, partition: int) -> int:
        size = self._bytes_memo.get(partition)
        if size is None:
            size = serialized_bytes(self.partitions.get(partition, ()))
            self._bytes_memo[partition] = size
        return size

    def total_bytes(self) -> int:
        return sum(self.partition_bytes(p) for p in self.partitions)

    def total_records(self) -> int:
        return sum(len(v) for v in self.partitions.values())


def merge_for_reduce(
    outputs: Iterable[MapOutput], partition: int
) -> list[Pair]:
    """Merge one partition's pairs from every map output, key-sorted.

    A k-way merge in Hadoop; a concatenate-and-sort here (same result,
    and the sort cost model charges the equivalent comparisons).  Map
    outputs arrive key-sorted per partition, so Timsort's galloping
    merge makes this pass close to linear.
    """
    merged: list[Pair] = []
    for output in outputs:
        merged.extend(output.partitions.get(partition, ()))
    return sort_pairs(merged)
