"""Sort, partition, combine, group: the machinery between map and reduce.

This module is pure data-plumbing over Writable pairs; the byte and
record accounting it returns feeds the counters the course's combiner
lecture has students compare ("increased map task run time ... versus
reduced network traffic").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator

from repro.mapreduce.api import Context, Reducer
from repro.mapreduce.counters import C, Counters
from repro.mapreduce.partitioner import Partitioner
from repro.mapreduce.types import Writable

Pair = tuple[Writable, Writable]


def serialized_bytes(pairs: Iterable[Pair]) -> int:
    """Wire size of a pair list (key bytes + value bytes per record)."""
    return sum(k.serialized_size() + v.serialized_size() for k, v in pairs)


def sort_pairs(pairs: list[Pair]) -> list[Pair]:
    """Sort by key (stable, so equal-key value order is emission order)."""
    return sorted(pairs, key=lambda kv: kv[0].sort_key())


def group_by_key(sorted_pairs: Iterable[Pair]) -> Iterator[tuple[Writable, list[Writable]]]:
    """Group a key-sorted pair stream into (key, values) runs."""
    current_key: Writable | None = None
    values: list[Writable] = []
    for key, value in sorted_pairs:
        if current_key is None or key != current_key:
            if current_key is not None:
                yield current_key, values
            current_key, values = key, [value]
        else:
            values.append(value)
    if current_key is not None:
        yield current_key, values


def partition_pairs(
    pairs: Iterable[Pair], partitioner: Partitioner, num_reduces: int
) -> dict[int, list[Pair]]:
    """Bucket pairs by reduce partition (all partitions present)."""
    buckets: dict[int, list[Pair]] = {p: [] for p in range(num_reduces)}
    for key, value in pairs:
        buckets[partitioner.partition(key, num_reduces)].append((key, value))
    return buckets


def run_combiner(
    combiner_cls: type[Reducer],
    pairs: list[Pair],
    context: Context,
    counters: Counters,
) -> list[Pair]:
    """Apply a combiner to one map task's (sorted) output.

    Returns the combined pair list.  Counter deltas
    (COMBINE_INPUT/OUTPUT_RECORDS) land in ``counters``.
    """
    counters.increment(C.COMBINE_INPUT_RECORDS, len(pairs))
    combiner = combiner_cls()
    combiner.setup(context)
    for key, values in group_by_key(sort_pairs(pairs)):
        combiner.reduce(key, values, context)
    combiner.cleanup(context)
    combined = context.drain()
    counters.increment(C.COMBINE_OUTPUT_RECORDS, len(combined))
    return combined


@dataclass
class MapOutput:
    """One completed map task's partitioned, (optionally) combined output."""

    task_index: int
    node: str
    partitions: dict[int, list[Pair]] = field(default_factory=dict)

    def partition_bytes(self, partition: int) -> int:
        return serialized_bytes(self.partitions.get(partition, ()))

    def total_bytes(self) -> int:
        return sum(self.partition_bytes(p) for p in self.partitions)

    def total_records(self) -> int:
        return sum(len(v) for v in self.partitions.values())


def merge_for_reduce(
    outputs: Iterable[MapOutput], partition: int
) -> list[Pair]:
    """Merge one partition's pairs from every map output, key-sorted.

    A k-way merge in Hadoop; a concatenate-and-sort here (same result,
    and the sort cost model charges the equivalent comparisons).
    """
    merged: list[Pair] = []
    for output in outputs:
        merged.extend(output.partitions.get(partition, ()))
    return sort_pairs(merged)
