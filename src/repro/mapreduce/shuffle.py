"""Sort, partition, combine, group: the machinery between map and reduce.

This module is pure data-plumbing over Writable pairs; the byte and
record accounting it returns feeds the counters the course's combiner
lecture has students compare ("increased map task run time ... versus
reduced network traffic").

Hot-path notes: these functions sit inside every task attempt, so they
are written for throughput — a single bucketing pass that materialises
only non-empty partitions, per-instance ``serialized_size`` memos (see
:class:`~repro.mapreduce.types.Writable`), per-partition byte memos on
:class:`MapOutput`, and a ``presorted`` fast path for the combiner so a
map task sorts its output exactly once.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Iterable, Iterator

from repro.mapreduce import wire
from repro.mapreduce.api import Context, Reducer
from repro.mapreduce.counters import C, Counters, PerfStats, _perf_clock
from repro.mapreduce.partitioner import Partitioner
from repro.mapreduce.types import Writable
from repro.util.errors import WireFormatError

Pair = tuple[Writable, Writable]


def serialized_bytes(pairs: Iterable[Pair]) -> int:
    """Wire size of a pair list (key bytes + value bytes per record)."""
    return sum(k.serialized_size() + v.serialized_size() for k, v in pairs)


def sort_pairs(pairs: list[Pair]) -> list[Pair]:
    """Sort by key (stable, so equal-key value order is emission order)."""
    return sorted(pairs, key=_pair_sort_key)


def _pair_sort_key(kv: Pair):
    return kv[0].sort_key()


def is_key_sorted(pairs: list[Pair]) -> bool:
    """True when ``pairs`` is non-descending by key sort order."""
    return all(
        pairs[i][0].sort_key() <= pairs[i + 1][0].sort_key()
        for i in range(len(pairs) - 1)
    )


def group_by_key(sorted_pairs: Iterable[Pair]) -> Iterator[tuple[Writable, list[Writable]]]:
    """Group a key-sorted pair stream into (key, values) runs."""
    current_key: Writable | None = None
    values: list[Writable] = []
    for key, value in sorted_pairs:
        if current_key is None or key != current_key:
            if current_key is not None:
                yield current_key, values
            current_key, values = key, [value]
        else:
            values.append(value)
    if current_key is not None:
        yield current_key, values


def partition_pairs(
    pairs: Iterable[Pair], partitioner: Partitioner, num_reduces: int
) -> dict[int, list[Pair]]:
    """Bucket pairs by reduce partition in a single pass.

    Only partitions that receive at least one pair are materialised;
    consumers read absent partitions via ``.get(p, ())``.  For wide
    reduce fan-outs this skips allocating hundreds of empty lists per
    map task.
    """
    buckets: dict[int, list[Pair]] = {}
    part = partitioner.partition
    get = buckets.get
    for kv in pairs:
        p = part(kv[0], num_reduces)
        bucket = get(p)
        if bucket is None:
            buckets[p] = [kv]
        else:
            bucket.append(kv)
    return buckets


def run_combiner(
    combiner_cls: type[Reducer],
    pairs: list[Pair],
    context: Context,
    counters: Counters,
    presorted: bool = False,
) -> list[Pair]:
    """Apply a combiner to one map task's (sorted) output.

    Returns the combined pair list.  Counter deltas
    (COMBINE_INPUT/OUTPUT_RECORDS) land in ``counters``.

    ``presorted=True`` promises the caller already key-sorted ``pairs``
    (the map task sorts its output exactly once before partitioning, and
    a stable sort bucketed on a key-derived partition stays sorted), so
    the redundant per-partition re-sort is skipped.  The promise is
    checked in debug mode.
    """
    counters.increment(C.COMBINE_INPUT_RECORDS, len(pairs))
    if presorted:
        if __debug__ and not is_key_sorted(pairs):
            raise AssertionError(
                "run_combiner(presorted=True) received unsorted pairs"
            )
        source = pairs
    else:
        source = sort_pairs(pairs)
    combiner = combiner_cls()
    combiner.setup(context)
    for key, values in group_by_key(source):
        combiner.reduce(key, values, context)
    combiner.cleanup(context)
    combined = context.drain()
    counters.increment(C.COMBINE_OUTPUT_RECORDS, len(combined))
    return combined


@dataclass
class MapOutput:
    """One completed map task's partitioned, (optionally) combined output.

    Three representations share this class:

    - **object form** (``partitions``): partition -> pair list, the
      historical shape, used by the serial path and the pooled
      ``shuffle_transport="object"`` baseline;
    - **framed form** (``frames``): partition -> wire blob, produced by
      :meth:`freeze` inside pool workers so a map result crosses the
      process boundary as a few ``bytes`` objects instead of thousands
      of pickled Writables;
    - **descriptor form** (``descriptors``): partition ->
      :class:`~repro.mapreduce.wire.ShmSlice`, produced by
      :meth:`publish_shm` under ``shuffle_transport="shm"`` — the blobs
      live in a shared-memory segment and only the (segment, offset,
      length) triples cross the pool; readers decode from a shared
      ``memoryview`` via :func:`repro.mapreduce.shm.attach_slice`.

    Partition contents are immutable once the map task finishes, so
    per-partition byte/record totals are memoised: the JobTracker and
    every reduce's shuffle pricing re-read them repeatedly.  Byte
    totals are *payload* bytes (identical between the two forms — the
    codec's frame payload width equals ``serialized_size()``), which is
    what keeps framed and object runs' counters bit-identical.
    """

    task_index: int
    node: str
    #: Object form; ``None`` once frozen into frames.
    partitions: dict[int, list[Pair]] | None = field(default_factory=dict)
    #: Framed form; ``None`` until :meth:`freeze`.
    frames: dict[int, bytes] | None = None
    #: Descriptor form; ``None`` until :meth:`publish_shm` (which also
    #: drops ``frames`` — the blobs then live only in shared memory).
    descriptors: "dict[int, wire.ShmSlice] | None" = None
    #: partition -> serialized payload bytes, filled lazily.
    _bytes_memo: dict[int, int] = field(
        default_factory=dict, repr=False, compare=False
    )
    #: partition -> record count (filled at freeze time).
    _records_memo: dict[int, int] = field(
        default_factory=dict, repr=False, compare=False
    )

    @property
    def frozen(self) -> bool:
        """In a binary form (framed or descriptor) the framed reduce
        path can consume."""
        return self.frames is not None or self.descriptors is not None

    def freeze(self, perf: PerfStats | None = None) -> bool:
        """Encode every partition into a wire blob and drop the lists.

        Returns ``True`` on success.  A partition that cannot be framed
        (a Writable subclass whose class reference does not round-trip)
        leaves the output in object form — the object path ships it
        instead, mirroring the backend's pickling-error fallback — and
        returns ``False``.  Byte/record memos are filled from the
        encoder's own accounting, so later pricing never re-encodes.
        """
        if self.frozen:
            return True
        assert self.partitions is not None
        t0 = _perf_clock() if perf is not None else 0.0
        frames: dict[int, bytes] = {}
        try:
            for partition, pairs in self.partitions.items():
                blob, payload_bytes = wire.encode_pairs(pairs)
                frames[partition] = blob
                self._bytes_memo[partition] = payload_bytes
                self._records_memo[partition] = len(pairs)
        except WireFormatError:
            self._records_memo.clear()
            return False
        self.frames = frames
        self.partitions = None
        if perf is not None:
            perf.map_serialize_ms += (_perf_clock() - t0) * 1e3
            perf.blobs_encoded += len(frames)
            perf.bytes_framed += sum(len(b) for b in frames.values())
        return True

    def publish_shm(self, token: str, perf: PerfStats | None = None) -> bool:
        """Move frozen frames into a shared segment (descriptor form).

        ``token`` is the parent's :class:`~repro.mapreduce.shm.ShmScope`
        token.  Publishing is strictly best-effort: on any failure (no
        frames, empty output, shm arena unavailable or full) the output
        stays framed — always correct, just copied across the pool —
        and this returns ``False``.  On success the frames are dropped;
        the blob bytes then exist exactly once on the host, inside the
        segment.
        """
        if self.descriptors is not None:
            return True
        if not self.frames:
            return False
        from repro.mapreduce import shm

        descriptors = shm.publish_frames(self.frames, token, perf)
        if descriptors is None:
            return False
        self.descriptors = descriptors
        self.frames = None
        return True

    def _blob_for(self, partition: int, perf: PerfStats | None = None):
        """The partition's wire blob — ``bytes`` (framed), a shared
        ``memoryview`` (descriptor form, attaching lazily), or ``None``
        when absent.  Callers only in binary forms."""
        if self.descriptors is not None:
            desc = self.descriptors.get(partition)
            if desc is None:
                return None
            from repro.mapreduce import shm

            return shm.attach_slice(desc, perf)
        assert self.frames is not None
        return self.frames.get(partition)

    def partition_ids(self) -> list[int]:
        """Sorted ids of non-empty partitions (any form)."""
        if self.descriptors is not None:
            source = self.descriptors
        elif self.frames is not None:
            source = self.frames
        else:
            source = self.partitions
        return sorted(source)

    def pairs_for(self, partition: int, perf: PerfStats | None = None) -> list[Pair]:
        """This partition's pairs as a list, decoding when binary.

        Callers must treat the result as read-only: in object form it
        is the partition's own list, not a copy.
        """
        if self.partitions is not None:
            return self.partitions.get(partition, [])
        if self.descriptors is not None and perf is not None:
            desc = self.descriptors.get(partition)
            if desc is not None:
                # These bytes never crossed the pool: the reader decodes
                # straight from the shared mapping.
                perf.copy_avoided_bytes += desc.length
        blob = self._blob_for(partition, perf)
        if blob is None:
            return []
        pairs = wire.decode_pair_list(blob)
        if perf is not None:
            perf.blobs_decoded += 1
        return pairs

    def iter_partition(self, partition: int) -> Iterator[Pair]:
        """Lazily iterate one partition's pairs (any form)."""
        if self.partitions is not None:
            return iter(self.partitions.get(partition, ()))
        blob = self._blob_for(partition)
        return iter(()) if blob is None else wire.decode_pairs(blob)

    def partition_key_sorted(self, partition: int) -> bool:
        """Is this partition non-descending by key?  O(1) when binary
        (the codec records the flag at encode time)."""
        if self.partitions is not None:
            return is_key_sorted(self.partitions.get(partition, []))
        blob = self._blob_for(partition)
        return True if blob is None else wire.blob_key_sorted(blob)

    def slice_for(self, partition: int) -> "MapOutput":
        """A slim copy carrying only one partition's frames/descriptors.

        Framed/shm reduce dispatch ships these so a reduce attempt's
        IPC payload holds just its own partition, not every partition
        of every map — and in descriptor form the payload is a ~50-byte
        triple regardless of blob size.  Only meaningful on frozen
        outputs; an unfrozen output is returned whole (the object path
        keeps its historical full-ship behaviour).
        """
        if self.partitions is not None:
            return self
        sliced = MapOutput(
            task_index=self.task_index, node=self.node, partitions=None
        )
        if self.descriptors is not None:
            desc = self.descriptors.get(partition)
            sliced.descriptors = {} if desc is None else {partition: desc}
        else:
            blob = self.frames.get(partition)
            sliced.frames = {} if blob is None else {partition: blob}
        if partition in self._bytes_memo:
            sliced._bytes_memo[partition] = self._bytes_memo[partition]
        if partition in self._records_memo:
            sliced._records_memo[partition] = self._records_memo[partition]
        return sliced

    def partition_records(self, partition: int) -> int:
        count = self._records_memo.get(partition)
        if count is None:
            if self.partitions is not None:
                count = len(self.partitions.get(partition, ()))
            else:
                blob = self._blob_for(partition)
                count = 0 if blob is None else wire.blob_record_count(blob)
            self._records_memo[partition] = count
        return count

    def partition_bytes(self, partition: int) -> int:
        size = self._bytes_memo.get(partition)
        if size is None:
            if self.partitions is not None:
                size = serialized_bytes(self.partitions.get(partition, ()))
            else:
                # Freeze always fills the memo before publish, so binary
                # forms only miss here for an absent (empty) partition —
                # or a hand-built output, priced by decoding.
                blob = self._blob_for(partition)
                if blob is None:
                    size = 0
                else:
                    size = serialized_bytes(self.pairs_for(partition))
            self._bytes_memo[partition] = size
        return size

    def total_bytes(self) -> int:
        return sum(self.partition_bytes(p) for p in self.partition_ids())

    def total_records(self) -> int:
        return sum(self.partition_records(p) for p in self.partition_ids())


def merge_for_reduce(
    outputs: Iterable[MapOutput], partition: int
) -> list[Pair]:
    """Merge one partition's pairs from every map output, key-sorted.

    A k-way merge in Hadoop; a concatenate-and-sort here (same result,
    and the sort cost model charges the equivalent comparisons).  Map
    outputs arrive key-sorted per partition, so Timsort's galloping
    merge makes this pass close to linear.
    """
    merged: list[Pair] = []
    for output in outputs:
        merged.extend(output.pairs_for(partition))
    return sort_pairs(merged)


def framed_merge_for_reduce(
    outputs: Iterable[MapOutput], partition: int, perf: PerfStats | None = None
) -> list[Pair]:
    """Merge one partition from framed map outputs, k-way.

    Each map's blob decodes to an already key-sorted run (the map task
    sorted before partitioning; the codec recorded the flag), so the
    runs heap-merge without re-sorting.  ``heapq.merge`` is stable and
    prefers earlier iterables on equal keys — map order, the exact
    sequence :func:`merge_for_reduce`'s concatenate-and-stable-sort
    produces — so framed and object reduces see identical input.  Any
    unsorted run (custom partitioner games) falls back to the full
    sort.
    """
    t0 = _perf_clock() if perf is not None else 0.0
    runs: list[list[Pair]] = []
    all_sorted = True
    for output in outputs:
        pairs = output.pairs_for(partition, perf)
        if pairs:
            runs.append(pairs)
            all_sorted = all_sorted and output.partition_key_sorted(partition)
    if perf is not None:
        t1 = _perf_clock()
        perf.shuffle_decode_ms += (t1 - t0) * 1e3
        t0 = t1
    if not runs:
        return []
    if len(runs) == 1:
        merged = runs[0] if all_sorted else sort_pairs(runs[0])
    elif all_sorted:
        merged = list(heapq.merge(*runs, key=_pair_sort_key))
    else:
        concat: list[Pair] = []
        for run in runs:
            concat.extend(run)
        merged = sort_pairs(concat)
    if perf is not None:
        perf.merge_ms += (_perf_clock() - t0) * 1e3
    return merged


def external_sorted(
    pairs: list[Pair], spill_limit: int, perf: PerfStats | None = None
) -> Iterator[Pair]:
    """Key-sort via IFile-style spill runs + heap merge.

    Emission-order chunks of ``spill_limit`` records are each stably
    sorted, framed, and written to host-local disk
    (:class:`~repro.mapreduce.blockio.SpillFile`); the runs are then
    k-way merged from zero-copy mmap views, so only one run's records
    are materialised as Python objects at a time during the merge.

    Determinism: the chunks partition emission order, each chunk sort
    is stable, and ``heapq.merge`` is stable preferring earlier
    iterables (= earlier chunks = earlier emission) on equal keys — so
    the yielded sequence is *exactly* ``sort_pairs(pairs)``, which the
    spill property tests assert.
    """
    from repro.mapreduce.blockio import SpillFile

    t0 = _perf_clock() if perf is not None else 0.0
    spills: list[SpillFile] = []
    runs: list[Iterator[Pair]] = []
    try:
        for start in range(0, len(pairs), spill_limit):
            chunk = sort_pairs(pairs[start : start + spill_limit])
            blob, _ = wire.encode_pairs(chunk)
            spills.append(SpillFile.write(blob))
        if perf is not None:
            perf.spill_ms += (_perf_clock() - t0) * 1e3
            perf.spill_runs += len(spills)
        runs = [wire.decode_pairs(spill.view()) for spill in spills]
        yield from heapq.merge(*runs, key=_pair_sort_key)
    finally:
        # Release the decode generators' memoryview exports before
        # closing the mmaps underneath them (else mmap.close raises
        # BufferError when the caller abandons the iterator early).
        for run in runs:
            run.close()
        runs.clear()
        for spill in spills:
            spill.close()
