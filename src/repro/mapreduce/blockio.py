"""Task-side HDFS block I/O with locality accounting.

Map tasks do not read whole files; they read *their block*, ideally from
the local disk.  The :class:`BlockFetcher` implements that path: nearest
live replica, checksum verification, corrupt-replica failover and
reporting, and per-read locality classification — the numbers behind the
DATA_LOCAL/RACK_LOCAL/OFF_RACK map counters in the job report.
"""

from __future__ import annotations

import mmap
import tempfile
from dataclasses import dataclass
from typing import Callable

from repro.cluster.network import NetworkModel
from repro.hdfs.datanode import DataNode
from repro.hdfs.namenode import NameNode
from repro.util.errors import (
    BlockNotFoundError,
    CorruptBlockError,
    DataNodeDownError,
    HdfsError,
)


class SpillFile:
    """One IFile-style spill run on host-local disk.

    Map-side external sorts (``MapReduceConfig.spill_record_limit``)
    write each sorted run as a wire blob through this class and read it
    back as a zero-copy ``memoryview`` over an ``mmap``, so only one
    run's records are ever held as Python objects at a time.  These are
    host temp files (the task's scratch disk), not simulated HDFS
    blocks; the simulated cost of spilling is priced separately by the
    CostModel.
    """

    __slots__ = ("_file", "_mmap")

    def __init__(self, file, mapped: mmap.mmap):
        self._file = file
        self._mmap = mapped

    @classmethod
    def write(cls, blob: bytes) -> "SpillFile":
        """Persist one sorted run; the file vanishes on close/GC."""
        file = tempfile.TemporaryFile(prefix="repro-spill-")
        file.write(blob)
        file.flush()
        mapped = mmap.mmap(file.fileno(), 0, access=mmap.ACCESS_READ)
        return cls(file, mapped)

    def view(self) -> memoryview:
        """The run's bytes, zero-copy."""
        return memoryview(self._mmap)

    def __len__(self) -> int:
        return len(self._mmap)

    def close(self) -> None:
        self._mmap.close()
        self._file.close()


@dataclass
class BlockRead:
    """Result of one block (or partial block) read."""

    data: bytes
    elapsed: float
    locality: str  # node_local | rack_local | off_rack
    source: str


class BlockFetcher:
    """Reads file blocks on behalf of tasks running on cluster nodes."""

    def __init__(
        self,
        namenode: NameNode,
        dn_lookup: Callable[[str], DataNode],
        network: NetworkModel,
    ):
        self.namenode = namenode
        self.dn_lookup = dn_lookup
        self.network = network

    # ------------------------------------------------------------------
    def block_layout(self, path: str) -> tuple[list[int], list[tuple[str, ...]]]:
        """Lengths and replica locations of a file's blocks (for splits)."""
        located = self.namenode.get_block_locations(path)
        lengths = [lb.block.length for lb in located]
        locations = [tuple(lb.locations) for lb in located]
        return lengths, locations

    def read_block(
        self,
        path: str,
        block_index: int,
        node: str | None,
        max_bytes: int | None = None,
        offset: int = 0,
    ) -> BlockRead:
        """Read one block — or the range ``[offset, offset+max_bytes)``
        of it — from the nearest live replica.

        Ranged reads verify only the checksum chunks the range touches
        and move only the range's bytes over the simulated network, so
        record-continuation probes stop paying for block prefixes the
        task already holds.  Whole-block reads (``offset == 0``,
        ``max_bytes is None``) keep the DataNode's verified-block cache
        in play.
        """
        located = self.namenode.get_block_locations(path, client_node=node)
        if block_index >= len(located):
            raise IndexError(
                f"{path} has {len(located)} blocks, asked for {block_index}"
            )
        lb = located[block_index]
        whole_block = offset == 0 and max_bytes is None
        errors: list[str] = []
        for dn_name in lb.locations:
            try:
                datanode = self.dn_lookup(dn_name)
                if whole_block:
                    data = datanode.read_block(lb.block.block_id)
                else:
                    data = bytes(
                        datanode.read_block_range(lb.block.block_id, offset, max_bytes)
                    )
            except CorruptBlockError:
                self.namenode.report_bad_block(lb.block.block_id, dn_name)
                errors.append(f"{dn_name}: corrupt")
                continue
            except (DataNodeDownError, BlockNotFoundError, KeyError) as exc:
                errors.append(f"{dn_name}: {exc}")
                continue
            elapsed = datanode.node.disk.read_time(len(data)) * datanode.disk_slow_factor
            locality = self._classify(node, dn_name)
            if locality != "node_local":
                if node is not None and node in self.network.topology:
                    elapsed += self.network.transfer_time(dn_name, node, len(data))
                else:
                    self.network.counters.off_rack += len(data)
                    slowest = self.network.nic_bw / self.network.rack_oversubscription
                    elapsed += self.network.latency + len(data) / slowest
            return BlockRead(
                data=data, elapsed=elapsed, locality=locality, source=dn_name
            )
        raise HdfsError(
            f"no readable replica for block {block_index} of {path}: {errors}"
        )

    def _classify(self, node: str | None, source: str) -> str:
        if node is None or node not in self.network.topology:
            return "off_rack"
        distance = self.network.topology.distance(node, source)
        return {0: "node_local", 2: "rack_local"}.get(distance, "off_rack")

    # ------------------------------------------------------------------
    def make_fetch(self, node: str | None, tally: dict[str, int] | None = None):
        """Adapt to the :data:`~repro.mapreduce.inputformat.BlockFetch`
        signature, optionally tallying locality per call."""

        def fetch(path: str, block_index: int, max_bytes: int | None, offset: int = 0):
            read = self.read_block(path, block_index, node, max_bytes, offset)
            if tally is not None:
                tally[read.locality] = tally.get(read.locality, 0) + 1
            return read.data, read.elapsed

        return fetch

    def read_whole_file(self, path: str, node: str | None) -> tuple[str, float]:
        """Side-file read: stream every block to the task's node."""
        located = self.namenode.get_block_locations(path, client_node=node)
        pieces: list[bytes] = []
        elapsed = 0.0
        for index in range(len(located)):
            read = self.read_block(path, index, node)
            pieces.append(read.data)
            elapsed += read.elapsed
        return b"".join(pieces).decode("utf-8"), elapsed
