"""Shared-memory shuffle plane: segments, scopes, and the attach cache.

PR 4's framed transport shrank what crosses the process pool to one
blob per partition — but the blob itself still rode the pickle pipe,
so every byte of map output was copied twice per hop (worker pickle →
pipe → parent unpickle, and again parent → reduce worker).  This
module removes the copies: a map worker writes its frozen RWF1 blobs
into one shared segment and ships only
:class:`~repro.mapreduce.wire.ShmSlice` descriptors; a reduce worker
attaches the segment once and decodes straight from a ``memoryview``
over the shared mapping.  A shuffle blob is materialised exactly once
on the host.

Two arenas implement the segment, chosen per-platform (or forced by
``MapReduceConfig.shm_arena``):

- ``posix`` — ``multiprocessing.shared_memory`` (``/dev/shm`` on
  Linux).  The default wherever POSIX shared memory exists.
- ``file`` — plain temp files under a per-scope directory, attached
  via ``mmap`` exactly like :class:`~repro.mapreduce.blockio.SpillFile`
  spill runs.  The fallback for hosts without POSIX shm, and a useful
  forcing knob for tests.

Lifecycle (see DESIGN.md §4f for the diagram)::

    parent                         worker
    ------                         ------
    ShmScope() ── token ──▶  publish_frames(frames, token)
        │                          │  create segment, copy blobs, close
        │        ◀── descriptors ──┘  (segment persists; creator may die)
    scope.adopt_output(...)
        │          reduce worker: attach_slice(desc) → shared memoryview
    scope.release()   unlink adopted + glob-purge orphans (crashed
                      workers), drop cached attachments, exactly once

``resource_tracker`` bookkeeping: on POSIX, CPython registers a segment
name with a resource-tracker process on *every* ``SharedMemory`` open —
create and attach alike.  The tracker is spawned lazily per process, so
pool workers forked before the parent ever registered anything each get
their *own* tracker, whose cache the parent's unlink can never balance:
at worker shutdown those trackers would warn about (and re-unlink)
segments the scope already cleaned up.  We therefore opt every handle
out of tracker bookkeeping the moment it is opened
(:func:`_untrack` — the scope owns segment lifetime, not the opening
process), keeping every tracker's cache balanced in every start-method
and process topology.  The trade: a SIGKILLed *parent* leaks segments
until reboot, which is exactly the backstop :func:`release_all_scopes`
(run from backend shutdown and ``atexit``) exists to make irrelevant —
even a ``KeyboardInterrupt`` that skips the runner's ``finally`` cannot
leak a segment past process exit.
"""

from __future__ import annotations

import atexit
import mmap
import os
import shutil
import tempfile
import threading

from repro.mapreduce.counters import PerfStats
from repro.mapreduce.wire import DESC_KIND_FILE, DESC_KIND_POSIX, ShmSlice
from repro.util.errors import ConfigError, WireFormatError

#: Arena names accepted by ``MapReduceConfig.shm_arena``.
ARENA_NAMES = ("auto", "posix", "file")

#: Where Linux materialises POSIX shared memory (for orphan scans).
_POSIX_DIR = "/dev/shm"

#: Per-process caps on the reader-side attach cache.  Segments are
#: unmapped LRU-first past either bound; a mapping pinned by live
#: decode views survives eviction (see :class:`_Attachment.close`).
ATTACH_CACHE_SEGMENTS = 64
ATTACH_CACHE_BYTES = 256 << 20

#: Attempts to find an unused segment name before giving up (collisions
#: need a recycled worker pid *and* a matching per-process counter).
_NAME_ATTEMPTS = 32


def _shared_memory():
    """The stdlib shared_memory module, imported on first use."""
    from multiprocessing import shared_memory

    return shared_memory


def _untrack(seg) -> None:
    """Opt one just-opened SharedMemory handle out of resource-tracker
    cleanup: segment lifetime belongs to the owning :class:`ShmScope`,
    and leaving the registration in place makes forked pool workers'
    per-process trackers warn about (and racily re-unlink) names the
    scope already released.  Uses the registered form of the name
    (``seg._name``, leading slash included) so the unregister matches
    the register ``SharedMemory.__init__`` just performed in this same
    process."""
    from multiprocessing import resource_tracker

    try:
        resource_tracker.unregister(seg._name, "shared_memory")
    except OSError:  # pragma: no cover - tracker pipe gone at exit
        pass


def have_posix_shm() -> bool:
    """Can this host back segments with POSIX shared memory?"""
    if os.name != "posix":
        return False
    try:
        _shared_memory()
    except ImportError:  # minimal builds without _posixshmem
        return False
    return True


def resolve_arena(name: str = "auto") -> str:
    """Resolve an arena knob value to a concrete arena kind."""
    if name not in ARENA_NAMES:
        raise ConfigError(
            f"unknown shm arena {name!r}; expected one of {ARENA_NAMES}"
        )
    if name == "auto":
        return "posix" if have_posix_shm() else "file"
    if name == "posix" and not have_posix_shm():
        raise ConfigError("shm_arena='posix' but this host has no POSIX shm")
    return name


# ---------------------------------------------------------------------------
# segment naming

_seq_lock = threading.Lock()
_seq = 0


def _next_seq() -> int:
    global _seq
    with _seq_lock:
        _seq += 1
        return _seq


# ---------------------------------------------------------------------------
# worker side: publish


def publish_frames(
    frames: dict[int, bytes], token: str, perf: PerfStats | None = None
) -> dict[int, ShmSlice] | None:
    """Write one map output's frame blobs into a fresh shared segment.

    ``token`` is a scope token (``"posix:<prefix>"`` /
    ``"file:<directory>"``) minted by the parent's :class:`ShmScope`.
    Returns partition → :class:`~repro.mapreduce.wire.ShmSlice`, or
    ``None`` when publishing is not possible (empty output, shm mount
    full, scope directory already released) — callers then keep the
    framed form, which is always correct, just slower.
    """
    kind, _, base = token.partition(":")
    order = sorted(frames)
    total = sum(len(frames[p]) for p in order)
    if total == 0:
        return None
    blobs = [(p, frames[p]) for p in order]
    try:
        if kind == "posix":
            descriptors = _publish_posix(base, blobs, total)
        elif kind == "file":
            descriptors = _publish_file(base, blobs, total)
        else:
            raise ConfigError(f"malformed shm scope token {token!r}")
    except OSError:
        return None
    if descriptors is not None and perf is not None:
        perf.segments_created += 1
        perf.shm_bytes += total
    return descriptors


def _publish_posix(
    prefix: str, blobs: list[tuple[int, bytes]], total: int
) -> dict[int, ShmSlice] | None:
    shared_memory = _shared_memory()
    seg = None
    name = ""
    for _attempt in range(_NAME_ATTEMPTS):
        name = f"{prefix}-{os.getpid():x}-{_next_seq():x}"
        try:
            seg = shared_memory.SharedMemory(name=name, create=True, size=total)
            break
        except FileExistsError:
            continue
    if seg is None:
        return None
    _untrack(seg)
    try:
        return _fill(seg.buf, name, DESC_KIND_POSIX, blobs)
    except BaseException:
        seg.unlink()
        raise
    finally:
        seg.close()


def _publish_file(
    root: str, blobs: list[tuple[int, bytes]], _total: int
) -> dict[int, ShmSlice] | None:
    fd = None
    path = ""
    for _attempt in range(_NAME_ATTEMPTS):
        path = os.path.join(root, f"{os.getpid():x}-{_next_seq():x}.seg")
        try:
            fd = os.open(path, os.O_WRONLY | os.O_CREAT | os.O_EXCL, 0o600)
            break
        except FileExistsError:
            continue
    if fd is None:
        return None
    try:
        descriptors: dict[int, ShmSlice] = {}
        offset = 0
        for partition, blob in blobs:
            os.write(fd, blob)
            descriptors[partition] = ShmSlice(
                DESC_KIND_FILE, path, offset, len(blob)
            )
            offset += len(blob)
        return descriptors
    except BaseException:
        os.unlink(path)
        raise
    finally:
        os.close(fd)


def _fill(
    buf, name: str, kind: int, blobs: list[tuple[int, bytes]]
) -> dict[int, ShmSlice]:
    descriptors: dict[int, ShmSlice] = {}
    offset = 0
    for partition, blob in blobs:
        n = len(blob)
        buf[offset : offset + n] = blob
        descriptors[partition] = ShmSlice(kind, name, offset, n)
        offset += n
    return descriptors


# ---------------------------------------------------------------------------
# reader side: the per-process attach cache
#
# Reducers attach *lazily*, on the first decode of a slice, and each
# process maps a segment at most once no matter how many partitions it
# reads from it — that is why descriptors stay cheap even when one map
# output fans out to every reduce.


class _Attachment:
    """One process-local mapping of a segment (all slices share it)."""

    __slots__ = ("view", "nbytes", "_closers")

    def __init__(self, view, nbytes: int, closers: tuple):
        self.view = view
        self.nbytes = nbytes
        self._closers = closers

    @classmethod
    def open_posix(cls, name: str) -> "_Attachment":
        seg = _shared_memory().SharedMemory(name=name)
        _untrack(seg)  # readers never own the segment's lifetime
        # seg itself stays alive through the bound close method.
        return cls(seg.buf, seg.size, (seg.close,))

    @classmethod
    def open_file(cls, path: str) -> "_Attachment":
        f = open(path, "rb")
        try:
            mapped = mmap.mmap(f.fileno(), 0, access=mmap.ACCESS_READ)
        except BaseException:
            f.close()
            raise
        return cls(memoryview(mapped), len(mapped), (mapped.close, f.close))

    def close(self) -> bool:
        """Unmap; ``False`` when live decode views still pin the buffer
        (the caller parks the attachment instead of crashing — it is
        reclaimed at process exit, and the segment's *name* is already
        unlinked, so nothing survives the run either way)."""
        try:
            if isinstance(self.view, memoryview):
                self.view.release()
            for closer in self._closers:
                closer()
        except BufferError:
            return False
        return True


_attach_lock = threading.Lock()
#: (kind, segment) -> _Attachment, oldest-attached first (LRU via
#: pop/re-insert on hit).
_attached: dict[tuple[int, str], _Attachment] = {}
#: Attachments whose close() was refused by live exports; referenced
#: here so teardown never runs close() from __del__ mid-decode.
_zombies: list[_Attachment] = []


def attach_slice(desc: ShmSlice, perf: PerfStats | None = None) -> memoryview:
    """A zero-copy ``memoryview`` over one descriptor's blob.

    Attaches the segment on first touch (counted in
    ``perf.segments_attached``); later slices into the same segment hit
    the cache.  Out-of-range descriptors raise
    :class:`~repro.util.errors.WireFormatError` rather than returning a
    short view that would decode as a truncated blob.
    """
    key = (desc.kind, desc.segment)
    with _attach_lock:
        att = _attached.pop(key, None)
        if att is not None:
            _attached[key] = att  # refresh LRU recency
        else:
            if desc.kind == DESC_KIND_POSIX:
                att = _Attachment.open_posix(desc.segment)
            else:
                att = _Attachment.open_file(desc.segment)
            _attached[key] = att
            if perf is not None:
                perf.segments_attached += 1
            _evict_locked()
    if desc.offset + desc.length > att.nbytes:
        raise WireFormatError(
            f"shm descriptor out of range: [{desc.offset}, "
            f"{desc.offset + desc.length}) beyond segment of {att.nbytes} "
            f"bytes ({desc.segment!r})"
        )
    return att.view[desc.offset : desc.offset + desc.length]


def _evict_locked() -> None:
    while len(_attached) > 1 and (
        len(_attached) > ATTACH_CACHE_SEGMENTS
        or sum(a.nbytes for a in _attached.values()) > ATTACH_CACHE_BYTES
    ):
        key = next(iter(_attached))  # oldest entry (insertion order)
        att = _attached.pop(key)
        if not att.close():
            _zombies.append(att)


def _detach_where(match) -> None:
    """Close (or park) every cached attachment whose key matches."""
    with _attach_lock:
        for key in [k for k in _attached if match(k)]:
            att = _attached.pop(key)
            if not att.close():
                _zombies.append(att)


def attached_segment_count() -> int:
    """Segments currently mapped by this process's attach cache."""
    with _attach_lock:
        return len(_attached)


# ---------------------------------------------------------------------------
# parent side: scopes


_scopes_lock = threading.Lock()
#: token -> ShmScope for every not-yet-released scope in this process.
_live_scopes: dict[str, "ShmScope"] = {}


class ShmScope:
    """Parent-side registry and janitor for one run's segments.

    Created by the runner/JobTracker before pooled tasks launch; its
    :attr:`token` travels to map workers (it is the only shm state that
    crosses the pool besides descriptors).  :meth:`release` — idempotent,
    called from the runner's ``finally``, the JobTracker's job
    finish/fail paths, backend shutdown and the ``atexit`` backstop —
    unlinks every adopted segment *and* glob-purges orphans left by
    workers that died between publishing and returning.
    """

    def __init__(self, arena: str = "auto"):
        self.arena = resolve_arena(arena)
        if self.arena == "posix":
            self._prefix = f"repro-shm-{os.getpid():x}-{_next_seq():x}"
            self._root = None
            self.token = f"posix:{self._prefix}"
        else:
            self._root = tempfile.mkdtemp(prefix="repro-shm-")
            self._prefix = None
            self.token = f"file:{self._root}"
        self._adopted: set[str] = set()
        self._lock = threading.Lock()
        self._released = False
        with _scopes_lock:
            _live_scopes[self.token] = self

    @property
    def released(self) -> bool:
        return self._released

    def adopt_output(self, output) -> None:
        """Register a map output's segments for exact unlink at release."""
        descriptors = getattr(output, "descriptors", None)
        if not descriptors:
            return
        with self._lock:
            for partition in sorted(descriptors):
                self._adopted.add(descriptors[partition].segment)

    def live_segments(self) -> list[str]:
        """Names of this scope's segments that exist on the host now."""
        if self.arena == "posix":
            return self._scan_posix()
        try:
            entries = os.listdir(self._root)
        except OSError:
            return []
        return sorted(os.path.join(self._root, name) for name in entries)

    def _scan_posix(self) -> list[str]:
        try:
            entries = os.listdir(_POSIX_DIR)
        except OSError:
            entries = []
        return sorted(n for n in entries if n.startswith(self._prefix))

    def release(self) -> None:
        """Unlink everything this scope owns, exactly once."""
        with self._lock:
            if self._released:
                return
            self._released = True
            adopted = sorted(self._adopted)
        with _scopes_lock:
            _live_scopes.pop(self.token, None)
        if self.arena == "posix":
            # Drop this process's own mappings first so unlinked memory
            # is actually freed (pooled-threads runs attach in-process).
            prefix = self._prefix
            _detach_where(
                lambda key: key[0] == DESC_KIND_POSIX
                and key[1].startswith(prefix)
            )
            names = set(adopted)
            names.update(self._scan_posix())  # crashed workers' orphans
            for name in sorted(names):
                _unlink_posix(name)
        else:
            root = self._root
            _detach_where(
                lambda key: key[0] == DESC_KIND_FILE
                and key[1].startswith(root + os.sep)
            )
            shutil.rmtree(root, ignore_errors=True)


def _unlink_posix(name: str) -> None:
    """Remove one segment by name; silent when already gone.

    The attach registers the name with this process's resource tracker
    and ``unlink`` immediately unregisters it — balanced, so no
    :func:`_untrack` needed on this path.
    """
    shared_memory = _shared_memory()
    try:
        seg = shared_memory.SharedMemory(name=name)
    except FileNotFoundError:
        return
    try:
        seg.unlink()
    finally:
        seg.close()


def live_scope_tokens() -> list[str]:
    """Tokens of every unreleased scope in this process (for tests)."""
    with _scopes_lock:
        return sorted(_live_scopes)


def release_all_scopes() -> None:
    """Release every live scope (backend shutdown / atexit backstop).

    Also drains this process's attach cache: pool *workers* hold
    mappings for segments whose scope lives in the parent, so their
    cached file handles would otherwise survive to interpreter exit
    and trip ResourceWarning.
    """
    with _scopes_lock:
        scopes = [_live_scopes[token] for token in sorted(_live_scopes)]
    for scope in scopes:
        scope.release()
    _detach_where(lambda key: True)
    # Retry parked attachments: views exported at detach time have
    # usually been dropped by now, letting their files finally close.
    with _attach_lock:
        parked, _zombies[:] = list(_zombies), []
    for att in parked:
        if not att.close():
            with _attach_lock:  # pragma: no cover - view still exported
                _zombies.append(att)


atexit.register(release_all_scopes)
