"""Writable types: Hadoop's serialization contract, in Python.

Why bother with Writables in a Python engine?  Two of the course's
assignments hinge on them: the combiner variant of the airline-delay
example "requires the implementation of a customized Hadoop Value
class", and the top-rater assignment needs "a customized Hadoop output
value class, as the information needed in the reduce step requires
several values for each key".  Serialized sizes also drive the shuffle
byte accounting students observe in job reports.

:func:`record_writable` builds such custom value classes declaratively::

    SumCount = record_writable("SumCount", [("total", float), ("count", int)])
"""

from __future__ import annotations

import functools
import sys
from typing import Any, Callable

from repro.util.errors import InvalidWritableError

#: Fixed-width integer ranges shared with the binary shuffle codec
#: (``repro.mapreduce.wire``): serialized sizes below must agree with
#: the codec's frame payload widths byte-for-byte.
INT32_MIN, INT32_MAX = -(2**31), 2**31 - 1
INT64_MIN, INT64_MAX = -(2**63), 2**63 - 1


class Writable:
    """Base contract: serializable to/from UTF-8 text, totally ordered.

    Text serialization (rather than binary) keeps job output files
    human-readable — what ``hadoop fs -cat`` on a ``part-00000`` shows.

    Instances are value objects: once constructed they are never
    mutated, which is what lets :meth:`serialized_size` (and composite
    sort keys) be memoised per instance — the shuffle byte-accounting
    walks the same pair lists many times (map output, per-partition
    spill, per-reduce fetch pricing), and without the memo every walk
    re-encodes every value.
    """

    #: Memo slots shared by all subclasses (which declare ``__slots__``
    #: of their own, so instances carry no ``__dict__``).
    __slots__ = ("_size_memo", "_key_memo")

    def encode(self) -> str:
        raise NotImplementedError

    @classmethod
    def decode(cls, text: str) -> "Writable":
        raise NotImplementedError

    def serialized_size(self) -> int:
        """Bytes this value contributes to map output / shuffle traffic.

        Memoised: Writables are immutable, so the first encode's size
        is reused for every later accounting pass.
        """
        try:
            return self._size_memo
        except AttributeError:
            size = len(self.encode().encode("utf-8"))
            self._size_memo = size
            return size

    # Ordering / equality via the sort key -------------------------------
    def sort_key(self) -> Any:
        raise NotImplementedError

    def __eq__(self, other: object) -> bool:
        return type(self) is type(other) and self.sort_key() == other.sort_key()  # type: ignore[union-attr]

    def __lt__(self, other: "Writable") -> bool:
        self._check_comparable(other)
        return self.sort_key() < other.sort_key()

    def __le__(self, other: "Writable") -> bool:
        self._check_comparable(other)
        return self.sort_key() <= other.sort_key()

    def __hash__(self) -> int:
        return hash((type(self).__name__, self.sort_key()))

    def _check_comparable(self, other: object) -> None:
        if type(self) is not type(other):
            raise InvalidWritableError(
                f"cannot compare {type(self).__name__} with {type(other).__name__}"
            )

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.encode()!r})"


class Text(Writable):
    """A UTF-8 string key/value."""

    __slots__ = ("value",)

    def __init__(self, value: str):
        if not isinstance(value, str):
            raise InvalidWritableError(f"Text requires str, got {type(value).__name__}")
        self.value = value

    def encode(self) -> str:
        return self.value

    @classmethod
    def decode(cls, text: str) -> "Text":
        return cls(text)

    def sort_key(self) -> str:
        return self.value


class IntWritable(Writable):
    """A (bounded, in Java) integer; unbounded here but named faithfully."""

    __slots__ = ("value",)

    def __init__(self, value: int):
        if isinstance(value, bool) or not isinstance(value, int):
            raise InvalidWritableError(
                f"IntWritable requires int, got {type(value).__name__}"
            )
        self.value = value

    def encode(self) -> str:
        return str(self.value)

    @classmethod
    def decode(cls, text: str) -> "IntWritable":
        return cls(int(text))

    def sort_key(self) -> int:
        return self.value

    def serialized_size(self) -> int:
        # Hadoop writes ints as 4 bytes on the wire; Python ints are
        # unbounded, so values past 32 bits widen to a long (8 bytes)
        # and past 64 bits to their decimal text — keeping this number
        # equal to the bytes the binary shuffle codec actually emits
        # (asserted by tests/mapreduce/test_wire.py).
        if INT32_MIN <= self.value <= INT32_MAX:
            return 4
        if INT64_MIN <= self.value <= INT64_MAX:
            return 8
        return len(str(self.value))


class LongWritable(IntWritable):
    """A 64-bit integer (e.g., TextInputFormat's byte-offset keys)."""

    __slots__ = ()

    def serialized_size(self) -> int:
        if INT64_MIN <= self.value <= INT64_MAX:
            return 8
        return len(str(self.value))


class FloatWritable(Writable):
    """A floating-point value (DoubleWritable is the same thing here)."""

    __slots__ = ("value",)

    def __init__(self, value: float):
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            raise InvalidWritableError(
                f"FloatWritable requires float, got {type(value).__name__}"
            )
        self.value = float(value)

    def encode(self) -> str:
        return repr(self.value)

    @classmethod
    def decode(cls, text: str) -> "FloatWritable":
        return cls(float(text))

    def sort_key(self) -> float:
        return self.value

    def serialized_size(self) -> int:
        return 8


DoubleWritable = FloatWritable


class NullWritable(Writable):
    """The empty placeholder (e.g., keys of a value-only output)."""

    _instance: "NullWritable | None" = None

    def __new__(cls) -> "NullWritable":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def encode(self) -> str:
        return ""

    @classmethod
    def decode(cls, text: str) -> "NullWritable":
        return cls()

    def sort_key(self) -> str:
        return ""

    def serialized_size(self) -> int:
        return 0


_FIELD_SEP = "\x01"  # never appears in course data


def record_writable(
    name: str, fields: list[tuple[str, Callable[[str], Any]]]
) -> type:
    """Create a custom composite Writable class (a "custom value class").

    ``fields`` is a list of ``(field_name, type_constructor)`` pairs; the
    constructor (``int``, ``float``, ``str``) also parses the field back
    from text.

    >>> SumCount = record_writable("SumCount", [("total", float), ("count", int)])
    >>> sc = SumCount(total=12.5, count=3)
    >>> SumCount.decode(sc.encode()) == sc
    True
    >>> sc.total
    12.5
    """
    field_names = [f[0] for f in fields]
    field_types = [f[1] for f in fields]

    class _Record(Writable):
        __slots__ = tuple(field_names)

        def __init__(self, *args: Any, **kwargs: Any):
            values = list(args)
            if len(values) > len(field_names):
                raise InvalidWritableError(
                    f"{name} takes {len(field_names)} fields, got {len(values)}"
                )
            for field_name in field_names[len(values):]:
                if field_name not in kwargs:
                    raise InvalidWritableError(f"{name} missing field {field_name!r}")
                values.append(kwargs.pop(field_name))
            if kwargs:
                raise InvalidWritableError(
                    f"{name} got unexpected fields {sorted(kwargs)}"
                )
            for field_name, value in zip(field_names, values):
                object.__setattr__(self, field_name, value)

        def encode(self) -> str:
            return _FIELD_SEP.join(
                str(getattr(self, field_name)) for field_name in field_names
            )

        @classmethod
        def decode(cls, text: str) -> "_Record":
            parts = text.split(_FIELD_SEP)
            if len(parts) != len(field_names):
                raise InvalidWritableError(
                    f"cannot decode {name} from {text!r}: "
                    f"expected {len(field_names)} fields, got {len(parts)}"
                )
            return cls(*(t(p) for t, p in zip(field_types, parts)))

        def sort_key(self) -> tuple:
            # Memoised: building the field tuple on every comparison
            # dominates composite-key sorts otherwise.
            try:
                return self._key_memo
            except AttributeError:
                key = tuple(
                    getattr(self, field_name) for field_name in field_names
                )
                self._key_memo = key
                return key

        def __repr__(self) -> str:
            inner = ", ".join(
                f"{field_name}={getattr(self, field_name)!r}"
                for field_name in field_names
            )
            return f"{name}({inner})"

    _Record.__name__ = name
    _Record.__qualname__ = name
    # Pretend the class was defined where record_writable was called
    # (the namedtuple trick), so module-level record classes pickle by
    # reference — required to ship pairs to process-pool workers.
    try:
        _Record.__module__ = sys._getframe(1).f_globals.get(
            "__name__", __name__
        )
    except (AttributeError, ValueError):  # pragma: no cover - exotic runtimes
        pass
    return _Record


@functools.singledispatch
def wrap(value: Any) -> Writable:
    """Auto-wrap plain Python values emitted by user code.

    >>> wrap("hello")
    Text('hello')
    >>> wrap(3)
    IntWritable('3')
    """
    if isinstance(value, Writable):
        return value
    raise InvalidWritableError(
        f"cannot wrap {type(value).__name__} as a Writable; "
        f"emit str/int/float/None or a Writable instance"
    )


@wrap.register
def _(value: str) -> Writable:
    return Text(value)


@wrap.register
def _(value: int) -> Writable:
    if isinstance(value, bool):
        raise InvalidWritableError("cannot wrap bool as a Writable")
    return IntWritable(value)


@wrap.register
def _(value: float) -> Writable:
    return FloatWritable(value)


@wrap.register
def _(value: None) -> Writable:
    return NullWritable()


@wrap.register
def _(value: Writable) -> Writable:
    return value
