"""The serial, no-HDFS job runner — assignment 1's execution mode.

"The corresponding assignment only required the students to use
Hadoop/MapReduce API libraries to develop and test MapReduce code on the
standard Linux command line interface without using a supporting
HDFS/MapReduce infrastructure."  This runner is that mode: the same
:class:`~repro.mapreduce.api.Job` objects, run serially over a
:class:`~repro.hdfs.localfs.LinuxFileSystem`, producing the same answers
and counters plus a *serial* simulated runtime — which is how the course
(and our Claim-C1 benchmark) shows efficient vs. inefficient
implementations differing by an order of magnitude even before HDFS
enters the picture.
"""

from __future__ import annotations

import functools
from dataclasses import dataclass, field

from repro.hdfs.localfs import LinuxFileSystem
from repro.mapreduce.api import Job
from repro.mapreduce.backend import ExecutionBackend, resolve_backend
from repro.mapreduce.config import CostModel, MapReduceConfig
from repro.mapreduce.counters import PERF, Counters
from repro.mapreduce.inputformat import InputSplit
from repro.mapreduce.outputformat import TextOutputFormat, part_file_name
from repro.mapreduce.runtime import (
    execute_map,
    execute_reduce,
    job_input_format,
    job_partitioner,
    map_attempt_work,
    prefetch_split,
    reduce_attempt_work,
)
from repro.mapreduce.shuffle import MapOutput, merge_for_reduce
from repro.util.errors import FileNotFoundInHdfs, JobSubmissionError, OutputExistsError


@dataclass
class LocalJobResult:
    """Outcome of a serial run."""

    job_name: str
    counters: Counters
    output_path: str
    localfs: LinuxFileSystem
    #: Simulated wall-clock of the *serial* execution (sum of all task
    #: durations — nothing overlaps on one workstation).
    simulated_seconds: float
    num_splits: int
    pairs: list[tuple[str, str]] = field(default_factory=list)
    #: Runtime-sanitizer violation messages, in task order (empty
    #: unless the runner's MapReduceConfig enables ``sanitize``).
    sanitizer_violations: list[str] = field(default_factory=list)

    def output_dict(self) -> dict[str, str]:
        return dict(self.pairs)


class LocalJobRunner:
    """Run jobs serially against a local (Linux) file system."""

    #: Pseudo-block size used to exercise split logic even locally.
    DEFAULT_SPLIT_SIZE = 16 * 1024 * 1024

    def __init__(
        self,
        localfs: LinuxFileSystem | None = None,
        cost: CostModel | None = None,
        split_size: int | None = None,
        local_disk_bw: float = 100 * 1024 * 1024,
        backend: ExecutionBackend | None = None,
        mr_config: MapReduceConfig | None = None,
    ):
        self.localfs = localfs or LinuxFileSystem()
        if mr_config is not None:
            self.mr_config = mr_config
            self.cost = cost or mr_config.cost
        else:
            self.cost = cost or CostModel()
            self.mr_config = MapReduceConfig(cost=self.cost)
        self.split_size = split_size or self.DEFAULT_SPLIT_SIZE
        self.local_disk_bw = local_disk_bw
        self.backend = resolve_backend(
            backend,
            self.mr_config.execution_backend,
            self.mr_config.backend_workers,
        )

    def close(self) -> None:
        """Release backend resources (worker pools, if any)."""
        self.backend.shutdown()

    def __enter__(self) -> "LocalJobRunner":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    def _splits_for(self, job: Job, paths: list[str]) -> list[InputSplit]:
        input_format = job_input_format(job)
        splits: list[InputSplit] = []
        for path in paths:
            length = self.localfs.size(path)
            sizes = []
            offset = 0
            while offset < length:
                sizes.append(min(self.split_size, length - offset))
                offset += sizes[-1]
            if not sizes:
                sizes = [0]
            splits.extend(
                input_format.splits_for_file(
                    path, sizes, [("local",)] * len(sizes)
                )
            )
        return splits

    def _fetch(
        self, path: str, block_index: int, max_bytes: int | None, offset: int = 0
    ):
        data = self.localfs.read_file(path)
        start = block_index * self.split_size
        if start >= len(data) and block_index > 0:
            raise IndexError(block_index)
        chunk = data[start : start + self.split_size]
        if offset:
            chunk = chunk[offset:]
        if max_bytes is not None:
            chunk = chunk[:max_bytes]
        return chunk, len(chunk) / self.local_disk_bw

    def _side_reader(self, path: str):
        data = self.localfs.read_file(path)
        elapsed = (
            self.cost.side_open_overhead
            + len(data) / self.local_disk_bw
            + len(data) * self.cost.side_read_per_byte
        )
        return data.decode("utf-8"), elapsed

    # ------------------------------------------------------------------
    def run(
        self,
        job: Job,
        input_paths: list[str] | str,
        output_path: str,
    ) -> LocalJobResult:
        """Run one job to completion, serially."""
        if isinstance(input_paths, str):
            input_paths = [input_paths]
        files: list[str] = []
        for path in input_paths:
            if self.localfs.is_dir(path):
                files.extend(self.localfs.walk(path))
            elif self.localfs.exists(path):
                files.append(path)
            else:
                raise FileNotFoundInHdfs(f"input not found: {path}")
        if not files:
            raise JobSubmissionError(f"no input files under {input_paths}")
        if self.localfs.exists(output_path):
            raise OutputExistsError(f"output {output_path} already exists")

        splits = self._splits_for(job, files)
        if hasattr(self.backend, "decide"):  # "auto": size the job first
            self.backend.decide(sum(split.length for split in splits))
        counters = Counters()
        node_cache: dict = {}  # one workstation == one shared "JVM"
        elapsed = 0.0
        # Pooled execution applies only to share-nothing jobs whose
        # input format separates I/O from parsing; everything else runs
        # the historical serial path.  Completion callbacks fire in
        # submission order, so counters merge and ``elapsed`` sums in
        # exactly the serial order — results are bit-identical.
        pooled = (
            self.backend.parallel
            and not job.shares_node_state
            and getattr(job_input_format(job), "supports_prefetch", False)
        )
        # One shm scope per run: the parent mints the token, workers
        # publish segments under it, and the finally below guarantees
        # every segment is unlinked even when the run raises (including
        # KeyboardInterrupt surfacing through join_all).
        shm_scope = None
        if pooled and self.mr_config.shuffle_transport == "shm":
            from repro.mapreduce import shm

            shm_scope = shm.ShmScope(self.mr_config.shm_arena)
        try:
            return self._run_tasks(
                job, splits, output_path, counters, node_cache,
                elapsed, pooled, shm_scope,
            )
        finally:
            if shm_scope is not None:
                shm_scope.release()

    def _run_tasks(
        self,
        job: Job,
        splits: list[InputSplit],
        output_path: str,
        counters: Counters,
        node_cache: dict,
        elapsed: float,
        pooled: bool,
        shm_scope,
    ) -> LocalJobResult:
        map_outputs: list[MapOutput] = []
        violations: list[str] = []

        def map_done(index: int, handle) -> None:
            nonlocal elapsed
            execution = handle.result()
            execution.output.task_index = index
            counters.merge(execution.counters)
            elapsed += execution.duration
            violations.extend(execution.violations)
            if shm_scope is not None:
                shm_scope.adopt_output(execution.output)
            map_outputs.append(execution.output)
            if execution.perf:
                PERF.merge(execution.perf)

        for index, split in enumerate(splits):
            if pooled:
                prefetched = prefetch_split(job, split, self._fetch)
                work = functools.partial(
                    map_attempt_work,
                    job,
                    split,
                    prefetched,
                    self.cost,
                    self.mr_config,
                    "local",
                    self.local_disk_bw,
                    shm_token=None if shm_scope is None else shm_scope.token,
                )
            else:
                work = functools.partial(
                    execute_map,
                    job=job,
                    split=split,
                    fetch=self._fetch,
                    cost=self.cost,
                    mr_config=self.mr_config,
                    side_reader=self._side_reader,
                    node_cache=node_cache,
                    task_node="local",
                    disk_write_bw=self.local_disk_bw,
                )
            self.backend.submit(
                work,
                functools.partial(map_done, index),
                inline=not pooled,
            )
        self.backend.join_all()  # all map outputs in hand, serial order

        all_pairs: list[tuple[str, str]] = []

        def reduce_done(partition: int, handle) -> None:
            nonlocal elapsed
            execution, text = handle.result()
            counters.merge(execution.counters)
            if execution.perf:
                PERF.merge(execution.perf)
            elapsed += execution.duration
            violations.extend(execution.violations)
            part_path = f"{output_path}/{part_file_name(partition)}"
            self.localfs.write_file(part_path, text)
            elapsed += len(text) / self.local_disk_bw
            all_pairs.extend(TextOutputFormat.parse(text))

        for partition in range(job.conf.num_reduces):
            if pooled:
                # Frozen outputs slim to this partition's blob before
                # crossing the process boundary (slice_for is a no-op —
                # returns self — on unframed object-form outputs).
                shipped = [out.slice_for(partition) for out in map_outputs]
                work = functools.partial(
                    reduce_attempt_work,
                    job,
                    shipped,
                    partition,
                    self.cost,
                    "local",
                    self.mr_config,
                )
            else:
                def work(partition=partition):
                    merged = merge_for_reduce(map_outputs, partition)
                    execution = execute_reduce(
                        job=job,
                        merged_pairs=merged,
                        cost=self.cost,
                        side_reader=self._side_reader,
                        node_cache=node_cache,
                        task_node="local",
                        mr_config=self.mr_config,
                    )
                    return execution, TextOutputFormat.render(execution.pairs)

            self.backend.submit(
                work,
                functools.partial(reduce_done, partition),
                inline=not pooled,
            )
        self.backend.join_all()

        self.localfs.write_file(f"{output_path}/_SUCCESS", b"")
        return LocalJobResult(
            job_name=job.name,
            counters=counters,
            output_path=output_path,
            localfs=self.localfs,
            simulated_seconds=elapsed,
            num_splits=len(splits),
            pairs=all_pairs,
            sanitizer_violations=violations,
        )
