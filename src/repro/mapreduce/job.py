"""Running jobs and their reports.

A :class:`RunningJob` is the JobTracker's bookkeeping for one submitted
job: task tables, pending queues, aggregated counters, locality tallies
and the attempt log.  Its :meth:`RunningJob.report` produces the
:class:`JobReport` that plays the role of the JobTracker web UI + final
job report the course has students read.
"""

from __future__ import annotations

import enum
from collections import deque
from dataclasses import dataclass, field

from repro.mapreduce.api import Job
from repro.mapreduce.counters import C, Counters
from repro.mapreduce.inputformat import InputSplit
from repro.mapreduce.tasks import (
    AttemptState,
    MapTask,
    ReduceTask,
    TaskState,
)


class JobState(enum.Enum):
    PREP = "prep"
    RUNNING = "running"
    SUCCEEDED = "succeeded"
    FAILED = "failed"


class RunningJob:
    """JobTracker-side state of one job."""

    def __init__(
        self,
        job: Job,
        job_id: str,
        input_paths: list[str],
        output_path: str,
        splits: list[InputSplit],
        submit_time: float,
        submit_seq: int = 0,
    ):
        self.job = job
        self.job_id = job_id
        #: Monotonic submission number — the scheduler's FIFO key.
        self.submit_seq = submit_seq
        self.input_paths = list(input_paths)
        self.output_path = output_path
        self.submit_time = submit_time
        self.finish_time: float | None = None
        self.state = JobState.RUNNING
        self.failure_reason: str | None = None

        self.map_tasks = [
            MapTask(job_id=job_id, index=i, split=split)
            for i, split in enumerate(splits)
        ]
        self.reduce_tasks = [
            ReduceTask(job_id=job_id, partition=p)
            for p in range(job.conf.num_reduces)
        ]
        self.pending_maps: deque[int] = deque(range(len(self.map_tasks)))
        self.pending_reduces: deque[int] = deque(range(len(self.reduce_tasks)))
        #: O(1) completion census (the ``all(...)`` scans made
        #: ``maps_done`` O(#tasks) on every heartbeat); maintained by
        #: the JobTracker at the success/revert transitions.
        self.succeeded_maps = 0
        self.succeeded_reduces = 0
        #: Currently running task attempts (launched minus terminated) —
        #: the fair scheduler's per-user load signal.
        self.active_attempts = 0
        #: Scheduler-level counters (launches, locality, failures).
        self.counters = Counters()
        #: Execution counters of each task's *latest successful* attempt,
        #: keyed by task id.  Kept per-task (not merged into a running
        #: total) so a map that is re-executed after its output is lost
        #: replaces its contribution instead of double-counting it — the
        #: aggregate then matches a fault-free run exactly.
        self.task_counters: dict[str, Counters] = {}
        self.blacklist: set[str] = set()
        self.tracker_failures: dict[str, int] = {}
        self.events: list[tuple[float, str]] = []
        #: Shared-memory shuffle scope (``repro.mapreduce.shm.ShmScope``)
        #: when this job runs pooled with ``shuffle_transport="shm"``;
        #: the JobTracker creates it at submit and releases it on the
        #: job-finish/-fail paths (see :meth:`release_shm`).
        self.shm_scope = None

    def release_shm(self) -> None:
        """Unlink this job's shuffle segments (idempotent, safe to call
        from every teardown path)."""
        if self.shm_scope is not None:
            self.shm_scope.release()

    # ------------------------------------------------------------------
    @property
    def conf(self):
        return self.job.conf

    @property
    def name(self) -> str:
        return self.job.name

    def build_map_index(self, topology) -> None:
        """Replace the pending-map deque with the locality-indexed
        queue (same FIFO semantics, O(log n) locality-aware picks)."""
        from repro.mapreduce.scheduler import PendingMapQueue

        self.pending_maps = PendingMapQueue(
            topology, self.map_tasks, initial=range(len(self.map_tasks))
        )

    @property
    def maps_done(self) -> bool:
        return self.succeeded_maps >= len(self.map_tasks)

    @property
    def reduces_done(self) -> bool:
        return self.succeeded_reduces >= len(self.reduce_tasks)

    @property
    def finished(self) -> bool:
        return self.state in (JobState.SUCCEEDED, JobState.FAILED)

    @property
    def succeeded(self) -> bool:
        return self.state == JobState.SUCCEEDED

    def log(self, time: float, message: str) -> None:
        self.events.append((time, message))

    # ------------------------------------------------------------------
    def record_task_counters(self, task_id: str, counters: Counters) -> None:
        """Record the execution counters of a task's successful attempt
        (the latest success wins; see :attr:`task_counters`)."""
        self.task_counters[task_id] = counters

    def aggregate_counters(self) -> Counters:
        """Scheduler counters merged with every task's latest counters."""
        total = Counters()
        total.merge(self.counters)
        for task_id in sorted(self.task_counters):
            total.merge(self.task_counters[task_id])
        return total

    # ------------------------------------------------------------------
    def completed_map_outputs(self):
        return [
            t.output for t in self.map_tasks if t.output is not None
        ]

    def all_attempts(self):
        for task in [*self.map_tasks, *self.reduce_tasks]:
            yield from task.attempts

    def total_resubmissions(self) -> int:
        return sum(t.resubmissions for t in self.map_tasks) + sum(
            max(0, len(t.attempts) - 1) for t in self.reduce_tasks
        )

    # ------------------------------------------------------------------
    def report(self) -> "JobReport":
        map_durations = [
            t.duration for t in self.map_tasks if t.duration is not None
        ]
        reduce_durations = [
            t.duration for t in self.reduce_tasks if t.duration is not None
        ]
        failed_attempts = sum(
            1 for a in self.all_attempts() if a.state == AttemptState.FAILED
        )
        killed_attempts = sum(
            1 for a in self.all_attempts() if a.state == AttemptState.KILLED
        )
        elapsed = (
            (self.finish_time - self.submit_time)
            if self.finish_time is not None
            else None
        )
        counters = self.aggregate_counters()
        return JobReport(
            job_id=self.job_id,
            name=self.name,
            state=self.state.value,
            failure_reason=self.failure_reason,
            submit_time=self.submit_time,
            finish_time=self.finish_time,
            elapsed=elapsed,
            num_maps=len(self.map_tasks),
            num_reduces=len(self.reduce_tasks),
            data_local_maps=self.counters.get(C.DATA_LOCAL_MAPS),
            rack_local_maps=self.counters.get(C.RACK_LOCAL_MAPS),
            off_rack_maps=self.counters.get(C.OFF_RACK_MAPS),
            avg_map_time=(
                sum(map_durations) / len(map_durations) if map_durations else 0.0
            ),
            avg_reduce_time=(
                sum(reduce_durations) / len(reduce_durations)
                if reduce_durations
                else 0.0
            ),
            failed_attempts=failed_attempts,
            killed_attempts=killed_attempts,
            total_resubmissions=self.total_resubmissions(),
            counters=counters,
        )


@dataclass
class JobReport:
    """The end-of-job summary (JobTracker UI + ``hadoop jar`` tail)."""

    job_id: str
    name: str
    state: str
    failure_reason: str | None
    submit_time: float
    finish_time: float | None
    elapsed: float | None
    num_maps: int
    num_reduces: int
    data_local_maps: int
    rack_local_maps: int
    off_rack_maps: int
    avg_map_time: float
    avg_reduce_time: float
    failed_attempts: int
    killed_attempts: int
    total_resubmissions: int
    counters: Counters = field(default_factory=Counters)

    @property
    def shuffle_bytes(self) -> int:
        return self.counters.get(C.REDUCE_SHUFFLE_BYTES)

    @property
    def succeeded(self) -> bool:
        return self.state == "succeeded"

    def render(self) -> str:
        lines = [
            f"Job {self.job_id} ({self.name}): {self.state.upper()}",
        ]
        if self.failure_reason:
            lines.append(f"  Failure: {self.failure_reason}")
        if self.elapsed is not None:
            lines.append(f"  Elapsed: {self.elapsed:.1f}s")
        lines += [
            f"  Maps: {self.num_maps} "
            f"(data-local={self.data_local_maps}, "
            f"rack-local={self.rack_local_maps}, "
            f"off-rack={self.off_rack_maps})",
            f"  Reduces: {self.num_reduces}",
            f"  Avg map time: {self.avg_map_time:.2f}s   "
            f"Avg reduce time: {self.avg_reduce_time:.2f}s",
            f"  Failed attempts: {self.failed_attempts}   "
            f"Killed attempts: {self.killed_attempts}   "
            f"Task resubmissions: {self.total_resubmissions}",
            self.counters.render(),
        ]
        return "\n".join(lines)
