"""A Hadoop-streaming-style functional front end.

The REU boot camp (Version 3) taught everything "on the command line
terminal" with minimal ceremony; this is the minimal-ceremony API:
plain functions instead of Mapper/Reducer classes.

>>> job = streaming_job(
...     name="wc",
...     map_fn=lambda k, v: ((w, 1) for w in v.split()),
...     reduce_fn=lambda k, vs: [(k, sum(vs))],
... )
"""

from __future__ import annotations

from typing import Callable, Iterable

from repro.mapreduce.api import Context, Job, Mapper, Reducer
from repro.mapreduce.config import JobConf
from repro.mapreduce.types import Writable

MapFn = Callable[[str, str], Iterable[tuple[object, object]]]
ReduceFn = Callable[[str, list], Iterable[tuple[object, object]]]


def _decode_key(key: Writable):
    """Streaming hands user functions plain strings/numbers.

    Scalar writables (Text/IntWritable/FloatWritable) unwrap to their
    plain value; composite record writables pass through unchanged so a
    streaming combiner can work with custom value classes.
    """
    if hasattr(key, "value"):
        return key.value
    if isinstance(key, Writable) and type(key).__name__ == "NullWritable":
        return None
    return key


def streaming_job(
    name: str,
    map_fn: MapFn,
    reduce_fn: ReduceFn | None = None,
    combine_fn: ReduceFn | None = None,
    num_reduces: int = 1,
    conf: JobConf | None = None,
    **params,
) -> Job:
    """Build a :class:`~repro.mapreduce.api.Job` from plain functions.

    ``map_fn(key, value)`` receives the record key (byte offset for text
    input) and the line; it returns/yields ``(key, value)`` pairs.
    ``reduce_fn(key, values)`` receives a key string and the list of
    plain values; it returns/yields output pairs.  ``combine_fn`` runs as
    the combiner and must be a monoid over ``reduce_fn``'s input.
    """

    class _StreamMapper(Mapper):
        def map(self, key: Writable, value: Writable, context: Context) -> None:
            for out_key, out_value in map_fn(_decode_key(key), _decode_key(value)):
                context.write(out_key, out_value)

    def _make_reducer(fn: ReduceFn) -> type[Reducer]:
        class _StreamReducer(Reducer):
            def reduce(self, key, values, context: Context) -> None:
                plain = [_decode_key(v) for v in values]
                for out_key, out_value in fn(_decode_key(key), plain):
                    context.write(out_key, out_value)

        return _StreamReducer

    class _StreamJob(Job):
        mapper = _StreamMapper
        reducer = _make_reducer(reduce_fn) if reduce_fn is not None else None
        combiner = _make_reducer(combine_fn) if combine_fn is not None else None

    job_conf = conf or JobConf(name=name, num_reduces=num_reduces)
    if conf is not None:
        job_conf.name = name
    return _StreamJob(conf=job_conf, **params)
