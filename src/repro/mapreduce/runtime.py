"""Task execution: run user map/reduce code and price the work.

Used identically by the serial :class:`~repro.mapreduce.local_runner.LocalJobRunner`
(assignment-1 mode) and by cluster TaskTrackers, so a job computes the
same answer in both — the equivalence the course demonstrates by
rerunning assignment-1 jars on HDFS, and which this repository's
integration tests assert.

Real user code runs eagerly over real records; the returned
``duration`` prices that work on the simulated hardware via the
:class:`~repro.mapreduce.config.CostModel`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.mapreduce.api import Context, Job
from repro.mapreduce.config import CostModel, JobConf, MapReduceConfig
from repro.mapreduce.inputformat import (
    FetchStats,
    InputSplit,
    PrefetchedSplit,
    TextInputFormat,
)
from repro.mapreduce.counters import C, Counters, PerfStats, _perf_clock
from repro.mapreduce.outputformat import TextOutputFormat
from repro.mapreduce.partitioner import HashPartitioner, Partitioner
from repro.mapreduce.shuffle import (
    MapOutput,
    Pair,
    external_sorted,
    framed_merge_for_reduce,
    group_by_key,
    merge_for_reduce,
    partition_pairs,
    run_combiner,
    serialized_bytes,
    sort_pairs,
)
from repro.mapreduce.types import Writable
from repro.mapreduce.wire import FramedPairs
from repro.util.errors import MapReduceError, TaskFailedError, WireFormatError

SideReader = Callable[[str], tuple[str, float]]


def job_partitioner(job: Job) -> Partitioner:
    return job.partitioner if job.partitioner is not None else HashPartitioner()


def job_input_format(job: Job):
    return job.input_format if job.input_format is not None else TextInputFormat


@dataclass
class MapExecution:
    """Everything a finished map task hands back to the framework."""

    output: MapOutput
    counters: Counters
    duration: float
    input_records: int = 0
    input_bytes: int = 0
    spills: int = 0
    #: Runtime-sanitizer violation messages (empty unless
    #: ``MapReduceConfig.sanitize`` found something).
    violations: list[str] = field(default_factory=list)
    #: Worker-side host-timing breakdown (PerfStats.as_dict()), merged
    #: into the process-wide PERF by the caller.  Never part of the
    #: deterministic result surface.
    perf: dict | None = field(default=None, compare=False)


@dataclass
class ReduceExecution:
    """A finished reduce task's output pairs plus accounting.

    ``pairs`` is a list on the serial/object paths and a
    :class:`~repro.mapreduce.wire.FramedPairs` blob on the framed pooled
    path — both support ``len()`` and iteration identically.
    """

    pairs: "list[Pair] | FramedPairs"
    counters: Counters
    duration: float  # merge + user code; shuffle/write priced by caller
    input_records: int = 0
    #: Runtime-sanitizer violation messages (empty unless
    #: ``MapReduceConfig.sanitize`` found something).
    violations: list[str] = field(default_factory=list)
    #: Worker-side host-timing breakdown (see MapExecution.perf).
    perf: dict | None = field(default=None, compare=False)


def _wrap_user_error(phase: str, exc: Exception) -> TaskFailedError:
    if isinstance(exc, TaskFailedError):
        return exc
    return TaskFailedError(f"{phase} raised {type(exc).__name__}: {exc}")


class _PairTally:
    """Pass-through pair iterator tallying records and payload bytes.

    Lets the map task stream its (possibly externally merged) sorted
    output straight into partitioning while still producing the record/
    byte counters the in-memory path computed from the full list —
    same sums, one pass, no second materialisation.
    """

    __slots__ = ("source", "records", "nbytes")

    def __init__(self, source):
        self.source = source
        self.records = 0
        self.nbytes = 0

    def __iter__(self):
        for kv in self.source:
            self.records += 1
            self.nbytes += kv[0].serialized_size() + kv[1].serialized_size()
            yield kv


def _make_sanitizer(
    mr_config: MapReduceConfig | None,
    conf: JobConf,
    counters: Counters,
    task: str,
):
    """A TaskSanitizer when ``sanitize`` is on, else None.

    Imported lazily so the analysis package (and its import of this
    package) only loads when the feature is enabled — no cycle, no
    overhead on the default path.  Violation counts land in ``counters``
    (group "Sanitizer"), riding the normal per-task merge into the job.
    """
    if mr_config is None or not mr_config.sanitize:
        return None
    from repro.analysis.sanitizer import TaskSanitizer

    return TaskSanitizer(conf=conf, counters=counters, task=task)


@dataclass
class PrefetchedInput:
    """A split's bytes plus the I/O accounting already paid for them.

    Built in the simulation thread by :func:`prefetch_split`; shipped to
    pool workers so :func:`execute_map` needs no ``fetch`` callable.
    """

    payload: PrefetchedSplit
    stats: FetchStats


def prefetch_split(job: Job, split: InputSplit, fetch) -> PrefetchedInput | None:
    """Perform a split's block I/O up front, if the input format allows.

    Returns ``None`` when the job's input format does not support the
    prefetch/parse separation (``supports_prefetch`` unset or False), in
    which case the caller must execute the attempt inline.
    """
    input_format = job_input_format(job)
    if not getattr(input_format, "supports_prefetch", False):
        return None
    stats = FetchStats()
    payload = input_format.prefetch(split, fetch, stats)
    return PrefetchedInput(payload=payload, stats=stats)


def execute_map(
    job: Job,
    split: InputSplit,
    fetch,
    cost: CostModel,
    mr_config: MapReduceConfig,
    side_reader: SideReader | None = None,
    node_cache: dict[str, Any] | None = None,
    task_node: str | None = None,
    disk_write_bw: float = 100 * 1024 * 1024,
    prefetched: "PrefetchedInput | None" = None,
    perf: PerfStats | None = None,
) -> MapExecution:
    """Run one map task over one split.

    When ``prefetched`` is given the split's block I/O has already been
    performed (see :func:`prefetch_split`): records are parsed from the
    prefetched bytes and ``fetch`` is never called, which is what lets
    this function run inside a pool worker with no simulation state.
    """
    counters = Counters()
    conf: JobConf = job.conf
    sanitizer = _make_sanitizer(
        mr_config, conf, counters, f"map[{split.path}#{split.block_index}]"
    )
    context_kwargs = dict(
        conf=conf,
        counters=counters,
        side_reader=side_reader,
        node_cache=node_cache,
        task_node=task_node,
        input_path=split.path,
    )
    context = (
        sanitizer.make_context(**context_kwargs)
        if sanitizer is not None
        else Context(**context_kwargs)
    )
    input_format = job_input_format(job)
    if prefetched is not None:
        stats = prefetched.stats
        records = input_format.parse_records(prefetched.payload)
    else:
        stats = FetchStats()
        records = input_format.read_records(split, fetch, stats)

    mapper = job.mapper()  # type: ignore[misc]
    records_in = 0
    input_bytes_seen = 0
    try:
        mapper.setup(context)
        if sanitizer is not None:
            for key, value in records:
                records_in += 1
                snapshot = sanitizer.snapshot_inputs(key, value)
                mapper.map(key, value, context)
                sanitizer.verify_inputs("map", snapshot, key, value)
        else:
            for key, value in records:
                records_in += 1
                mapper.map(key, value, context)
        mapper.cleanup(context)
    except Exception as exc:  # noqa: BLE001 - user code boundary
        raise _wrap_user_error("map", exc) from exc
    input_bytes_seen = stats.bytes_read

    # Sort once, before partitioning: partitions are key-determined, so
    # a stable bucketing of sorted pairs leaves every bucket key-sorted
    # — the per-partition re-sort the combiner used to pay disappears.
    # Past ``spill_record_limit`` the sort goes external: emission-order
    # chunks spill as sorted framed runs and heap-merge back, yielding
    # the exact same sequence with a bounded in-memory working set.
    drained = context.drain()
    spill_limit = mr_config.spill_record_limit
    partitioner = job_partitioner(job)
    spill_runs = 1
    if spill_limit is not None and len(drained) > spill_limit:
        tally = _PairTally(external_sorted(drained, spill_limit, perf))
        try:
            partitions = partition_pairs(tally, partitioner, conf.num_reduces)
        except WireFormatError:
            # Unframeable pairs cannot spill as wire runs; sort in
            # memory instead (the error fires before anything yields,
            # so nothing was partitioned or tallied yet).
            tally = _PairTally(sort_pairs(drained))
            partitions = partition_pairs(tally, partitioner, conf.num_reduces)
        else:
            spill_runs = -(-len(drained) // spill_limit)  # ceil
    else:
        tally = _PairTally(sort_pairs(drained))
        partitions = partition_pairs(tally, partitioner, conf.num_reduces)
    records_out, output_bytes = tally.records, tally.nbytes
    counters.increment(C.MAP_INPUT_RECORDS, records_in)
    counters.increment(C.MAP_OUTPUT_RECORDS, records_out)
    counters.increment(C.MAP_OUTPUT_BYTES, output_bytes)
    counters.increment(C.HDFS_BYTES_READ, stats.bytes_read)

    combine_time = 0.0
    if job.combiner is not None:
        if sanitizer is not None:
            # Spot-check the combiner contract on the *uncombined*,
            # key-sorted output before the real combine consumes it.
            sanitizer.check_combiner(job.combiner, partitions)
        combined: dict[int, list[Pair]] = {}
        combine_records = 0
        for partition, ppairs in partitions.items():
            try:
                combined[partition] = run_combiner(
                    job.combiner, ppairs, context, counters, presorted=True
                )
            except Exception as exc:  # noqa: BLE001 - user code boundary
                raise _wrap_user_error("combine", exc) from exc
            combine_records += len(ppairs)
        partitions = combined
        combine_time = cost.sort_time(combine_records) + cost.cpu_time(
            combine_records, 0
        )

    final_bytes = sum(serialized_bytes(p) for p in partitions.values())
    counters.increment(C.FILE_BYTES_WRITTEN, final_bytes)

    # Spill accounting: every sort-buffer overflow is an extra disk
    # pass, and so is every real external-sort run past the first.
    spills = max(
        1,
        math.ceil(output_bytes / mr_config.sort_buffer_bytes),
        spill_runs,
    )
    counters.increment(
        C.SPILLED_RECORDS, records_out if spills == 1 else records_out * spills
    )
    spill_time = (spills - 1) * (output_bytes / disk_write_bw)

    duration = (
        cost.task_startup
        + stats.elapsed
        + cost.cpu_time(records_in, input_bytes_seen)
        + context.extra_time
        + cost.sort_time(records_out)
        + combine_time
        + spill_time
        + final_bytes / disk_write_bw  # write map output to local disk
    )
    output = MapOutput(
        task_index=split.block_index, node=task_node or "", partitions=partitions
    )
    return MapExecution(
        output=output,
        counters=counters,
        duration=duration,
        input_records=records_in,
        input_bytes=input_bytes_seen,
        spills=spills,
        violations=sanitizer.finish() if sanitizer is not None else [],
    )


class IdentityReducer:
    """Pass-through reduce used when a job declares no reducer."""

    def setup(self, context: Context) -> None:
        pass

    def reduce(self, key: Writable, values, context: Context) -> None:
        for value in values:
            context.write(key, value)

    def cleanup(self, context: Context) -> None:
        pass


def execute_reduce(
    job: Job,
    merged_pairs: list[Pair],
    cost: CostModel,
    side_reader: SideReader | None = None,
    node_cache: dict[str, Any] | None = None,
    task_node: str | None = None,
    already_sorted: bool = True,
    mr_config: MapReduceConfig | None = None,
) -> ReduceExecution:
    """Run one reduce task over its merged, key-sorted partition."""
    counters = Counters()
    conf = job.conf
    sanitizer = _make_sanitizer(
        mr_config, conf, counters, f"reduce[{task_node or 'local'}]"
    )
    context_kwargs = dict(
        conf=conf,
        counters=counters,
        side_reader=side_reader,
        node_cache=node_cache,
        task_node=task_node,
    )
    context = (
        sanitizer.make_context(**context_kwargs)
        if sanitizer is not None
        else Context(**context_kwargs)
    )
    pairs = merged_pairs if already_sorted else sort_pairs(merged_pairs)
    reducer_cls = job.reducer if job.reducer is not None else IdentityReducer
    reducer = reducer_cls()
    groups = 0
    try:
        reducer.setup(context)
        if sanitizer is not None:
            for key, values in group_by_key(pairs):
                groups += 1
                snapshot = sanitizer.snapshot_inputs(key, values)
                reducer.reduce(key, values, context)
                sanitizer.verify_inputs("reduce", snapshot, key, values)
        else:
            for key, values in group_by_key(pairs):
                groups += 1
                reducer.reduce(key, values, context)
        reducer.cleanup(context)
    except Exception as exc:  # noqa: BLE001 - user code boundary
        raise _wrap_user_error("reduce", exc) from exc

    out_pairs = context.drain()
    in_bytes = serialized_bytes(pairs)
    counters.increment(C.REDUCE_INPUT_RECORDS, len(pairs))
    counters.increment(C.REDUCE_INPUT_GROUPS, groups)
    counters.increment(C.REDUCE_OUTPUT_RECORDS, len(out_pairs))

    duration = (
        cost.task_startup
        + cost.sort_time(len(pairs))  # the merge
        + cost.cpu_time(len(pairs), in_bytes)
        + context.extra_time
    )
    return ReduceExecution(
        pairs=out_pairs,
        counters=counters,
        duration=duration,
        input_records=len(pairs),
        violations=sanitizer.finish() if sanitizer is not None else [],
    )


# ---------------------------------------------------------------------------
# Pooled-work entry points.  These are the only functions execution
# backends ship to pool workers, so they are module-level (picklable by
# reference) and take *only* picklable, share-nothing arguments: no
# fetch closures, no side readers, no node caches, no simulation state.


def _no_fetch(*_args, **_kwargs):
    raise MapReduceError(
        "pooled map work must consume prefetched input, not call fetch()"
    )


def _shuffle_transport(mr_config: MapReduceConfig | None) -> str:
    if mr_config is None:
        return "object"
    return getattr(mr_config, "shuffle_transport", "object")


def map_attempt_work(
    job: Job,
    split: InputSplit,
    prefetched: PrefetchedInput,
    cost: CostModel,
    mr_config: MapReduceConfig,
    task_node: str | None,
    disk_write_bw: float,
    shm_token: str | None = None,
) -> MapExecution:
    """The share-nothing portion of one map attempt (pool-safe).

    With the framed transport the partitioned output is frozen into
    wire blobs *here*, inside the worker, so what pickles back to the
    simulation thread is a handful of ``bytes`` objects — not a list of
    per-record Writables.  Under ``shuffle_transport="shm"`` the frozen
    blobs are additionally published into a shared-memory segment named
    by the parent's scope ``shm_token``, and only descriptors ride the
    pipe.  The result is bit-identical in every form; only the
    representation in transit differs.
    """
    perf = PerfStats()
    execution = execute_map(
        job=job,
        split=split,
        fetch=_no_fetch,
        cost=cost,
        mr_config=mr_config,
        task_node=task_node,
        disk_write_bw=disk_write_bw,
        prefetched=prefetched,
        perf=perf,
    )
    transport = _shuffle_transport(mr_config)
    if transport in ("framed", "shm"):
        # An output that cannot be framed simply ships in object form
        # (freeze reports False); the backend's pickle fallback remains
        # the safety net behind that.
        frozen = execution.output.freeze(perf)
        if (
            frozen
            and transport == "shm"
            and shm_token is not None
            and execution.output.total_bytes()
            >= getattr(mr_config, "shm_min_bytes", 0)
        ):
            # Best-effort: a failed publish (arena full, scope already
            # torn down) leaves the output framed, which is always
            # correct — just copied instead of shared.
            execution.output.publish_shm(shm_token, perf)
    execution.perf = perf.as_dict()
    return execution


def reduce_attempt_work(
    job: Job,
    map_outputs: list[MapOutput],
    partition: int,
    cost: CostModel,
    task_node: str | None,
    mr_config: MapReduceConfig | None = None,
) -> tuple[ReduceExecution, str]:
    """The share-nothing portion of one reduce attempt (pool-safe).

    Merges the already-shuffled map outputs for ``partition``, runs the
    reducer, and renders the output file text; the caller prices the
    shuffle network time and performs the HDFS write (both touch
    simulation state, so they stay in the simulation thread).

    Framed inputs (frozen map outputs) decode lazily per map and
    heap-merge — a stable k-way merge of pre-sorted runs, identical in
    sequence to the object path's concatenate-and-stable-sort.  Framed
    runs also frame the reduce's own output pairs for the trip back.
    """
    framed = _shuffle_transport(mr_config) in ("framed", "shm") and all(
        output.frozen for output in map_outputs
    )
    perf = PerfStats()
    if framed:
        merged = framed_merge_for_reduce(map_outputs, partition, perf)
    else:
        merged = merge_for_reduce(map_outputs, partition)
    execution = execute_reduce(
        job=job,
        merged_pairs=merged,
        cost=cost,
        task_node=task_node,
        mr_config=mr_config,
    )
    text = TextOutputFormat.render(execution.pairs)
    if framed:
        t0 = _perf_clock()
        try:
            framed_out = FramedPairs.from_pairs(execution.pairs)
        except WireFormatError:
            pass  # unframeable output pairs ride back as objects
        else:
            execution.pairs = framed_out
            perf.bytes_framed += len(framed_out.blob)
            perf.blobs_encoded += 1
        perf.reduce_serialize_ms += (_perf_clock() - t0) * 1e3
    execution.perf = perf.as_dict()
    return execution, text
