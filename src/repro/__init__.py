"""repro — an educational Hadoop 1.x stack in pure Python.

This package reproduces the system described in *"Teaching HDFS/MapReduce
Systems Concepts to Undergraduates"* (Ngo, Apon, Duffy; Clemson
University, 2014).  It provides:

- :mod:`repro.hdfs` — a functional HDFS: NameNode, DataNodes, blocks with
  checksums, rack-aware replica placement, a write pipeline, an
  ``hadoop fs``-style shell, fsck and dfsadmin.
- :mod:`repro.mapreduce` — a MapReduce engine: Writable types, the
  Mapper/Reducer/Combiner API, locality-aware JobTracker scheduling,
  TaskTrackers with failure modes, sort/shuffle with byte accounting,
  counters and job reports, plus a serial no-HDFS runner.
- :mod:`repro.cluster` — the hardware substrate: nodes, racks, a network
  cost model, local disks vs. a central parallel file system.
- :mod:`repro.myhadoop` — a PBS-like batch scheduler and the myHadoop
  dynamic provisioning workflow, including the paper's ghost-daemon and
  port-conflict failure modes.
- :mod:`repro.datasets` — seeded synthetic generators for the four course
  datasets (text corpus, airline on-time, movie ratings, music ratings)
  and a Google-cluster-trace-like event log.
- :mod:`repro.jobs` — every example and assignment MapReduce program the
  course used, in efficient and inefficient variants.
- :mod:`repro.core` — the teaching module itself: the four course
  versions, executable assignments with graders, platform setups and the
  classroom (deadline-cascade) simulator.
- :mod:`repro.survey` — the course-evaluation analytics that regenerate
  Tables I–IV and the curriculum mapping of Table V.

Quickstart::

    from repro.core.platforms import build_teaching_cluster
    from repro.jobs.wordcount import WordCountJob

    platform = build_teaching_cluster(num_workers=4, seed=7)
    platform.put_text("/data/input.txt", "to be or not to be")
    result = platform.run_job(WordCountJob(), "/data/input.txt", "/out/wc")
    print(dict(result.output_pairs()))
"""

from repro._version import __version__

__all__ = ["__version__"]
