"""Arms a :class:`~repro.faults.plan.FaultPlan` against a live cluster.

The injector is the cluster-facing half of the chaos layer: it installs
itself as the simulation's :class:`~repro.sim.engine.FaultSite`, wires
the pooled backend's worker-crash hook, schedules the plan's timed
faults, and subscribes its event triggers.

The determinism contract
========================

Every probabilistic draw comes from ``RngStream(plan.seed)`` *named by
the opportunity* — ``(kind, attempt_id)``, ``(kind, node,
heartbeat_number)``, ``(kind, work_index)`` — never by call order.  Two
consequences:

- serial and pooled backends see identical faults (the hooks are called
  from the simulation thread in deterministic order either way, but the
  name-keying means even a *different* call order would not change any
  draw);
- replaying the same plan seed on the same cluster seed reproduces the
  exact fault/recovery event log, which the scenario suite asserts.

Every injected fault is published on the simulation bus under
``faults.*`` and appended to :attr:`FaultInjector.injected`, so a
timeline of "what chaos did" is always available.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

from repro.faults.plan import FaultPlan, RateFault, ScheduledFault, TriggerFault
from repro.sim.engine import FaultSite, ScheduledEvent
from repro.util.errors import ConfigError
from repro.util.rng import RngStream

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.mapreduce.cluster import MapReduceCluster


class FaultInjector(FaultSite):
    """Executes one :class:`FaultPlan` against one cluster."""

    def __init__(self, plan: FaultPlan, cluster: "MapReduceCluster"):
        self.plan = plan
        self.cluster = cluster
        self.sim = cluster.sim
        self.rng = RngStream(seed=plan.seed).child("faults")
        self._rates: dict[str, RateFault] = {}
        for rate_fault in plan.rates:
            self._rates[rate_fault.kind] = rate_fault
        self._armed = False
        self._pending: list[ScheduledEvent] = []
        self._unsubscribes: list[Any] = []
        #: (time, kind, data) for every fault this injector fired.
        self.injected: list[tuple[float, str, dict[str, Any]]] = []

    # -- lifecycle -------------------------------------------------------
    def arm(self) -> "FaultInjector":
        """Install hooks, schedule timed faults, subscribe triggers."""
        if self._armed:
            return self
        self._armed = True
        self.sim.install_faults(self)
        backend = self.cluster.backend
        if "backend.worker_crash" in self._rates and backend.parallel:
            backend._chaos = self._worker_chaos
        for fault in self.plan.scheduled:
            self._pending.append(
                self.sim.schedule(fault.at, self._fire_scheduled, fault)
            )
        for trigger in self.plan.triggers:
            self._subscribe_trigger(trigger)
        return self

    def disarm(self) -> None:
        if not self._armed:
            return
        self._armed = False
        self.sim.clear_faults()
        if self.cluster.backend.parallel:
            self.cluster.backend._chaos = None
        for handle in self._pending:
            handle.cancel()
        self._pending.clear()
        for unsubscribe in self._unsubscribes:
            unsubscribe()
        self._unsubscribes.clear()

    def __enter__(self) -> "FaultInjector":
        return self.arm()

    def __exit__(self, *exc_info) -> None:
        self.disarm()

    # -- bookkeeping -----------------------------------------------------
    def _record(self, kind: str, **data: Any) -> None:
        self.injected.append((self.sim.now, kind, data))
        self.sim.bus.publish(f"faults.{kind}", self.sim.now, **data)

    def _fires(self, rate_fault: RateFault, *key: str | int) -> bool:
        if rate_fault.rate <= 0.0:
            return False
        return self.rng.child(rate_fault.kind, *key).bernoulli(rate_fault.rate)

    # -- FaultSite hooks (probabilistic catalog) -------------------------
    def datanode_heartbeat_crash(self, datanode) -> bool:
        rate_fault = self._rates.get("datanode.crash")
        if rate_fault is None or not self._fires(
            rate_fault, datanode.name, datanode.heartbeats_sent
        ):
            return False
        self._record("datanode.crash", node=datanode.name, via="rate")
        restart_after = rate_fault.param("restart_after")
        if restart_after is not None:
            self.sim.schedule(restart_after, self._restart_datanode, datanode.name)
        return True

    def tracker_heartbeat_crash(self, tracker) -> bool:
        rate_fault = self._rates.get("tracker.crash")
        if rate_fault is None or not self._fires(
            rate_fault, tracker.name, tracker.heartbeats_sent
        ):
            return False
        self._record("tracker.crash", node=tracker.name, via="rate")
        restart_after = rate_fault.param("restart_after")
        if restart_after is not None:
            self.sim.schedule(restart_after, self._restart_tracker, tracker.name)
        return True

    def namenode_heartbeat_crash(self, namenode) -> bool:
        rate_fault = self._rates.get("namenode.crash")
        if rate_fault is None or not self._fires(
            rate_fault, "namenode", namenode.heartbeats_processed
        ):
            return False
        self._record("namenode.crash", via="rate")
        recover_after = rate_fault.param("recover_after")
        if recover_after is not None:
            self.sim.schedule(recover_after, self._recover_namenode)
        return True

    def task_attempt_fault(self, job_id: str, attempt_id: str) -> str | None:
        rate_fault = self._rates.get("task.exception")
        if rate_fault is None or not self._fires(rate_fault, attempt_id):
            return None
        self._record("task.exception", job_id=job_id, attempt=attempt_id)
        return f"Injected chaos exception in {attempt_id}"

    def attempt_slowdown(self, job_id: str, attempt_id: str) -> float:
        rate_fault = self._rates.get("task.straggler")
        if rate_fault is None or not self._fires(rate_fault, attempt_id):
            return 1.0
        factor = float(rate_fault.param("factor", 4.0))
        self._record(
            "task.straggler", job_id=job_id, attempt=attempt_id, factor=factor
        )
        return factor

    def shuffle_fetch_fails(
        self, attempt_id: str, source: str, retry: int
    ) -> bool:
        rate_fault = self._rates.get("shuffle.fetch_failure")
        if rate_fault is None or not self._fires(
            rate_fault, attempt_id, source, retry
        ):
            return False
        self._record(
            "shuffle.fetch_failure",
            attempt=attempt_id,
            source=source,
            retry=retry,
        )
        return True

    def _worker_chaos(self, index: int) -> bool:
        rate_fault = self._rates.get("backend.worker_crash")
        if rate_fault is None or not self._fires(rate_fault, index):
            return False
        self._record("backend.worker_crash", work_index=index)
        return True

    # -- scheduled catalog ----------------------------------------------
    def _fire_scheduled(self, fault: ScheduledFault) -> None:
        kind, target = fault.kind, fault.target
        if kind == "datanode.crash":
            datanode = self.cluster.hdfs.datanode(target)
            if datanode.is_serving:
                self._record("datanode.crash", node=target, via="scheduled")
                datanode.crash()
                self._maybe_restart(fault, self._restart_datanode, target)
        elif kind == "tracker.crash":
            tracker = self.cluster.tasktrackers[target]
            if tracker.is_serving:
                self._record("tracker.crash", node=target, via="scheduled")
                tracker.crash()
                self._maybe_restart(fault, self._restart_tracker, target)
        elif kind == "worker.crash":
            self._record("worker.crash", node=target, via="scheduled")
            self.cluster.crash_worker(target)
            self._maybe_restart(fault, self._restart_worker, target)
        elif kind == "datanode.restart":
            self._restart_datanode(target)
        elif kind == "tracker.restart":
            self._restart_tracker(target)
        elif kind == "worker.restart":
            self._restart_worker(target)
        elif kind == "disk.slow":
            self._slow_disk(fault)
        elif kind == "blocks.corrupt":
            self._corruption_storm(fault)
        elif kind == "cluster.restart":
            self._record("cluster.restart")
            self.cluster.restart_cluster()
        elif kind == "namenode.crash":
            namenode = self.cluster.hdfs.namenode
            if not namenode.down:
                self._record("namenode.crash", via="scheduled")
                namenode.crash()
                recover_after = fault.param("recover_after")
                if recover_after is not None:
                    self._pending.append(
                        self.sim.schedule(recover_after, self._recover_namenode)
                    )
        elif kind == "namenode.recover":
            self._recover_namenode()
        elif kind == "checkpoint.roll":
            namenode = self.cluster.hdfs.namenode
            if namenode.journal.enabled and not namenode.down:
                stats = namenode.save_namespace()
                self._record(
                    "checkpoint.roll",
                    edits_truncated=stats.edits_truncated,
                    image_inodes=stats.image_inodes,
                    image_blocks=stats.image_blocks,
                )
        elif kind == "journal.torn_tail":
            namenode = self.cluster.hdfs.namenode
            if namenode.journal.enabled:
                dropped = namenode.journal.tear_tail(fault.param("drop_bytes"))
                self._record("journal.torn_tail", dropped_bytes=dropped)
        else:  # pragma: no cover - plan validation rejects unknown kinds
            raise ConfigError(f"unknown scheduled fault kind {kind!r}")

    def _maybe_restart(self, fault: ScheduledFault, restart_fn, target) -> None:
        restart_after = fault.param("restart_after")
        if restart_after is not None:
            self._pending.append(
                self.sim.schedule(restart_after, restart_fn, target)
            )

    def _restart_datanode(self, name: str) -> None:
        datanode = self.cluster.hdfs.datanode(name)
        if not datanode.is_serving:
            self._record("datanode.restart", node=name)
            self.cluster.hdfs.restart_datanode(name)

    def _restart_tracker(self, name: str) -> None:
        tracker = self.cluster.tasktrackers[name]
        if not tracker.is_serving:
            self._record("tracker.restart", node=name)
            tracker.start(self.cluster.jobtracker)

    def _restart_worker(self, name: str) -> None:
        self._record("worker.restart", node=name)
        self.cluster.restart_worker(name)

    def _recover_namenode(self) -> None:
        # Calls NameNode.recover() directly, never the cluster wrapper:
        # HdfsCluster.recover_namenode advances the sim (wait_until) and
        # this runs *inside* a sim event.  Trackers resume on their own
        # once safemode clears (MapReduceCluster listens on the bus).
        namenode = self.cluster.hdfs.namenode
        if not namenode.down:
            return
        namenode.recover()
        stats = namenode.journal.last_recovery
        if stats is not None:
            self._record(
                "namenode.recover",
                replayed_edits=stats.replayed_edits,
                torn_bytes=stats.torn_bytes,
            )
        else:
            self._record("namenode.recover")

    def _slow_disk(self, fault: ScheduledFault) -> None:
        datanode = self.cluster.hdfs.datanode(fault.target)
        factor = float(fault.param("factor", 8.0))
        datanode.disk_slow_factor = factor
        self._record("disk.slow", node=fault.target, factor=factor)
        duration = fault.param("duration")
        if duration is not None:
            self._pending.append(
                self.sim.schedule(duration, self._heal_disk, fault.target)
            )

    def _heal_disk(self, name: str) -> None:
        self.cluster.hdfs.datanode(name).disk_slow_factor = 1.0
        self._record("disk.healed", node=name)

    def _corruption_storm(self, fault: ScheduledFault) -> None:
        """Silently corrupt replicas — the "corrupted Hadoop cluster".

        Candidate blocks on each node are shuffled by a name-keyed
        stream; with ``spare_last_replica`` (the default) a block's only
        healthy copy is never touched, so every read can still fail over
        and the drill stays recoverable.
        """
        count = int(fault.param("count", 1))
        spare = bool(fault.param("spare_last_replica", True))
        if fault.target is not None:
            datanodes = [self.cluster.hdfs.datanode(fault.target)]
        else:
            datanodes = [
                self.cluster.hdfs.datanodes[name]
                for name in sorted(self.cluster.hdfs.datanodes)
            ]
        for datanode in datanodes:
            if not datanode.is_serving:
                continue
            block_ids = sorted(datanode.blocks)
            self.rng.child("blocks.corrupt", datanode.name).shuffle(block_ids)
            corrupted = 0
            for block_id in block_ids:
                if corrupted >= count:
                    break
                if spare and self._healthy_replicas(block_id) <= 1:
                    continue
                datanode.corrupt_block(block_id)
                self._record(
                    "block.corrupted", node=datanode.name, block_id=block_id
                )
                corrupted += 1

    def _healthy_replicas(self, block_id: int) -> int:
        healthy = 0
        for datanode in self.cluster.hdfs.datanodes.values():
            stored = datanode.blocks.get(block_id)
            if stored is not None and stored.verify():
                healthy += 1
        return healthy

    # -- triggers --------------------------------------------------------
    def _subscribe_trigger(self, trigger: TriggerFault) -> None:
        state = {"seen": 0, "fired": False}

        def listener(event) -> None:
            if state["fired"]:
                return
            state["seen"] += 1
            if state["seen"] < trigger.count:
                return
            state["fired"] = True
            target = trigger.target
            if target is None and trigger.target_from is not None:
                target = event.data.get(trigger.target_from)
            fault = ScheduledFault(
                at=self.sim.now,
                kind=trigger.kind,
                target=target,
                params=trigger.params,
            )
            # Fire *after* the current event finishes: a synchronous
            # crash from inside e.g. task_completed would reenter the
            # component mid-update.
            self._pending.append(
                self.sim.schedule(0.0, self._fire_scheduled, fault)
            )

        self._unsubscribes.append(self.sim.bus.subscribe(trigger.on, listener))

    # -- observability ---------------------------------------------------
    def fault_log(self) -> list[str]:
        """Human/machine-comparable lines for every injected fault."""
        lines = []
        for time, kind, data in self.injected:
            rendered = " ".join(f"{k}={data[k]}" for k in sorted(data))
            lines.append(f"t={time:.3f} {kind} {rendered}".rstrip())
        return lines
