"""Deterministic, declarative fault injection for the whole stack.

The paper's central operational lesson is that the interesting systems
behavior lives in the *failure* paths — dead DataNodes, lost map
outputs, corrupted replicas, full-cluster restarts.  This package turns
those incidents into seeded, replayable chaos:

- :mod:`repro.faults.plan` — :class:`FaultPlan`, pure data describing
  what goes wrong, when, and at which rate;
- :mod:`repro.faults.injector` — :class:`FaultInjector`, which arms a
  plan against a live cluster through the engine's fault hooks;
- :mod:`repro.faults.scenarios` — scripted classroom drills asserting
  that jobs heal (output bit-identical to a fault-free run) and that
  chaos replays (same seed, same fault log).
"""

from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultPlan, RateFault, ScheduledFault, TriggerFault
from repro.faults.scenarios import (
    SCENARIOS,
    Scenario,
    ScenarioResult,
    get_scenario,
    list_scenarios,
    run_scenario,
)

__all__ = [
    "FaultInjector",
    "FaultPlan",
    "RateFault",
    "ScheduledFault",
    "TriggerFault",
    "SCENARIOS",
    "Scenario",
    "ScenarioResult",
    "get_scenario",
    "list_scenarios",
    "run_scenario",
]
