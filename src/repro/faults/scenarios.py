"""Classroom chaos drills: scripted fault scenarios, end to end.

Each scenario reproduces one of the operational incidents the course
staff lived through (Section II.A of the paper) as a deterministic
drill: build a cluster, load a corpus, arm a :class:`FaultPlan`, run a
real job through the chaos, and *prove* the frameworks healed — the
faulty run's output must be bit-identical to a fault-free baseline run
on an identically-seeded cluster, and replaying the same plan seed must
reproduce the exact same fault log.

Run one from the command line::

    python -m repro chaos lost_map_output
    python -m repro chaos --list
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.datasets.zipf_text import ZipfTextGenerator
from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultPlan
from repro.hdfs.config import HdfsConfig
from repro.hdfs.fsck import fsck
from repro.jobs.wordcount import WordCountJob
from repro.mapreduce.cluster import MapReduceCluster
from repro.mapreduce.config import JobConf, MapReduceConfig
from repro.mapreduce.job import JobReport
from repro.util.errors import ConfigError
from repro.util.rng import RngStream

#: Cluster seed shared by the baseline and faulty runs of a drill —
#: *identical* clusters are what make bit-identical output meaningful.
CLUSTER_SEED = 11

#: Bus topic prefixes worth showing on a drill timeline: the injected
#: faults plus every recovery mechanism they are supposed to exercise.
TIMELINE_TOPICS = (
    "faults",
    "mr.task",
    "mr.shuffle",
    "mr.jobtracker",
    "mr.tasktracker",
    "hdfs.datanode",
    "hdfs.namenode",
    "hdfs.block",
)

#: A check is (label, passed, detail).
Check = tuple[str, bool, str]


@dataclass(frozen=True)
class Scenario:
    """One scripted drill: a fault plan plus scenario-specific checks."""

    name: str
    title: str
    #: The paper incident this drill reenacts.
    paper_incident: str
    #: seed -> the fault plan to arm.
    plan: Callable[[int], FaultPlan]
    #: The workload run through the chaos.  None = the classic single
    #: WordCount job; otherwise ``workload(cluster) -> (report, files)``
    #: runs any deterministic multi-job program (e.g. compiled sparklite
    #: PageRank) and returns its final-stage report plus the output
    #: bytes that must be bit-identical to the fault-free baseline's.
    workload: (
        Callable[[MapReduceCluster], tuple[JobReport, dict[str, bytes]]]
        | None
    ) = None
    #: Optional post-run phase (runs after output capture, may advance
    #: the simulation further) appending scenario-specific checks.
    post: Callable[[MapReduceCluster, FaultInjector, list[Check]], None] | None = None
    #: When set, each run also waits for replication to settle and
    #: captures ``fsck(path).render()``; the faulty run's render must be
    #: bit-identical to the baseline's (namespace durability proof).
    fsck_path: str | None = None
    #: Generous sim-time budget; chaos runs are slower than healthy ones.
    timeout: float = 14 * 24 * 3600.0


@dataclass
class ScenarioResult:
    """Everything a drill produced, ready to render or assert on."""

    name: str
    seed: int
    plan: FaultPlan
    report: JobReport | None = None
    baseline_report: JobReport | None = None
    output_files: dict[str, bytes] = field(default_factory=dict)
    baseline_files: dict[str, bytes] = field(default_factory=dict)
    timeline: list[str] = field(default_factory=list)
    fault_log: list[str] = field(default_factory=list)
    replay_fault_log: list[str] = field(default_factory=list)
    fsck_render: str | None = None
    baseline_fsck_render: str | None = None
    checks: list[Check] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return bool(self.checks) and all(passed for _, passed, _ in self.checks)

    def check(self, label: str, passed: bool, detail: str = "") -> None:
        self.checks.append((label, passed, detail))

    def summary(self) -> str:
        lines = []
        for label, passed, detail in self.checks:
            mark = "PASS" if passed else "FAIL"
            suffix = f" ({detail})" if detail and not passed else ""
            lines.append(f"  [{mark}] {label}{suffix}")
        return "\n".join(lines)


# ---------------------------------------------------------------------------
# shared workload


def _make_cluster(
    backend: str | None = None,
    sanitize: bool = False,
    transport: str = "framed",
    block_cache_bytes: int | None = None,
) -> MapReduceCluster:
    hdfs_config = HdfsConfig(block_size=2048, replication=2)
    if block_cache_bytes is not None:
        hdfs_config.block_cache_bytes = block_cache_bytes
    return MapReduceCluster(
        num_workers=5,
        hdfs_config=hdfs_config,
        mr_config=MapReduceConfig(
            execution_backend=backend or "serial",
            backend_workers=2,
            sanitize=sanitize,
            shuffle_transport=transport,
        ),
        seed=CLUSTER_SEED,
    )


def _load_corpus(mr: MapReduceCluster) -> str:
    """~10 blocks of Zipfian text — enough maps to lose some mid-job."""
    gen = ZipfTextGenerator(
        RngStream(seed=5).child("chaos-corpus"), vocab_size=120
    )
    mr.client().put_text("/chaos/in.txt", gen.text(3600))
    return "/chaos/in.txt"


def _job() -> WordCountJob:
    return WordCountJob(JobConf(name="chaos-wc", num_reduces=2))


def _read_part_files(mr: MapReduceCluster, output: str) -> dict[str, bytes]:
    client = mr._output_client(None)
    files: dict[str, bytes] = {}
    for status in client.list_status(output):
        name = status.path.rsplit("/", 1)[-1]
        if not status.is_dir and name.startswith("part-"):
            files[name] = client.read_text(status.path).encode()
    return files


def _framework_counters(report: JobReport) -> dict[str, dict[str, int]]:
    """Counter groups that must survive chaos untouched.

    "Job Counters" (launches, locality, failures) legitimately differ
    when attempts are re-executed; everything else — records, bytes,
    user counters — must match the fault-free run exactly.
    """
    return {
        group: names
        for group, names in report.counters.as_dict().items()
        if group != "Job Counters"
    }


def _settled_fsck(mr: MapReduceCluster, path: str) -> str:
    """``fsck(path).render()`` once replication has settled.

    "Settled" — NameNode up, out of safemode, nothing under- or
    over-replicated, no corrupt replicas, no missing blocks — is the
    stable comparison point at which a recovered run's namespace must
    be indistinguishable from the fault-free baseline's.
    """

    def settled() -> bool:
        nn = mr.hdfs.namenode
        if nn.down or nn.safemode.active:
            return False
        report = fsck(nn, path)
        return (
            report.under_replicated == 0
            and report.over_replicated == 0
            and report.corrupt_replicas == 0
            and report.missing_blocks == 0
        )

    mr.hdfs.wait_until(settled, timeout=8 * 3600.0, step=30.0)
    return fsck(mr.hdfs.namenode, path).render()


def _render_event(event) -> str:
    rendered = " ".join(f"{k}={event.data[k]}" for k in sorted(event.data))
    return f"t={event.time:10.3f}  {event.topic:35s} {rendered}".rstrip()


def _run_once(
    scenario: Scenario,
    plan: FaultPlan | None,
    backend: str | None,
    checks: list[Check] | None = None,
    sanitize: bool = False,
    transport: str = "framed",
    block_cache_bytes: int | None = None,
) -> tuple[JobReport, dict[str, bytes], list[str], list[str], str | None]:
    """One full drill execution.

    Returns (report, files, timeline, fault log, settled-fsck render) —
    the last only for scenarios that set ``fsck_path``.
    """
    with _make_cluster(
        backend,
        sanitize=sanitize,
        transport=transport,
        block_cache_bytes=block_cache_bytes,
    ) as mr:
        input_path = None if scenario.workload else _load_corpus(mr)
        mr.sim.bus.record_history = True
        injector = (
            FaultInjector(plan, mr).arm() if plan is not None else None
        )
        try:
            if scenario.workload is not None:
                report, files = scenario.workload(mr)
            else:
                report = mr.run_job(
                    _job(), input_path, "/chaos/out", timeout=scenario.timeout
                )
                files = _read_part_files(mr, "/chaos/out")
            if injector is not None and checks is not None and scenario.post:
                scenario.post(mr, injector, checks)
            fsck_render = (
                _settled_fsck(mr, scenario.fsck_path)
                if scenario.fsck_path is not None
                else None
            )
        finally:
            fault_log = injector.fault_log() if injector is not None else []
            if injector is not None:
                injector.disarm()
        timeline = [
            _render_event(e)
            for e in mr.sim.bus.history()
            if e.topic.startswith(TIMELINE_TOPICS)
        ]
        return report, files, timeline, fault_log, fsck_render


def run_scenario(
    name: str,
    seed: int = 0,
    backend: str | None = None,
    sanitize: bool = False,
    transport: str = "framed",
    block_cache_bytes: int | None = None,
) -> ScenarioResult:
    """Execute one drill: baseline, faulty run, and a replay.

    The three runs back the three acceptance claims — the job *heals*
    (faulty output is bit-identical to the fault-free baseline, with
    framework/user counters intact), and the chaos itself is
    *reproducible* (replaying the same plan seed yields an identical
    fault log).  ``block_cache_bytes`` overrides the DataNode block
    cache (0 disables it) so the data-path property tests can prove
    drills are bit-identical cache-on vs cache-off.
    """
    scenario = get_scenario(name)
    plan = scenario.plan(seed)
    result = ScenarioResult(name=scenario.name, seed=seed, plan=plan)

    baseline_report, baseline_files, _, _, baseline_fsck = _run_once(
        scenario,
        None,
        backend,
        sanitize=sanitize,
        transport=transport,
        block_cache_bytes=block_cache_bytes,
    )
    result.baseline_report = baseline_report
    result.baseline_files = baseline_files
    result.baseline_fsck_render = baseline_fsck
    result.check(
        "fault-free baseline succeeded",
        baseline_report.succeeded,
        str(baseline_report.failure_reason),
    )

    report, files, timeline, fault_log, fsck_render = _run_once(
        scenario,
        plan,
        backend,
        checks=result.checks,
        sanitize=sanitize,
        transport=transport,
        block_cache_bytes=block_cache_bytes,
    )
    result.report = report
    result.output_files = files
    result.timeline = timeline
    result.fault_log = fault_log
    result.fsck_render = fsck_render
    result.check(
        "job completed despite injected faults",
        report.succeeded,
        str(report.failure_reason),
    )
    result.check(
        "faults were actually injected",
        bool(fault_log),
        "plan injected nothing",
    )
    result.check(
        "output bit-identical to fault-free baseline",
        files == baseline_files,
        f"faulty={sorted(files)} baseline={sorted(baseline_files)}",
    )
    result.check(
        "framework + user counters match baseline",
        _framework_counters(report) == _framework_counters(baseline_report),
        "counter drift outside 'Job Counters'",
    )
    if scenario.fsck_path is not None:
        result.check(
            "settled fsck bit-identical to fault-free baseline",
            fsck_render == baseline_fsck,
            f"faulty fsck:\n{fsck_render}\nbaseline fsck:\n{baseline_fsck}",
        )
    if sanitize:
        sanitizer_groups = {
            run: rep.counters.as_dict().get("Sanitizer", {})
            for run, rep in (
                ("baseline", baseline_report),
                ("faulty", report),
            )
        }
        result.check(
            "runtime sanitizer found zero violations",
            not any(sanitizer_groups.values()),
            f"violations: {sanitizer_groups}",
        )

    _, _, _, replay_log, _ = _run_once(
        scenario,
        plan,
        backend,
        sanitize=sanitize,
        transport=transport,
        block_cache_bytes=block_cache_bytes,
    )
    result.replay_fault_log = replay_log
    result.check(
        "replaying the seed reproduces the exact fault log",
        replay_log == fault_log,
        f"replay diverged: {len(fault_log)} vs {len(replay_log)} entries",
    )
    return result


# ---------------------------------------------------------------------------
# the drills


def _kill_datanode_plan(seed: int) -> FaultPlan:
    # The first completed map pulls the trigger: one DataNode dies
    # mid-job and stays down until well after the job finishes, so
    # every later read of its replicas must fail over.
    return FaultPlan(seed=seed).on_event(
        "mr.task.completed", "datanode.crash", count=1, target="node2"
    )


def _lost_map_output_plan(seed: int) -> FaultPlan:
    # Kill the TaskTracker that just completed the second map, taking
    # its materialized map output with it.  Reduces retry their fetches
    # with backoff, exhaust the budget, escalate to map_output_lost,
    # the map re-executes elsewhere, and the reduces refetch.
    return FaultPlan(seed=seed).on_event(
        "mr.task.completed",
        "tracker.crash",
        count=2,
        target_from="tracker",
        restart_after=120.0,
    )


def _corrupt_cluster_plan(seed: int) -> FaultPlan:
    # Silent on-disk corruption across the whole cluster, sparing each
    # block's last healthy replica so the data stays recoverable — the
    # "corrupted Hadoop cluster" incident.
    return FaultPlan(seed=seed).corrupt_blocks(at=1.0, count=2)


def _corrupt_post(
    mr: MapReduceCluster, injector: FaultInjector, checks: list[Check]
) -> None:
    # The paper's recovery: bounce everything.  DataNode startup
    # integrity scans surface the bad replicas, the NameNode re-
    # replicates from healthy copies, and fsck comes back HEALTHY.
    mr.hdfs.restart_cluster()
    healed = mr.hdfs.wait_until(
        lambda: not mr.hdfs.namenode.safemode.active
        and fsck(mr.hdfs.namenode).healthy
        and fsck(mr.hdfs.namenode).corrupt_replicas == 0,
        timeout=8 * 3600.0,
        step=10.0,
    )
    report = fsck(mr.hdfs.namenode)
    checks.append(
        (
            "fsck HEALTHY after restart scans + re-replication",
            bool(healed),
            f"status={report.status} corrupt_replicas={report.corrupt_replicas}",
        )
    )


def _thundering_restart_plan(seed: int) -> FaultPlan:
    # Mid-job, the whole cluster is bounced — the recovery procedure
    # itself as the fault.  In-flight attempts are lost, the NameNode
    # sits in safemode through the startup scans, trackers re-register
    # and are reconciled, and the job still finishes correctly.
    return FaultPlan(seed=seed).on_event(
        "mr.task.completed", "cluster.restart", count=1
    )


def _shuffle_storm_plan(seed: int) -> FaultPlan:
    # A bad network night: transient fetch failures, flaky tasks, and
    # stragglers all at once.  Retries with backoff ride out most of
    # it; what escalates goes through the full re-execution chain.
    return (
        FaultPlan(seed=seed)
        .shuffle_failure_rate(0.25)
        .task_exception_rate(0.05)
        .straggler_rate(0.10, factor=3.0)
    )


def _namenode_crash_plan(seed: int) -> FaultPlan:
    # The second completed map kills the NameNode outright: namespace,
    # block map and registrations all gone from memory.  45 seconds
    # later recovery replays fsimage + edit log, safemode holds until
    # DataNodes re-report, paused trackers resume, and the job — plus a
    # settled fsck of the whole namespace — must be bit-identical to
    # the fault-free baseline.
    return FaultPlan(seed=seed).on_event(
        "mr.task.completed", "namenode.crash", count=2, recover_after=45.0
    )


def _namenode_crash_post(
    mr: MapReduceCluster, injector: FaultInjector, checks: list[Check]
) -> None:
    nn = mr.hdfs.namenode
    stats = nn.journal.last_recovery
    checks.append(
        (
            "NameNode crashed and recovered from its journal",
            nn.crashes >= 1 and nn.recoveries >= 1 and stats is not None,
            f"crashes={nn.crashes} recoveries={nn.recoveries}",
        )
    )
    checks.append(
        (
            "recovery replayed journaled edits",
            stats is not None and stats.replayed_edits > 0,
            f"recovery={stats}",
        )
    )


def _checkpoint_roll_plan(seed: int) -> FaultPlan:
    # A SecondaryNameNode-style checkpoint rolls after the second map
    # (fresh fsimage, truncated edit log), then the fourth map kills
    # the NameNode.  Recovery now loads the checkpointed image and
    # replays only the short post-checkpoint edit tail.
    return (
        FaultPlan(seed=seed)
        .on_event("mr.task.completed", "checkpoint.roll", count=2)
        .on_event(
            "mr.task.completed", "namenode.crash", count=4, recover_after=45.0
        )
    )


def _checkpoint_roll_post(
    mr: MapReduceCluster, injector: FaultInjector, checks: list[Check]
) -> None:
    journal = mr.hdfs.namenode.journal
    checks.append(
        (
            "checkpoint rolled a fresh fsimage",
            journal.checkpoints >= 1,
            f"checkpoints={journal.checkpoints}",
        )
    )
    stats = journal.last_recovery
    checks.append(
        (
            "recovery loaded a non-empty fsimage",
            stats is not None and stats.image_inodes > 0,
            f"recovery={stats}",
        )
    )
    checks.append(
        (
            "recovery replayed only the post-checkpoint edit tail",
            stats is not None and stats.replayed_edits < journal.edits_logged,
            f"recovery={stats} edits_logged={journal.edits_logged}",
        )
    )


def _pagerank_datanode_plan(seed: int) -> FaultPlan:
    # The second completed *job* (an early PageRank stage) pulls the
    # trigger: a DataNode dies between iterations and stays down, so
    # every later stage re-reading cached link-table intermediates and
    # prior-iteration ranks must fail over to surviving replicas.
    return FaultPlan(seed=seed).on_event(
        "mr.jobtracker.succeeded", "datanode.crash", count=2, target="node2"
    )


def _pagerank_workload(
    mr: MapReduceCluster,
) -> tuple[JobReport, dict[str, bytes]]:
    """Compiled sparklite PageRank: a multi-stage iterative program.

    Every iteration is a join + reduce stage pair over HDFS-resident
    intermediates; the final ranks (full ``repr`` precision — the
    bit-identity claim) are the drill's comparable output, and the last
    stage's report carries the counters that must survive the chaos.
    """
    from repro.jobs.pagerank import generate_web_graph, pagerank
    from repro.sparklite.context import SparkLiteContext

    names = [node.name for node in mr.hdfs.topology.nodes()]
    sc = SparkLiteContext(names, cluster=mr, sparklite_backend="mapreduce")
    graph = generate_web_graph(seed=3, num_pages=40, avg_degree=3)
    result = pagerank(sc, graph.edges, iterations=3, num_partitions=3)
    ranks = (
        "\n".join(f"{page}\t{rank!r}" for page, rank in result.ranks) + "\n"
    )
    runner = sc._compiled_runner()
    return runner.last_report, {"ranks": ranks.encode()}


SCENARIOS: dict[str, Scenario] = {
    s.name: s
    for s in (
        Scenario(
            name="kill_datanode",
            title="Kill a DataNode mid-job",
            paper_incident=(
                "worker daemons dying under load; HDFS reads must fail "
                "over to surviving replicas (Section II.A)"
            ),
            plan=_kill_datanode_plan,
        ),
        Scenario(
            name="lost_map_output",
            title="Lose a completed map's output",
            paper_incident=(
                "a crashed worker takes finished map output with it; the "
                "JobTracker re-executes completed maps (Section II.A)"
            ),
            plan=_lost_map_output_plan,
        ),
        Scenario(
            name="corrupt_cluster_fsck",
            title="Corrupted cluster, then fsck",
            paper_incident=(
                "the corrupted Hadoop cluster that forced staff to bounce "
                "everything and wait out the startup scans (Section II.A)"
            ),
            plan=_corrupt_cluster_plan,
            post=_corrupt_post,
        ),
        Scenario(
            name="thundering_restart",
            title="Bounce the whole cluster mid-job",
            paper_incident=(
                "the fifteen-minute full-cluster restart: safemode, "
                "integrity scans, every daemon re-registering (Section II.A)"
            ),
            plan=_thundering_restart_plan,
        ),
        Scenario(
            name="namenode_crash_recovery",
            title="Crash the NameNode mid-job, recover from the journal",
            paper_incident=(
                "the NameNode as single point of failure holding all "
                "metadata in memory (Figure 2); only the edit log brings "
                "the namespace back"
            ),
            plan=_namenode_crash_plan,
            post=_namenode_crash_post,
            fsck_path="/",
        ),
        Scenario(
            name="checkpoint_roll",
            title="Checkpoint, then crash: recover from fsimage + edit tail",
            paper_incident=(
                "the SecondaryNameNode checkpoint cycle that bounds "
                "edit-log replay on NameNode restart (Section III)"
            ),
            plan=_checkpoint_roll_plan,
            post=_checkpoint_roll_post,
            fsck_path="/",
        ),
        Scenario(
            name="shuffle_storm",
            title="Shuffle-failure storm with flaky, slow tasks",
            paper_incident=(
                "overloaded shared gigabit links making fetches flaky and "
                "tasks drag (Sections II.A, V)"
            ),
            plan=_shuffle_storm_plan,
        ),
        Scenario(
            name="pagerank_datanode_loss",
            title="Kill a DataNode between PageRank iterations",
            paper_incident=(
                "iterative jobs amplify single-node failures: every later "
                "stage re-reads cached intermediates from HDFS, so a dead "
                "DataNode mid-iteration exercises replica failover on the "
                "compiled sparklite pipeline (Sections II.A, IV)"
            ),
            plan=_pagerank_datanode_plan,
            workload=_pagerank_workload,
        ),
    )
}


def get_scenario(name: str) -> Scenario:
    try:
        return SCENARIOS[name]
    except KeyError:
        raise ConfigError(
            f"unknown chaos scenario {name!r}; "
            f"expected one of {sorted(SCENARIOS)}"
        ) from None


def list_scenarios() -> list[Scenario]:
    return [SCENARIOS[name] for name in sorted(SCENARIOS)]
