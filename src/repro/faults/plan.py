"""Declarative fault plans: *what* goes wrong, *when*, at *which* rate.

A :class:`FaultPlan` is pure data — it composes faults from the
cross-layer catalog without touching a cluster.  A
:class:`~repro.faults.injector.FaultInjector` later arms the plan
against a live :class:`~repro.mapreduce.cluster.MapReduceCluster`.

The catalog
===========

Scheduled faults (fire at a fixed delay after arming, or when a bus
event trips a trigger):

=====================  ==================================================
``datanode.crash``     one DataNode daemon dies (optionally restarts)
``tracker.crash``      one TaskTracker daemon dies
``worker.crash``       both daemons on one node die together
``disk.slow``          a node's disk reads slow down by ``factor``
``blocks.corrupt``     silent on-disk corruption of stored replicas
``cluster.restart``    the paper's bounce-everything recovery procedure
``namenode.crash``     the NameNode process dies (journal survives;
                       optionally recovers ``recover_after`` later)
``namenode.recover``   replay fsimage + edits on a crashed NameNode
``checkpoint.roll``    SecondaryNameNode-style fsimage roll + truncate
``journal.torn_tail``  chop bytes off the edit log's tail (torn write)
=====================  ==================================================

Probabilistic faults (a rate in ``[0, 1]`` drawn once per opportunity,
from an RNG stream named by the opportunity — attempt id, node +
heartbeat number, work index — so draws replay identically regardless
of execution order or backend):

=========================  ============================================
``task.exception``         a task attempt raises at launch
``task.straggler``         an attempt's runtime is multiplied
``shuffle.fetch_failure``  one reduce-side fetch fails transiently
``datanode.crash``         a DataNode dies instead of heartbeating
``tracker.crash``          a TaskTracker dies instead of heartbeating
``backend.worker_crash``   a pooled-backend worker dies holding a result
``namenode.crash``         the NameNode dies servicing a heartbeat
=========================  ============================================
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any

from repro.util.errors import ConfigError

#: Kinds valid for scheduled/triggered faults.
SCHEDULED_KINDS = frozenset(
    {
        "datanode.crash",
        "tracker.crash",
        "worker.crash",
        "datanode.restart",
        "tracker.restart",
        "worker.restart",
        "disk.slow",
        "blocks.corrupt",
        "cluster.restart",
        "namenode.crash",
        "namenode.recover",
        "checkpoint.roll",
        "journal.torn_tail",
    }
)

#: Kinds valid for probabilistic faults.
RATE_KINDS = frozenset(
    {
        "task.exception",
        "task.straggler",
        "shuffle.fetch_failure",
        "datanode.crash",
        "tracker.crash",
        "backend.worker_crash",
        "namenode.crash",
    }
)

#: Scheduled kinds that must name a target node.
_NEEDS_TARGET = frozenset(
    {
        "datanode.crash",
        "tracker.crash",
        "worker.crash",
        "datanode.restart",
        "tracker.restart",
        "worker.restart",
        "disk.slow",
    }
)


def _freeze(params: dict[str, Any]) -> tuple[tuple[str, Any], ...]:
    return tuple(sorted(params.items()))


@dataclass(frozen=True)
class ScheduledFault:
    """One fault fired ``at`` simulated seconds after the plan is armed."""

    at: float
    kind: str
    target: str | None = None
    params: tuple[tuple[str, Any], ...] = ()

    def param(self, name: str, default: Any = None) -> Any:
        return dict(self.params).get(name, default)

    def describe(self) -> str:
        bits = [f"t+{self.at:g}s {self.kind}"]
        if self.target:
            bits.append(f"target={self.target}")
        bits += [f"{k}={v}" for k, v in self.params]
        return " ".join(bits)


@dataclass(frozen=True)
class RateFault:
    """One probabilistic fault drawn per opportunity at ``rate``."""

    kind: str
    rate: float
    params: tuple[tuple[str, Any], ...] = ()

    def param(self, name: str, default: Any = None) -> Any:
        return dict(self.params).get(name, default)

    def describe(self) -> str:
        bits = [f"{self.kind} rate={self.rate:g}"]
        bits += [f"{k}={v}" for k, v in self.params]
        return " ".join(bits)


@dataclass(frozen=True)
class TriggerFault:
    """A scheduled-catalog fault fired when the ``count``-th bus event
    under topic prefix ``on`` is observed (e.g. "crash the tracker that
    just completed the second map").  ``target_from`` names an event
    data key to take the target node from; an explicit ``target`` wins.
    """

    on: str
    kind: str
    count: int = 1
    target: str | None = None
    target_from: str | None = None
    params: tuple[tuple[str, Any], ...] = ()

    def describe(self) -> str:
        bits = [f"on {self.on}#{self.count} {self.kind}"]
        if self.target:
            bits.append(f"target={self.target}")
        if self.target_from:
            bits.append(f"target_from={self.target_from}")
        bits += [f"{k}={v}" for k, v in self.params]
        return " ".join(bits)


@dataclass
class FaultPlan:
    """A seeded, declarative composition of faults.

    Builders mutate-and-return ``self`` so plans read as chains::

        plan = (
            FaultPlan(seed=7)
            .crash_datanode(at=30.0, node="node2", restart_after=60.0)
            .shuffle_failure_rate(0.2)
        )

    The ``seed`` drives *every* probabilistic draw the armed plan makes
    (via name-keyed ``util.rng`` streams), so the same plan on the same
    cluster seed replays an identical fault/recovery event log.
    """

    seed: int = 0
    scheduled: list[ScheduledFault] = field(default_factory=list)
    rates: list[RateFault] = field(default_factory=list)
    triggers: list[TriggerFault] = field(default_factory=list)

    # -- scheduled faults ------------------------------------------------
    def _add_scheduled(
        self, at: float, kind: str, target: str | None, **params: Any
    ) -> "FaultPlan":
        if kind not in SCHEDULED_KINDS:
            raise ConfigError(
                f"unknown scheduled fault kind {kind!r}; "
                f"expected one of {sorted(SCHEDULED_KINDS)}"
            )
        if at < 0:
            raise ConfigError("fault time must be >= 0 (seconds after arm)")
        if kind in _NEEDS_TARGET and not target:
            raise ConfigError(f"{kind} needs a target node")
        self.scheduled.append(
            ScheduledFault(at=at, kind=kind, target=target, params=_freeze(params))
        )
        return self

    def crash_datanode(
        self, at: float, node: str, restart_after: float | None = None
    ) -> "FaultPlan":
        """Kill one DataNode daemon (the paper's mid-job drill)."""
        return self._add_scheduled(
            at, "datanode.crash", node, restart_after=restart_after
        )

    def crash_tracker(
        self, at: float, node: str, restart_after: float | None = None
    ) -> "FaultPlan":
        return self._add_scheduled(
            at, "tracker.crash", node, restart_after=restart_after
        )

    def crash_worker(
        self, at: float, node: str, restart_after: float | None = None
    ) -> "FaultPlan":
        """Kill both daemons on one node (the heap-leak cascade shape)."""
        return self._add_scheduled(
            at, "worker.crash", node, restart_after=restart_after
        )

    def slow_disk(
        self,
        at: float,
        node: str,
        factor: float = 8.0,
        duration: float | None = None,
    ) -> "FaultPlan":
        """Multiply one node's disk-read latency (a failing spindle)."""
        if factor < 1.0:
            raise ConfigError("slow-disk factor must be >= 1.0")
        return self._add_scheduled(
            at, "disk.slow", node, factor=factor, duration=duration
        )

    def corrupt_blocks(
        self,
        at: float,
        node: str | None = None,
        count: int = 1,
        spare_last_replica: bool = True,
    ) -> "FaultPlan":
        """Silently corrupt up to ``count`` replicas per node (all nodes
        when ``node`` is None).  ``spare_last_replica`` refuses to damage
        a block's only healthy copy, keeping the drill recoverable."""
        if count < 1:
            raise ConfigError("corrupt_blocks count must be >= 1")
        return self._add_scheduled(
            at,
            "blocks.corrupt",
            node,
            count=count,
            spare_last_replica=spare_last_replica,
        )

    def restart_cluster(self, at: float) -> "FaultPlan":
        """Bounce everything (the paper's corrupted-cluster recovery)."""
        return self._add_scheduled(at, "cluster.restart", None)

    def crash_namenode(
        self, at: float, recover_after: float | None = None
    ) -> "FaultPlan":
        """Kill the NameNode process — the paper's single point of
        failure.  In-memory namespace, block map and registrations are
        gone; only the journal survives.  ``recover_after`` schedules a
        journal replay that many seconds later."""
        return self._add_scheduled(
            at, "namenode.crash", None, recover_after=recover_after
        )

    def recover_namenode(self, at: float) -> "FaultPlan":
        """Recover a crashed NameNode: load the fsimage, replay edits,
        re-enter safemode until DataNodes re-report."""
        return self._add_scheduled(at, "namenode.recover", None)

    def roll_checkpoint(self, at: float) -> "FaultPlan":
        """SecondaryNameNode roll: merge the edit log into a fresh
        fsimage, swap it in, truncate the edits."""
        return self._add_scheduled(at, "checkpoint.roll", None)

    def tear_journal_tail(
        self, at: float, drop_bytes: int | None = None
    ) -> "FaultPlan":
        """Chop bytes off the edit-log tail (a torn write: the crash
        landed mid-append).  ``None`` tears halfway into the last
        fully-written record; recovery replays the valid prefix."""
        return self._add_scheduled(
            at, "journal.torn_tail", None, drop_bytes=drop_bytes
        )

    def on_event(
        self,
        topic: str,
        kind: str,
        count: int = 1,
        target: str | None = None,
        target_from: str | None = None,
        **params: Any,
    ) -> "FaultPlan":
        """Fire a scheduled-catalog fault when a bus event trips it."""
        if kind not in SCHEDULED_KINDS:
            raise ConfigError(
                f"unknown scheduled fault kind {kind!r}; "
                f"expected one of {sorted(SCHEDULED_KINDS)}"
            )
        if count < 1:
            raise ConfigError("trigger count must be >= 1")
        if kind in _NEEDS_TARGET and not target and not target_from:
            raise ConfigError(f"{kind} needs a target (or target_from)")
        self.triggers.append(
            TriggerFault(
                on=topic,
                kind=kind,
                count=count,
                target=target,
                target_from=target_from,
                params=_freeze(params),
            )
        )
        return self

    # -- probabilistic faults --------------------------------------------
    def _add_rate(self, kind: str, rate: float, **params: Any) -> "FaultPlan":
        if kind not in RATE_KINDS:
            raise ConfigError(
                f"unknown rate fault kind {kind!r}; "
                f"expected one of {sorted(RATE_KINDS)}"
            )
        if not (0.0 <= rate <= 1.0):
            raise ConfigError("fault rate must be in [0, 1]")
        if any(existing.kind == kind for existing in self.rates):
            raise ConfigError(f"rate for {kind!r} already set")
        self.rates.append(RateFault(kind=kind, rate=rate, params=_freeze(params)))
        return self

    def task_exception_rate(self, rate: float) -> "FaultPlan":
        """Per-attempt probability of raising at launch."""
        return self._add_rate("task.exception", rate)

    def straggler_rate(self, rate: float, factor: float = 4.0) -> "FaultPlan":
        """Per-attempt probability of running ``factor`` times slower."""
        if factor < 1.0:
            raise ConfigError("straggler factor must be >= 1.0")
        return self._add_rate("task.straggler", rate, factor=factor)

    def shuffle_failure_rate(self, rate: float) -> "FaultPlan":
        """Per-fetch probability that a reduce's map-output copy fails."""
        return self._add_rate("shuffle.fetch_failure", rate)

    def datanode_crash_rate(
        self, rate: float, restart_after: float | None = None
    ) -> "FaultPlan":
        """Per-heartbeat probability that a DataNode dies."""
        return self._add_rate(
            "datanode.crash", rate, restart_after=restart_after
        )

    def tracker_crash_rate(
        self, rate: float, restart_after: float | None = None
    ) -> "FaultPlan":
        """Per-heartbeat probability that a TaskTracker dies."""
        return self._add_rate("tracker.crash", rate, restart_after=restart_after)

    def worker_crash_rate(self, rate: float) -> "FaultPlan":
        """Per-work-item probability that a pooled backend worker dies."""
        return self._add_rate("backend.worker_crash", rate)

    def namenode_crash_rate(
        self, rate: float, recover_after: float = 60.0
    ) -> "FaultPlan":
        """Per-processed-heartbeat probability that the NameNode dies.
        Unlike the DataNode/tracker rates, recovery defaults to *on*
        (60 s): a cluster whose NameNode never comes back cannot finish
        any drill."""
        return self._add_rate("namenode.crash", rate, recover_after=recover_after)

    # -- utilities -------------------------------------------------------
    def with_seed(self, seed: int) -> "FaultPlan":
        """A copy of this plan reseeded (for property tests)."""
        return replace(
            self,
            seed=seed,
            scheduled=list(self.scheduled),
            rates=list(self.rates),
            triggers=list(self.triggers),
        )

    def is_empty(self) -> bool:
        return not (self.scheduled or self.rates or self.triggers)

    def describe(self) -> str:
        lines = [f"FaultPlan(seed={self.seed})"]
        for fault in self.scheduled:
            lines.append(f"  scheduled: {fault.describe()}")
        for trigger in self.triggers:
            lines.append(f"  trigger:   {trigger.describe()}")
        for rate in self.rates:
            lines.append(f"  rate:      {rate.describe()}")
        if self.is_empty():
            lines.append("  (no faults)")
        return "\n".join(lines)
