"""The reported survey numbers, and a synthesizer that reproduces them.

``REPORTED`` transcribes the paper's Tables I-IV verbatim.  The paper
only publishes summaries (mean ± std over the 29 returned forms, and
Table IV's raw counts), so :func:`synthesize_responses` reconstructs a
plausible per-student response set: integer-valued, on the right scales,
whose summary statistics match the published numbers to rounding
precision.  The fit is deterministic given the seed.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.survey.likert import Scale, PROFICIENCY_SCALE, TIME_SCALE, USEFULNESS_SCALE
from repro.survey.models import (
    MATERIALS,
    PROFICIENCY_TOPICS,
    TIME_ACTIVITIES,
    SurveyResponse,
)
from repro.util.rng import RngStream

#: Students enrolled in Fall 2013 (Section II.D).
ENROLLED = 39
#: Returned survey forms.
RESPONSES = 29


@dataclass(frozen=True)
class ReportedStat:
    """One published mean ± std cell."""

    mean: float
    std: float


REPORTED = {
    # Table I: proficiency 0-10, before / after the module.
    "proficiency_before": {
        "Java": ReportedStat(6.6, 1.2),
        "Linux": ReportedStat(5.86, 1.7),
        "Networking": ReportedStat(4.38, 1.6),
        "Hadoop MapReduce": ReportedStat(0.03, 0.2),
    },
    "proficiency_after": {
        "Java": ReportedStat(7.3, 1.1),
        "Linux": ReportedStat(7.1, 1.7),
        "Networking": ReportedStat(6.29, 1.5),
        "Hadoop MapReduce": ReportedStat(4.53, 1.16),
    },
    # Table II: time to complete, 1-4 scale.
    "time_taken": {
        "First Assignment": ReportedStat(3.5, 0.7),
        "Second Assignment": ReportedStat(3.1, 0.9),
        "Set up Hadoop cluster": ReportedStat(2.5, 1.1),
    },
    # Table III: helpfulness, 1-4 scale.
    "usefulness": {
        "Lecture": ReportedStat(3.0, 0.9),
        "In-class lab": ReportedStat(3.6, 0.7),
        "Hadoop cluster tutorial": ReportedStat(2.9, 0.82),
    },
    # Table IV: lowest CS level at which to introduce Hadoop MapReduce.
    "year_level_counts": {
        "Senior": 7,
        "Junior": 14,
        "Sophomore": 6,
        "Freshman": 2,
    },
}


def fit_integer_sample(
    n: int,
    target_mean: float,
    target_std: float,
    scale: Scale,
    rng: RngStream,
    tolerance: float = 0.02,
    max_iters: int = 4000,
) -> list[int]:
    """Find ``n`` integers on ``scale`` whose sample mean/std (ddof=1)
    match the targets as closely as integer-valued data allows.

    Starts from clipped-normal draws, then greedily nudges single
    responses by ±1 to shrink the summary error.  Deterministic.
    """
    gen = rng.rng
    values = np.clip(
        np.round(gen.normal(target_mean, max(target_std, 1e-6), size=n)),
        scale.low,
        scale.high,
    ).astype(np.int64)

    def error(vals: np.ndarray) -> float:
        mean = vals.mean()
        std = vals.std(ddof=1) if n > 1 else 0.0
        return (mean - target_mean) ** 2 + 0.5 * (std - target_std) ** 2

    current = error(values)
    for _ in range(max_iters):
        if current < tolerance**2:
            break
        best_move: tuple[int, int] | None = None
        best_error = current
        for i in range(n):
            for delta in (-1, 1):
                candidate = values[i] + delta
                if not (scale.low <= candidate <= scale.high):
                    continue
                values[i] += delta
                trial = error(values)
                values[i] -= delta
                if trial < best_error:
                    best_error = trial
                    best_move = (i, delta)
        if best_move is None:
            break
        values[best_move[0]] += best_move[1]
        current = best_error
    return [int(v) for v in values]


def synthesize_responses(seed: int = 2013, n: int = RESPONSES) -> list[SurveyResponse]:
    """Build ``n`` survey responses matching every reported summary.

    Before/after proficiency values are rank-paired so individual
    students improve (or hold steady) on every topic wherever the
    marginals allow, mirroring the paper's "obvious improvements".
    """
    rng = RngStream(seed=seed).child("survey")
    responses = [SurveyResponse(student_id=i + 1) for i in range(n)]

    for topic in PROFICIENCY_TOPICS:
        before = fit_integer_sample(
            n,
            REPORTED["proficiency_before"][topic].mean,
            REPORTED["proficiency_before"][topic].std,
            PROFICIENCY_SCALE,
            rng.child("before", topic),
        )
        after = fit_integer_sample(
            n,
            REPORTED["proficiency_after"][topic].mean,
            REPORTED["proficiency_after"][topic].std,
            PROFICIENCY_SCALE,
            rng.child("after", topic),
        )
        # Rank-pair: i-th smallest before with i-th smallest after.
        order_before = np.argsort(np.array(before), kind="stable")
        after_sorted = sorted(after)
        for rank, student_index in enumerate(order_before):
            responses[student_index].proficiency_before[topic] = before[
                student_index
            ]
            responses[student_index].proficiency_after[topic] = after_sorted[rank]

    for activity in TIME_ACTIVITIES:
        stat = REPORTED["time_taken"][activity]
        values = fit_integer_sample(
            n, stat.mean, stat.std, TIME_SCALE, rng.child("time", activity)
        )
        for response, value in zip(responses, values):
            response.time_taken[activity] = value

    for material in MATERIALS:
        stat = REPORTED["usefulness"][material]
        values = fit_integer_sample(
            n, stat.mean, stat.std, USEFULNESS_SCALE, rng.child("useful", material)
        )
        for response, value in zip(responses, values):
            response.usefulness[material] = value

    levels: list[str] = []
    for level, count in REPORTED["year_level_counts"].items():
        levels.extend([level] * count)
    assert len(levels) == n, "Table IV counts must sum to the response count"
    rng.child("levels").shuffle(levels)
    for response, level in zip(responses, levels):
        response.year_level = level

    for response in responses:
        response.validate()
    return responses
