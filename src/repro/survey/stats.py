"""Summary statistics over survey responses."""

from __future__ import annotations

from collections import Counter

import numpy as np

from repro.survey.models import (
    MATERIALS,
    PROFICIENCY_TOPICS,
    TIME_ACTIVITIES,
    SurveyResponse,
)


def mean_std_of(values: list[int | float]) -> tuple[float, float]:
    """Sample mean and standard deviation (ddof=1), the survey norm."""
    arr = np.asarray(values, dtype=np.float64)
    if arr.size == 0:
        return 0.0, 0.0
    std = float(arr.std(ddof=1)) if arr.size > 1 else 0.0
    return float(arr.mean()), std


def summarize_responses(responses: list[SurveyResponse]) -> dict:
    """Every table's numbers, computed from raw responses."""
    summary: dict = {
        "n": len(responses),
        "proficiency_before": {},
        "proficiency_after": {},
        "time_taken": {},
        "usefulness": {},
        "year_level_counts": {},
    }
    for topic in PROFICIENCY_TOPICS:
        summary["proficiency_before"][topic] = mean_std_of(
            [r.proficiency_before[topic] for r in responses]
        )
        summary["proficiency_after"][topic] = mean_std_of(
            [r.proficiency_after[topic] for r in responses]
        )
    for activity in TIME_ACTIVITIES:
        summary["time_taken"][activity] = mean_std_of(
            [r.time_taken[activity] for r in responses]
        )
    for material in MATERIALS:
        summary["usefulness"][material] = mean_std_of(
            [r.usefulness[material] for r in responses]
        )
    counts = Counter(r.year_level for r in responses)
    summary["year_level_counts"] = dict(counts)
    return summary


def improvement_per_topic(responses: list[SurveyResponse]) -> dict[str, float]:
    """Mean per-student (after - before) gain per topic."""
    gains: dict[str, float] = {}
    for topic in PROFICIENCY_TOPICS:
        deltas = [
            r.proficiency_after[topic] - r.proficiency_before[topic]
            for r in responses
        ]
        gains[topic] = float(np.mean(deltas)) if deltas else 0.0
    return gains
