"""Regenerate the paper's Tables I-IV from response data.

Each function returns ``(TextTable, deviations)`` where ``deviations``
maps each cell to |computed - reported|, so benchmarks can assert the
reproduction is within rounding of the published numbers.
"""

from __future__ import annotations

from repro.survey.dataset import REPORTED
from repro.survey.models import (
    MATERIALS,
    PROFICIENCY_TOPICS,
    TIME_ACTIVITIES,
    SurveyResponse,
)
from repro.survey.stats import summarize_responses
from repro.util.textable import TextTable, mean_std


def table1_proficiency(
    responses: list[SurveyResponse],
) -> tuple[TextTable, dict[str, float]]:
    """Table I: Level of Proficiency (0 to 10 with 10 being highest)."""
    summary = summarize_responses(responses)
    table = TextTable(
        ["Topic", "Before", "After"],
        title="Table I: Level of Proficiency (0 to 10 with 10 being highest)",
    )
    deviations: dict[str, float] = {}
    for topic in PROFICIENCY_TOPICS:
        before_mean, before_std = summary["proficiency_before"][topic]
        after_mean, after_std = summary["proficiency_after"][topic]
        table.add_row(
            [topic, mean_std(before_mean, before_std), mean_std(after_mean, after_std)]
        )
        reported_before = REPORTED["proficiency_before"][topic]
        reported_after = REPORTED["proficiency_after"][topic]
        deviations[f"{topic}/before/mean"] = abs(before_mean - reported_before.mean)
        deviations[f"{topic}/before/std"] = abs(before_std - reported_before.std)
        deviations[f"{topic}/after/mean"] = abs(after_mean - reported_after.mean)
        deviations[f"{topic}/after/std"] = abs(after_std - reported_after.std)
    return table, deviations


def table2_time(
    responses: list[SurveyResponse],
) -> tuple[TextTable, dict[str, float]]:
    """Table II: Time to Complete (1-4 banded scale)."""
    summary = summarize_responses(responses)
    table = TextTable(
        ["Activity", "Time Taken"],
        title=(
            "Table II: Time to Complete (1: <30min, 2: 30min-2h, "
            "3: 2h-4h, 4: >4h)"
        ),
    )
    deviations: dict[str, float] = {}
    for activity in TIME_ACTIVITIES:
        mean, std = summary["time_taken"][activity]
        table.add_row([activity, mean_std(mean, std)])
        reported = REPORTED["time_taken"][activity]
        deviations[f"{activity}/mean"] = abs(mean - reported.mean)
        deviations[f"{activity}/std"] = abs(std - reported.std)
    return table, deviations


def table3_helpfulness(
    responses: list[SurveyResponse],
) -> tuple[TextTable, dict[str, float]]:
    """Table III: Helpfulness of Lectures and Tutorials (1-4)."""
    summary = summarize_responses(responses)
    table = TextTable(
        ["Teaching Materials", "Usefulness"],
        title=(
            "Table III: Helpfulness of Lectures and Tutorials "
            "(1: not useful ... 4: very useful)"
        ),
    )
    deviations: dict[str, float] = {}
    for material in MATERIALS:
        mean, std = summary["usefulness"][material]
        table.add_row([material, mean_std(mean, std)])
        reported = REPORTED["usefulness"][material]
        deviations[f"{material}/mean"] = abs(mean - reported.mean)
        deviations[f"{material}/std"] = abs(std - reported.std)
    return table, deviations


def table4_level(
    responses: list[SurveyResponse],
) -> tuple[TextTable, dict[str, float]]:
    """Table IV: Lowest level of CS course for Hadoop MapReduce."""
    summary = summarize_responses(responses)
    table = TextTable(
        ["Year to teach Hadoop/MapReduce", "Survey Counts"],
        title="Table IV: Lowest level at which to introduce Hadoop MapReduce",
    )
    deviations: dict[str, float] = {}
    for level, reported_count in REPORTED["year_level_counts"].items():
        count = summary["year_level_counts"].get(level, 0)
        table.add_row([level, count])
        deviations[level] = abs(count - reported_count)
    return table, deviations
