"""Survey scales, as the paper's table captions define them."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Scale:
    """An integer response scale with labeled anchors."""

    name: str
    low: int
    high: int
    labels: tuple[str, ...] = ()

    def validate(self, value: int) -> int:
        if not isinstance(value, int):
            raise TypeError(f"{self.name} responses must be int, got {value!r}")
        if not (self.low <= value <= self.high):
            raise ValueError(
                f"{self.name} response {value} outside [{self.low}, {self.high}]"
            )
        return value

    @property
    def width(self) -> int:
        return self.high - self.low + 1


#: Table I: "Level of Proficiency (0 to 10 with 10 being highest)".
PROFICIENCY_SCALE = Scale(name="proficiency", low=0, high=10)

#: Table II: "1: less than 30 minutes, 2: 30 minutes to 2 hours,
#: 3: 2 hours to 4 hours, 4: more than 4 hours".
TIME_SCALE = Scale(
    name="time-to-complete",
    low=1,
    high=4,
    labels=(
        "less than 30 minutes",
        "30 minutes to 2 hours",
        "2 hours to 4 hours",
        "more than 4 hours",
    ),
)

#: Table III: "1: not useful, 2: somewhat useful, 3: useful,
#: 4: very useful".
USEFULNESS_SCALE = Scale(
    name="usefulness",
    low=1,
    high=4,
    labels=("not useful", "somewhat useful", "useful", "very useful"),
)

#: Table IV's answer categories (lowest level to introduce Hadoop MR).
YEAR_LEVELS = ("Senior", "Junior", "Sophomore", "Freshman")
