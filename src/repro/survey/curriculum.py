"""Table V: ACM/IEEE PDC learning outcomes mapped to module artifacts.

The paper maps six knowledge units to the module; this reproduction goes
one step further and maps every outcome to the *code* that exercises it,
then verifies those artifacts exist (so the table cannot silently rot).
"""

from __future__ import annotations

import importlib
from dataclasses import dataclass

from repro.util.textable import TextTable


@dataclass(frozen=True)
class LearningOutcome:
    """One Table V row, plus its implementing artifact in this repo."""

    level: str  # Familiarity / Usage / Assessment
    knowledge_area: str
    knowledge_unit: str
    outcome: str
    #: Dotted path ``module:attribute`` of the artifact exercising it.
    artifact: str


TABLE5_OUTCOMES: tuple[LearningOutcome, ...] = (
    LearningOutcome(
        level="Familiarity",
        knowledge_area="Parallel & Distributed Computing",
        knowledge_unit="Parallelism Fundamentals",
        outcome=(
            "Distinguishing using computational resources for a faster "
            "answer from managing efficient access to a shared resource"
        ),
        artifact="repro.cluster.builder:build_hpc_cluster",
    ),
    LearningOutcome(
        level="Familiarity",
        knowledge_area="Parallel & Distributed Computing",
        knowledge_unit="Parallel Architecture",
        outcome=(
            "Describe the key performance challenges in different memory "
            "and distributed system topologies"
        ),
        artifact="repro.cluster.network:NetworkModel",
    ),
    LearningOutcome(
        level="Familiarity",
        knowledge_area="Parallel & Distributed Computing",
        knowledge_unit="Parallel Performance",
        outcome="Explain performance impacts of data locality",
        artifact="repro.mapreduce.jobtracker:JobTracker",
    ),
    LearningOutcome(
        level="Usage",
        knowledge_area="Information Management",
        knowledge_unit="Distributed Databases",
        outcome=(
            "Explain the techniques used for data fragmentation, "
            "replication, and allocation during the distributed database "
            "design process"
        ),
        artifact="repro.hdfs.placement:ReplicaPlacementPolicy",
    ),
    LearningOutcome(
        level="Usage",
        knowledge_area="Parallel & Distributed Computing",
        knowledge_unit="Parallel Algorithms, Analysis, and Programming",
        outcome="Decompose a problem via map and reduce operations",
        artifact="repro.mapreduce.api:Job",
    ),
    LearningOutcome(
        level="Assessment",
        knowledge_area="Parallel & Distributed Computing",
        knowledge_unit="Parallel Performance",
        outcome=(
            "Observe how data distribution/layout can affect an "
            "algorithm's communication costs"
        ),
        artifact="repro.cluster.network:TrafficCounters",
    ),
)


def resolve_artifact(path: str):
    """Import ``module:attribute``, raising if it no longer exists."""
    module_name, _, attr = path.partition(":")
    module = importlib.import_module(module_name)
    return getattr(module, attr)


def validate_coverage() -> list[str]:
    """Check every Table V artifact resolves; returns failures."""
    failures = []
    for outcome in TABLE5_OUTCOMES:
        try:
            resolve_artifact(outcome.artifact)
        except (ImportError, AttributeError) as exc:
            failures.append(f"{outcome.artifact}: {exc}")
    return failures


def curriculum_table(include_artifacts: bool = True) -> TextTable:
    """Render Table V (optionally with the implementing artifacts)."""
    headers = ["Level", "Knowledge Area", "Knowledge Unit", "Learning Outcome"]
    if include_artifacts:
        headers.append("Implemented by")
    table = TextTable(
        headers,
        title=(
            "Table V: Parallel and Distributed Computing Learning Outcomes "
            "through Hadoop MapReduce lectures and assignments"
        ),
    )
    for outcome in TABLE5_OUTCOMES:
        row = [
            outcome.level,
            outcome.knowledge_area,
            outcome.knowledge_unit,
            outcome.outcome[:60] + ("..." if len(outcome.outcome) > 60 else ""),
        ]
        if include_artifacts:
            row.append(outcome.artifact)
        table.add_row(row)
    return table
