"""Course-evaluation survey analytics (the paper's Tables I-IV) and the
ACM/IEEE curriculum mapping (Table V).

The paper reports summary statistics over 29 returned surveys (of 39
enrolled).  :mod:`~repro.survey.dataset` encodes those reported numbers
as ground truth and synthesizes per-student integer response vectors
whose summaries reproduce them; :mod:`~repro.survey.tables` renders the
tables; :mod:`~repro.survey.curriculum` encodes and validates Table V.
"""

from repro.survey.likert import (
    PROFICIENCY_SCALE,
    TIME_SCALE,
    USEFULNESS_SCALE,
    YEAR_LEVELS,
    Scale,
)
from repro.survey.models import SurveyResponse
from repro.survey.dataset import (
    REPORTED,
    ReportedStat,
    synthesize_responses,
)
from repro.survey.stats import mean_std_of, summarize_responses
from repro.survey.tables import (
    table1_proficiency,
    table2_time,
    table3_helpfulness,
    table4_level,
)
from repro.survey.curriculum import TABLE5_OUTCOMES, curriculum_table

__all__ = [
    "Scale",
    "PROFICIENCY_SCALE",
    "TIME_SCALE",
    "USEFULNESS_SCALE",
    "YEAR_LEVELS",
    "SurveyResponse",
    "REPORTED",
    "ReportedStat",
    "synthesize_responses",
    "mean_std_of",
    "summarize_responses",
    "table1_proficiency",
    "table2_time",
    "table3_helpfulness",
    "table4_level",
    "TABLE5_OUTCOMES",
    "curriculum_table",
]
