"""One student's survey response."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.survey.likert import (
    PROFICIENCY_SCALE,
    TIME_SCALE,
    USEFULNESS_SCALE,
    YEAR_LEVELS,
)

#: The Table I topics, in the paper's row order.
PROFICIENCY_TOPICS = ("Java", "Linux", "Networking", "Hadoop MapReduce")
#: The Table II activities.
TIME_ACTIVITIES = ("First Assignment", "Second Assignment", "Set up Hadoop cluster")
#: The Table III materials.
MATERIALS = ("Lecture", "In-class lab", "Hadoop cluster tutorial")


@dataclass
class SurveyResponse:
    """All answers from one returned survey form."""

    student_id: int
    proficiency_before: dict[str, int] = field(default_factory=dict)
    proficiency_after: dict[str, int] = field(default_factory=dict)
    time_taken: dict[str, int] = field(default_factory=dict)
    usefulness: dict[str, int] = field(default_factory=dict)
    year_level: str = "Junior"
    comments: str = ""

    def validate(self) -> "SurveyResponse":
        for topic in PROFICIENCY_TOPICS:
            PROFICIENCY_SCALE.validate(self.proficiency_before[topic])
            PROFICIENCY_SCALE.validate(self.proficiency_after[topic])
        for activity in TIME_ACTIVITIES:
            TIME_SCALE.validate(self.time_taken[activity])
        for material in MATERIALS:
            USEFULNESS_SCALE.validate(self.usefulness[material])
        if self.year_level not in YEAR_LEVELS:
            raise ValueError(f"unknown year level {self.year_level!r}")
        return self
