"""A tiny synchronous pub/sub bus used for cross-component observability.

HDFS and MapReduce components publish structured events (block written,
task launched, daemon crashed, ...).  Tests and the classroom simulator
subscribe to observe behaviour without reaching into private state —
the software analogue of the paper's insistence that students *observe*
system behaviour through the web UI and job reports.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Any, Callable


@dataclass(frozen=True)
class Event:
    """A structured occurrence inside the simulated stack."""

    topic: str
    time: float
    data: dict[str, Any] = field(default_factory=dict)

    def __getitem__(self, key: str) -> Any:
        return self.data[key]


Listener = Callable[[Event], None]


class EventBus:
    """Synchronous topic-based publish/subscribe.

    Topics are dot-separated; a subscription to a prefix receives all
    events under it (subscribing to ``"hdfs"`` sees ``"hdfs.block.written"``).
    """

    def __init__(self) -> None:
        self._listeners: dict[str, list[Listener]] = defaultdict(list)
        self._history: list[Event] = []
        self.record_history = False

    def subscribe(self, topic: str, listener: Listener) -> Callable[[], None]:
        """Register a listener; returns an unsubscribe callable."""
        self._listeners[topic].append(listener)

        def unsubscribe() -> None:
            try:
                self._listeners[topic].remove(listener)
            except ValueError:
                pass

        return unsubscribe

    def publish(self, topic: str, time: float, **data: Any) -> Event:
        event = Event(topic=topic, time=time, data=data)
        if self.record_history:
            self._history.append(event)
        # Exact-topic listeners plus every dot-prefix listener.
        parts = topic.split(".")
        for i in range(1, len(parts) + 1):
            prefix = ".".join(parts[:i])
            for listener in list(self._listeners.get(prefix, ())):
                listener(event)
        for listener in list(self._listeners.get("*", ())):
            listener(event)
        return event

    def history(self, topic_prefix: str | None = None) -> list[Event]:
        """Recorded events (requires ``record_history = True``)."""
        if topic_prefix is None:
            return list(self._history)
        return [
            e
            for e in self._history
            if e.topic == topic_prefix or e.topic.startswith(topic_prefix + ".")
        ]

    def clear_history(self) -> None:
        self._history.clear()
