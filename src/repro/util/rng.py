"""Deterministic randomness plumbing.

Every stochastic component in the stack (dataset generators, failure
injectors, the classroom student model, the survey synthesizer) draws
from a :class:`RngStream` derived from a single root seed, so an entire
classroom simulation replays bit-identically from one integer.

Streams are derived by *name* rather than by call order, so adding a new
consumer never perturbs existing ones — the property that makes
regression tests on simulation output stable.
"""

from __future__ import annotations

import hashlib

import numpy as np


def derive_seed(root_seed: int, *names: str | int) -> int:
    """Derive a child seed from a root seed and a path of names.

    The derivation hashes the textual path, so it is stable across
    Python versions and process runs (unlike ``hash()``).

    >>> derive_seed(7, "hdfs", "datanode", 3) == derive_seed(7, "hdfs", "datanode", 3)
    True
    >>> derive_seed(7, "a") != derive_seed(7, "b")
    True
    """
    digest = hashlib.sha256()
    digest.update(str(int(root_seed)).encode())
    for name in names:
        digest.update(b"/")
        digest.update(str(name).encode())
    return int.from_bytes(digest.digest()[:8], "big")


class RngStream:
    """A named, hierarchical random stream backed by numpy.

    >>> root = RngStream(seed=7)
    >>> child = root.child("datasets", "airline")
    >>> child.rng.integers(0, 10) == RngStream(seed=7).child("datasets", "airline").rng.integers(0, 10)
    True
    """

    def __init__(self, seed: int, path: tuple[str | int, ...] = ()):
        self.seed = int(seed)
        self.path = path
        self.rng: np.random.Generator = np.random.default_rng(
            derive_seed(self.seed, *path)
        )

    def child(self, *names: str | int) -> "RngStream":
        """Return an independent stream for a named sub-component."""
        return RngStream(self.seed, self.path + tuple(names))

    # Convenience passthroughs for the most common draws -----------------

    def uniform(self, low: float = 0.0, high: float = 1.0) -> float:
        return float(self.rng.uniform(low, high))

    def integers(self, low: int, high: int) -> int:
        """Draw one integer in ``[low, high)``."""
        return int(self.rng.integers(low, high))

    def normal(self, mean: float, std: float) -> float:
        return float(self.rng.normal(mean, std))

    def exponential(self, scale: float) -> float:
        return float(self.rng.exponential(scale))

    def choice(self, seq, p=None):
        """Choose one element of a sequence (optionally weighted)."""
        idx = self.rng.choice(len(seq), p=p)
        return seq[int(idx)]

    def shuffle(self, seq: list) -> None:
        """Shuffle a list in place."""
        self.rng.shuffle(seq)

    def bernoulli(self, p: float) -> bool:
        return bool(self.rng.random() < p)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RngStream(seed={self.seed}, path={'/'.join(map(str, self.path))})"
