"""Exception hierarchy for the whole stack.

Every error raised by this package derives from :class:`ReproError`, so
callers (graders, benchmarks, the classroom simulator) can contain
failures from student-style code without masking genuine bugs.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class ConfigError(ReproError):
    """Invalid or inconsistent configuration values."""


# --------------------------------------------------------------------------
# HDFS


class HdfsError(ReproError):
    """Base class for HDFS errors."""


class FileNotFoundInHdfs(HdfsError):
    """Path does not exist in the HDFS namespace."""


class FileAlreadyExists(HdfsError):
    """Create was attempted on an existing path without overwrite."""


class NotADirectory(HdfsError):
    """A path component that must be a directory is a file."""


class IsADirectory(HdfsError):
    """A file operation was attempted on a directory."""


class DirectoryNotEmpty(HdfsError):
    """Non-recursive delete of a non-empty directory."""


class SafeModeException(HdfsError):
    """Mutation rejected because the NameNode is in safe mode."""


class ReplicationError(HdfsError):
    """Could not place or maintain the requested number of replicas."""


class CorruptBlockError(HdfsError):
    """Block data failed its checksum verification."""


class BlockNotFoundError(HdfsError):
    """A block id is not known to the NameNode or a DataNode."""


class DataNodeDownError(HdfsError):
    """An operation was routed to a dead or stopped DataNode."""


class NameNodeDownError(HdfsError):
    """An RPC reached a crashed NameNode.

    Distinct from :class:`SafeModeException`: safemode is a NameNode
    that is *up* but not yet trusting its block map; this is a NameNode
    that is gone until recovery replays its journal.
    """


class JournalFormatError(HdfsError):
    """A corrupt or truncated fsimage / edit-log structure was decoded.

    A torn edit-log *tail* is expected (crash mid-append) and handled by
    replay truncation; this error surfaces the unexpected cases — bad
    magic, a corrupt fsimage body, garbage mid-log.
    """


class QuotaExceededError(HdfsError):
    """Namespace or space quota would be exceeded."""


class LeaseConflictError(HdfsError):
    """A second writer attempted to open a file already being written."""


# --------------------------------------------------------------------------
# MapReduce


class MapReduceError(ReproError):
    """Base class for MapReduce errors."""


class JobSubmissionError(MapReduceError):
    """Job configuration was rejected at submission time."""


class TaskFailedError(MapReduceError):
    """A task attempt raised an error while running user code."""


class JobFailedError(MapReduceError):
    """The job exhausted its retry budget and was killed."""


class InvalidWritableError(MapReduceError):
    """A key or value did not conform to the Writable contract."""


class WireFormatError(MapReduceError):
    """A binary shuffle frame could not be encoded or decoded.

    Raised with a human-readable position/reason instead of letting
    ``struct.error`` or ``UnicodeDecodeError`` noise escape — truncated
    or corrupt frames are an expected failure mode (spill files, IPC),
    and callers fall back to the object path on encode-side failures.
    """


class OutputExistsError(MapReduceError):
    """The job output directory already exists (Hadoop refuses this)."""


class HeapExhaustedError(TaskFailedError):
    """Simulated Java heap exhaustion (the paper's memory-leak crash)."""


class FetchFailedError(TaskFailedError):
    """A reduce could not pull map output (its source node is gone)."""


# --------------------------------------------------------------------------
# Batch scheduler / provisioning


class SchedulerError(ReproError):
    """Base class for PBS-like scheduler errors."""


class ReservationError(SchedulerError):
    """Not enough nodes, or an invalid reservation request."""


class PreemptedError(SchedulerError):
    """The reservation was preempted by a higher-priority job."""


class ProvisionError(ReproError):
    """Base class for myHadoop provisioning errors."""


class PortInUseError(ProvisionError):
    """A required Hadoop daemon port is already bound (ghost daemon)."""


class BadPathError(ProvisionError):
    """A myHadoop configuration path is wrong (the common student error)."""
