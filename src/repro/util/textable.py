"""Plain-text table rendering for reports and benchmark output.

The benchmarks regenerate the paper's tables as text; this renderer keeps
their formatting consistent and diff-able.
"""

from __future__ import annotations

from typing import Iterable, Sequence


class TextTable:
    """A simple monospace table.

    >>> t = TextTable(["Topic", "Before", "After"], title="Table I")
    >>> t.add_row(["Java", "6.6±1.2", "7.3±1.1"])
    >>> print(t.render())  # doctest: +NORMALIZE_WHITESPACE
    Table I
    Topic | Before  | After
    ------+---------+--------
    Java  | 6.6±1.2 | 7.3±1.1
    """

    def __init__(self, headers: Sequence[str], title: str | None = None):
        self.title = title
        self.headers = [str(h) for h in headers]
        self.rows: list[list[str]] = []

    def add_row(self, row: Iterable[object]) -> None:
        cells = [str(cell) for cell in row]
        if len(cells) != len(self.headers):
            raise ValueError(
                f"row has {len(cells)} cells, expected {len(self.headers)}"
            )
        self.rows.append(cells)

    def column_widths(self) -> list[int]:
        widths = [len(h) for h in self.headers]
        for row in self.rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))
        return widths

    def render(self) -> str:
        widths = self.column_widths()

        def fmt(cells: Sequence[str]) -> str:
            return " | ".join(c.ljust(w) for c, w in zip(cells, widths)).rstrip()

        lines: list[str] = []
        if self.title:
            lines.append(self.title)
        lines.append(fmt(self.headers))
        lines.append("-+-".join("-" * w for w in widths))
        lines.extend(fmt(row) for row in self.rows)
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.render()


def mean_std(mean: float, std: float, decimals: int = 2) -> str:
    """Format ``mean ± std`` the way the paper's tables print it.

    Trailing zeros are trimmed to match the paper (``6.6±1.2``, ``3±0.9``).
    """

    def trim(x: float) -> str:
        s = f"{x:.{decimals}f}".rstrip("0").rstrip(".")
        return s if s else "0"

    return f"{trim(mean)}±{trim(std)}"
