"""Shared utilities: errors, units, RNG plumbing, text tables, events."""

from repro.util.errors import (
    ReproError,
    ConfigError,
    HdfsError,
    MapReduceError,
    SchedulerError,
    ProvisionError,
)
from repro.util.units import (
    KB,
    MB,
    GB,
    TB,
    parse_size,
    format_size,
    format_duration,
    SECOND,
    MINUTE,
    HOUR,
)
from repro.util.rng import RngStream, derive_seed
from repro.util.textable import TextTable

__all__ = [
    "ReproError",
    "ConfigError",
    "HdfsError",
    "MapReduceError",
    "SchedulerError",
    "ProvisionError",
    "KB",
    "MB",
    "GB",
    "TB",
    "SECOND",
    "MINUTE",
    "HOUR",
    "parse_size",
    "format_size",
    "format_duration",
    "RngStream",
    "derive_seed",
    "TextTable",
]
