"""Byte-size and time-unit helpers.

All sizes in the stack are plain ``int`` bytes; all simulated times are
``float`` seconds.  These helpers exist so configuration can be written
the way Hadoop admins write it (``"64MB"``, ``"15min"``) and so reports
can render values the way the paper quotes them (``"171GB"``,
``"15 minutes"``).
"""

from __future__ import annotations

import re

from repro.util.errors import ConfigError

KB: int = 1024
MB: int = 1024 * KB
GB: int = 1024 * MB
TB: int = 1024 * GB

SECOND: float = 1.0
MINUTE: float = 60.0
HOUR: float = 3600.0
DAY: float = 24 * HOUR

_SIZE_SUFFIXES = {
    "": 1,
    "b": 1,
    "k": KB,
    "kb": KB,
    "m": MB,
    "mb": MB,
    "g": GB,
    "gb": GB,
    "t": TB,
    "tb": TB,
}

_TIME_SUFFIXES = {
    "": SECOND,
    "s": SECOND,
    "sec": SECOND,
    "min": MINUTE,
    "m": MINUTE,
    "h": HOUR,
    "hr": HOUR,
    "d": DAY,
}

_NUM_RE = re.compile(r"^\s*([0-9]*\.?[0-9]+)\s*([a-zA-Z]*)\s*$")


def parse_size(value: int | float | str) -> int:
    """Parse a byte size such as ``"64MB"`` or ``128`` into bytes.

    >>> parse_size("64MB")
    67108864
    >>> parse_size(512)
    512
    """
    if isinstance(value, (int, float)):
        if value < 0:
            raise ConfigError(f"size must be non-negative, got {value!r}")
        return int(value)
    match = _NUM_RE.match(value)
    if not match:
        raise ConfigError(f"cannot parse size {value!r}")
    number, suffix = match.groups()
    key = suffix.lower()
    if key not in _SIZE_SUFFIXES:
        raise ConfigError(f"unknown size suffix {suffix!r} in {value!r}")
    return int(float(number) * _SIZE_SUFFIXES[key])


def parse_duration(value: int | float | str) -> float:
    """Parse a duration such as ``"15min"`` or ``3.5`` into seconds.

    >>> parse_duration("15min")
    900.0
    """
    if isinstance(value, (int, float)):
        if value < 0:
            raise ConfigError(f"duration must be non-negative, got {value!r}")
        return float(value)
    match = _NUM_RE.match(value)
    if not match:
        raise ConfigError(f"cannot parse duration {value!r}")
    number, suffix = match.groups()
    key = suffix.lower()
    if key not in _TIME_SUFFIXES:
        raise ConfigError(f"unknown time suffix {suffix!r} in {value!r}")
    return float(number) * _TIME_SUFFIXES[key]


def format_size(num_bytes: int | float) -> str:
    """Render bytes human-readably, matching the paper's style.

    >>> format_size(171 * GB)
    '171.0GB'
    >>> format_size(1536)
    '1.5KB'
    """
    num = float(num_bytes)
    for unit, factor in (("TB", TB), ("GB", GB), ("MB", MB), ("KB", KB)):
        if abs(num) >= factor:
            return f"{num / factor:.1f}{unit}"
    return f"{int(num)}B"


def format_duration(seconds: float) -> str:
    """Render a duration compactly: ``"1h03m"``, ``"4m30s"``, ``"12.0s"``.

    >>> format_duration(900)
    '15m00s'
    >>> format_duration(3783)
    '1h03m'
    """
    if seconds < 0:
        return "-" + format_duration(-seconds)
    if seconds >= HOUR:
        hours = int(seconds // HOUR)
        minutes = int((seconds % HOUR) // MINUTE)
        return f"{hours}h{minutes:02d}m"
    if seconds >= MINUTE:
        minutes = int(seconds // MINUTE)
        secs = int(seconds % MINUTE)
        return f"{minutes}m{secs:02d}s"
    return f"{seconds:.1f}s"
