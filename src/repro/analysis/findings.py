"""Structured lint findings: what "mrlint" reports and how it renders.

A :class:`Finding` is one rule violation at one source location.  Rules
attach a severity and a fix hint so the output teaches, not just nags —
the same voice as the course's grading feedback.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field


#: Severities, in escalation order.  ``error`` findings are correctness
#: bugs (wrong answers, run-to-run divergence); ``warning`` findings are
#: the paper's performance anti-patterns (right answer, painful scale).
SEVERITIES = ("warning", "error")


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    rule: str
    path: str
    line: int
    col: int
    severity: str
    message: str
    hint: str = ""

    def render(self) -> str:
        text = f"{self.path}:{self.line}:{self.col}: {self.rule} [{self.severity}] {self.message}"
        if self.hint:
            text += f"\n    hint: {self.hint}"
        return text

    def as_dict(self) -> dict:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "severity": self.severity,
            "message": self.message,
            "hint": self.hint,
        }


def sort_findings(findings: list[Finding]) -> list[Finding]:
    return sorted(findings, key=lambda f: (f.path, f.line, f.col, f.rule))


def render_findings(findings: list[Finding]) -> str:
    """Human-readable report, one block per finding plus a summary."""
    findings = sort_findings(findings)
    if not findings:
        return "mrlint: clean (0 findings)"
    lines = [f.render() for f in findings]
    errors = sum(1 for f in findings if f.severity == "error")
    warnings = len(findings) - errors
    lines.append(
        f"mrlint: {len(findings)} finding(s) "
        f"({errors} error(s), {warnings} warning(s))"
    )
    return "\n".join(lines)


def render_json(findings: list[Finding]) -> str:
    findings = sort_findings(findings)
    payload = {
        "findings": [f.as_dict() for f in findings],
        "summary": {
            "total": len(findings),
            "errors": sum(1 for f in findings if f.severity == "error"),
            "warnings": sum(1 for f in findings if f.severity == "warning"),
        },
    }
    return json.dumps(payload, indent=2, sort_keys=True)


#: mrlint severity -> SARIF result level.
_SARIF_LEVELS = {"error": "error", "warning": "warning"}

_SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/"
    "master/Schemata/sarif-schema-2.1.0.json"
)


def render_sarif(findings: list[Finding], rules: dict | None = None) -> str:
    """SARIF 2.1.0 report — the GitHub code-scanning upload format.

    Only rules that actually fired are listed in the tool driver (the
    upload size stays proportional to the report, not the catalog).
    ``rules`` maps rule id -> :class:`Rule` for titles and hints;
    defaults to the full mrlint catalog.
    """
    findings = sort_findings(findings)
    if rules is None:
        from repro.analysis.linter import ALL_RULES

        rules = ALL_RULES
    fired = sorted({f.rule for f in findings})
    rule_index = {rule_id: i for i, rule_id in enumerate(fired)}
    driver_rules = []
    for rule_id in fired:
        entry: dict = {"id": rule_id}
        rule = rules.get(rule_id)
        if rule is not None:
            entry["shortDescription"] = {"text": rule.title}
            entry["defaultConfiguration"] = {
                "level": _SARIF_LEVELS.get(rule.severity, "warning")
            }
            if rule.hint:
                entry["help"] = {"text": rule.hint}
        driver_rules.append(entry)
    results = []
    for f in findings:
        message = f.message if not f.hint else f"{f.message}\nhint: {f.hint}"
        results.append(
            {
                "ruleId": f.rule,
                "ruleIndex": rule_index[f.rule],
                "level": _SARIF_LEVELS.get(f.severity, "warning"),
                "message": {"text": message},
                "locations": [
                    {
                        "physicalLocation": {
                            "artifactLocation": {
                                "uri": f.path.replace("\\", "/"),
                            },
                            # SARIF columns are 1-based; ast's are 0-based.
                            "region": {
                                "startLine": f.line,
                                "startColumn": f.col + 1,
                            },
                        }
                    }
                ],
            }
        )
    payload = {
        "$schema": _SARIF_SCHEMA,
        "version": "2.1.0",
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "mrlint",
                        "version": "2.0",
                        "rules": driver_rules,
                    }
                },
                "results": results,
            }
        ],
    }
    return json.dumps(payload, indent=2, sort_keys=True)


@dataclass(frozen=True)
class Rule:
    """A lint rule's identity card (the catalog entry DESIGN.md lists)."""

    id: str
    family: str  # "jobs" | "engine"
    severity: str
    title: str
    hint: str = ""
    #: Extra per-rule state threaded to the checker (unused by most).
    extra: dict = field(default_factory=dict)
