"""Engine rules (MRE1xx): the framework auditing itself.

PR 2 shipped a latent hash-randomization bug: over-replication trimming
in ``NameNode._replication_sweep`` tie-broke equal free-space scores by
*set iteration order*, so ``repro classroom`` diverged run-to-run with
``PYTHONHASHSEED``.  These rules make that bug class (and its cousins)
un-landable:

==========  ==========================================================
``MRE101``  unordered iteration feeding a decision: iterating a
            ``set``/``frozenset`` directly (hash order → divergence,
            *error*), or first-match/keyed selection over a ``dict``
            view (insertion order → arrival-history sensitivity,
            *warning*); includes ``sorted``/``min``/``max`` over a set
            with a key that does not tie-break by the element itself
``MRE102``  wall-clock time (``time.time``/``datetime.now``) inside
            sim-clocked code — simulated time must come from the
            engine, or replays diverge
``MRE103``  bare/blanket ``except`` that swallows everything — it
            would also swallow ``FaultSite`` escalations and cancel
            injected faults silently
``MRE104``  shared-memory/mmap allocation with no guaranteed cleanup
            path — a ``SharedMemory``/``mmap.mmap`` call outside a
            ``with`` item, in a function with no try/finally (or
            handler) releasing it, in a class that does not own a
            ``close``/``release``/``unlink`` — the shuffle-plane
            segment-leak class (PR 6)
``MRE105``  namespace mutation without a journal record: a function
            calls ``<...>.namespace.mkdirs/create_file/delete/rename``
            but contains no ``journal.log_*`` call — the mutation is
            invisible to crash recovery, so a NameNode restart replays
            to a *different* namespace (PR 7's durability contract)
==========  ==========================================================

Set-typedness is inferred syntactically: set literals/comprehensions,
``set()``/``frozenset()`` calls, names or ``self.`` attributes assigned
or annotated as sets, and — module-wide — any attribute whose *name* is
declared as a set in some class of the same module (this is what catches
``meta.locations`` in namenode.py, where ``BlockMeta.locations:
set[str]``).
"""

from __future__ import annotations

import ast

from repro.analysis.findings import Finding, Rule
from repro.analysis.taint import (
    KIND_TIME,
    NONDET_CALLS,
    SetTypes,
    order_insensitive_generator_iters,
)

ENGINE_RULES = {
    "MRE101": Rule(
        id="MRE101",
        family="engine",
        severity="error",
        title="unordered iteration feeds a decision",
        hint="wrap the collection in sorted(...) — and if you sort with a "
        "key, end the key tuple with the element itself so equal scores "
        "tie-break deterministically: key=lambda d: (score(d), d)",
    ),
    "MRE102": Rule(
        id="MRE102",
        family="engine",
        severity="error",
        title="wall clock in sim-clocked code",
        hint="use the simulation's clock (sim.now / event timestamps); "
        "host wall-clock reads make replays and pooled runs diverge",
    ),
    "MRE103": Rule(
        id="MRE103",
        family="engine",
        severity="error",
        title="blanket except swallows fault escalations",
        hint="catch the specific exception you expect, or re-raise: a "
        "blanket handler also eats FaultSite escalations, silently "
        "cancelling injected faults",
    ),
    "MRE104": Rule(
        id="MRE104",
        family="engine",
        severity="error",
        title="shared-memory allocation without a cleanup path",
        hint="guarantee close/unlink on every exit path: allocate inside "
        "a with-statement, or in a try whose finally/except calls "
        "close()/unlink(), or own the handle in a class that defines "
        "close()/release()/unlink()",
    ),
    "MRE105": Rule(
        id="MRE105",
        family="engine",
        severity="error",
        title="namespace mutation without a journal record",
        hint="pair every namespace mutator with the matching "
        "journal.log_*() call in the same function; an unjournaled "
        "mutation is lost on NameNode crash, so recovery replays to a "
        "different namespace",
    ),
}

#: Namespace methods MRE105 treats as durable mutations.  The receiver
#: must be ``namespace`` or ``<...>.namespace`` — replay code that
#: rebuilds a namespace under another local name is deliberately exempt
#: (it *is* the journal being applied).
_NAMESPACE_MUTATORS = {"mkdirs", "create_file", "delete", "rename"}

#: Calls MRE104 treats as shared-memory/arena allocations.
_SHM_ALLOCATORS = ("SharedMemory",)
_SHM_ALLOCATOR_DOTTED = ("mmap.mmap",)

#: Method names that count as releasing an MRE104 allocation when they
#: appear in a finally/except block of the allocating function.
_SHM_CLEANUP_METHODS = {
    "close",
    "unlink",
    "release",
    "rmtree",
    "shutdown",
    "terminate",
}

#: Methods whose presence on the enclosing class marks it as the
#: allocation's owner (lifetime managed by the instance, RAII-style).
_SHM_OWNER_METHODS = {"close", "release", "unlink"}

#: Derived from the taint engine's source table so MRE102 and MRJ001
#: can never drift apart on what "reads the clock" means; process_time
#: is wall-clock-adjacent (host load) and stays flagged here too.
_WALL_CLOCK_SUFFIXES = frozenset(
    name for name, kind in NONDET_CALLS.items() if kind == KIND_TIME
) | {"time.process_time", "time.process_time_ns"}

_DICT_VIEW_METHODS = {"keys", "values", "items"}


def _dotted(node: ast.expr) -> str | None:
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _is_dict_view_call(node: ast.expr) -> bool:
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Attribute)
        and node.func.attr in _DICT_VIEW_METHODS
        and not node.args
        and not node.keywords
    )


def _key_is_tie_broken(key: ast.expr) -> bool:
    """Does a sort key guarantee injectivity over the elements?

    True only for a lambda that is the identity or whose body is a tuple
    ending in the bare lambda parameter — ``lambda d: (score(d), d)``.
    Anything else (named functions, attrgetter, plain scores) cannot be
    proven injective, so equal keys would tie-break by iteration order.
    """
    if not isinstance(key, ast.Lambda) or len(key.args.args) != 1:
        return False
    param = key.args.args[0].arg
    body = key.body
    if isinstance(body, ast.Name) and body.id == param:
        return True
    if (
        isinstance(body, ast.Tuple)
        and body.elts
        and isinstance(body.elts[-1], ast.Name)
        and body.elts[-1].id == param
    ):
        return True
    return False


def _contains_break(body: list[ast.stmt]) -> bool:
    for stmt in body:
        for node in ast.walk(stmt):
            if isinstance(node, ast.Break):
                return True
            # A break inside a nested loop belongs to that loop; but a
            # syntactic walk is close enough for an audit rule — nested
            # first-match loops are exactly what we want eyes on.
    return False


class _EngineVisitor:
    def __init__(self, path: str, tree: ast.Module):
        self.path = path
        self.tree = tree
        self.types = SetTypes(tree)
        #: generator ``iter`` expressions consumed by order-insensitive
        #: aggregates — provably safe to visit in hash order.
        self.order_sinks = order_insensitive_generator_iters(tree)
        self.findings: list[Finding] = []

    def _emit(
        self, rule_id: str, node: ast.AST, message: str, severity: str | None = None
    ) -> None:
        rule = ENGINE_RULES[rule_id]
        self.findings.append(
            Finding(
                rule=rule_id,
                path=self.path,
                line=node.lineno,
                col=node.col_offset,
                severity=severity or rule.severity,
                message=message,
                hint=rule.hint,
            )
        )

    def run(self) -> list[Finding]:
        # MRE101 needs per-function local inference; MRE102/103 are global.
        for node in ast.walk(self.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._check_function(node)
                self._check_journal_coverage(node)
            elif isinstance(node, ast.ExceptHandler):
                self._check_except(node)
        self._check_module_level_iteration()
        self._check_shm_lifecycle()
        return self.findings

    # -- MRE101 -----------------------------------------------------------
    def _check_function(self, fn: ast.FunctionDef) -> None:
        local = self.types.local_sets(fn)
        for node in ast.walk(fn):
            self._check_iteration_site(node, local)
            if isinstance(node, ast.Call):
                self._check_wall_clock(node)

    def _check_module_level_iteration(self) -> None:
        """Module-level statements (rare, but cheap to cover)."""
        for stmt in self.tree.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                continue
            for node in ast.walk(stmt):
                self._check_iteration_site(node, set())
                if isinstance(node, ast.Call):
                    self._check_wall_clock(node)

    def _describe(self, node: ast.expr) -> str:
        name = _dotted(node)
        if name:
            return name
        return type(node).__name__.lower()

    def _check_iteration_site(self, node: ast.AST, local: set[str]) -> None:
        if isinstance(node, ast.For):
            self._check_iterable(node.iter, local, loop=node)
        elif isinstance(
            node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)
        ):
            for gen in node.generators:
                self._check_iterable(gen.iter, local, loop=None)
        elif isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
            fname = node.func.id
            if fname in ("sorted", "min", "max") and node.args:
                self._check_keyed_selection(fname, node, local)
            elif (
                fname == "next"
                and node.args
                and isinstance(node.args[0], ast.Call)
                and isinstance(node.args[0].func, ast.Name)
                and node.args[0].func.id == "iter"
                and node.args[0].args
            ):
                inner = node.args[0].args[0]
                if self.types.is_set_expr(inner, local):
                    self._emit(
                        "MRE101",
                        node,
                        f"next(iter({self._describe(inner)})) picks an "
                        "arbitrary set element (hash order)",
                    )
                elif _is_dict_view_call(inner):
                    self._emit(
                        "MRE101",
                        node,
                        f"next(iter({self._describe(inner.func)}())) picks "
                        "the first-inserted entry — sensitive to "
                        "arrival/registration history",
                        severity="warning",
                    )
            elif fname in ("list", "tuple") and node.args:
                # list(some_set) preserves hash order into an ordered
                # container — same leak, one step removed.
                if self.types.is_set_expr(node.args[0], local):
                    self._emit(
                        "MRE101",
                        node,
                        f"{fname}({self._describe(node.args[0])}) freezes "
                        "set hash order into an ordered sequence",
                    )

    def _check_iterable(
        self, iterable: ast.expr, local: set[str], loop: ast.For | None
    ) -> None:
        if id(iterable) in self.order_sinks:
            # The iteration's consumer is an order-insensitive aggregate
            # (sum/any/all/min/max/len/set/sorted): hash order provably
            # cannot reach the result.  This is what retires the PR 3
            # suppressions on the NameNode's replication arithmetic.
            return
        if self.types.is_set_expr(iterable, local):
            self._emit(
                "MRE101",
                iterable,
                f"iterating {self._describe(iterable)} in hash order; "
                "wrap in sorted(...) so the loop visits elements "
                "deterministically",
            )
        elif (
            loop is not None
            and _is_dict_view_call(iterable)
            and _contains_break(loop.body)
        ):
            self._emit(
                "MRE101",
                iterable,
                f"first-match loop over {self._describe(iterable.func)}() "
                "— dict insertion order is deterministic in-process but "
                "depends on arrival/registration history; audit or sort",
                severity="warning",
            )

    def _check_keyed_selection(
        self, fname: str, node: ast.Call, local: set[str]
    ) -> None:
        target = node.args[0]
        key = next((kw.value for kw in node.keywords if kw.arg == "key"), None)
        over_set = self.types.is_set_expr(target, local)
        over_view = _is_dict_view_call(target)
        if not over_set and not over_view:
            return
        if key is None:
            # sorted(set) totally orders by the elements themselves:
            # deterministic.  min/max likewise.  Dict .keys() too;
            # .values()/.items() may tie but then equal values are
            # interchangeable for min/max and sorted() is stable on
            # insertion order — accept.
            return
        if _key_is_tie_broken(key):
            return
        what = self._describe(target)
        if over_set:
            self._emit(
                "MRE101",
                node,
                f"{fname}({what}, key=...) breaks ties by set hash order "
                "— the PR 2 replication-sweep bug; end the key tuple "
                "with the element itself",
            )
        else:
            self._emit(
                "MRE101",
                node,
                f"{fname}({what}, key=...) breaks ties by insertion "
                "order — sensitive to arrival/registration history",
                severity="warning",
            )

    # -- MRE105 -----------------------------------------------------------
    def _check_journal_coverage(self, fn: ast.FunctionDef) -> None:
        """A function mutating ``*.namespace`` must also journal.

        Coverage is per-function and deliberately coarse: any
        ``journal.log_*``/``*.journal.log_*`` call anywhere in the
        function clears all of its mutations (the rule points eyes at
        *unjournaled* mutators, not at argument mismatches).
        """
        mutators: list[ast.Call] = []
        journaled = False
        for node in _walk_own_body(fn):
            if not (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
            ):
                continue
            receiver = _dotted(node.func.value)
            if receiver is None:
                continue
            if node.func.attr in _NAMESPACE_MUTATORS and (
                receiver == "namespace" or receiver.endswith(".namespace")
            ):
                mutators.append(node)
            elif node.func.attr.startswith("log_") and (
                receiver == "journal" or receiver.endswith(".journal")
            ):
                journaled = True
        if journaled:
            return
        for call in mutators:
            self._emit(
                "MRE105",
                call,
                f"{_dotted(call.func)}(...) mutates the namespace with no "
                "journal.log_*() record in the same function — invisible "
                "to crash recovery",
            )

    # -- MRE104 -----------------------------------------------------------
    def _check_shm_lifecycle(self) -> None:
        """Flag SharedMemory/mmap allocations with no cleanup path.

        An allocation is considered owned (and passes) when any of:

        1. it is the context expression of a ``with`` item — the
           ``__exit__`` releases it;
        2. the allocating function contains a ``try`` whose ``finally``
           or exception handlers call one of
           :data:`_SHM_CLEANUP_METHODS` — every exit path releases;
        3. the enclosing class defines one of :data:`_SHM_OWNER_METHODS`
           — the instance owns the handle's lifetime (RAII-style, like
           ``blockio.SpillFile``).
        """
        owners: dict[ast.AST, ast.ClassDef] = {}
        for node in ast.walk(self.tree):
            if isinstance(node, ast.ClassDef):
                for stmt in node.body:
                    if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                        owners[stmt] = node
        for node in ast.walk(self.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._check_shm_function(node, owners.get(node))

    def _check_shm_function(
        self, fn: ast.FunctionDef, klass: ast.ClassDef | None
    ) -> None:
        allocations = [
            node
            for node in _walk_own_body(fn)
            if isinstance(node, ast.Call) and _is_shm_allocation(node)
        ]
        if not allocations:
            return
        if klass is not None and _class_owns_cleanup(klass):
            return
        if _has_cleanup_guard(fn):
            return
        with_guarded = _with_item_nodes(fn)
        for call in allocations:
            if call in with_guarded:
                continue
            name = _dotted(call.func) or "SharedMemory"
            self._emit(
                "MRE104",
                call,
                f"{name}(...) allocates a shared-memory/mmap handle with "
                "no guaranteed close/unlink on every exit path",
            )

    # -- MRE102 -----------------------------------------------------------
    def _check_wall_clock(self, node: ast.Call) -> None:
        name = _dotted(node.func)
        if name is None:
            return
        for suffix in _WALL_CLOCK_SUFFIXES:
            if name == suffix or name.endswith("." + suffix):
                self._emit(
                    "MRE102",
                    node,
                    f"{name}() reads the host wall clock inside "
                    "sim-clocked code",
                )
                return

    # -- MRE103 -----------------------------------------------------------
    def _check_except(self, handler: ast.ExceptHandler) -> None:
        if handler.type is None:
            self._emit(
                "MRE103",
                handler,
                "bare 'except:' swallows everything, including FaultSite "
                "escalations and KeyboardInterrupt",
            )
            return
        names = []
        types_ = (
            handler.type.elts
            if isinstance(handler.type, ast.Tuple)
            else [handler.type]
        )
        for t in types_:
            name = _dotted(t)
            if name:
                names.append(name.rsplit(".", 1)[-1])
        if not any(n in ("Exception", "BaseException") for n in names):
            return
        if self._handler_is_swallowing(handler):
            self._emit(
                "MRE103",
                handler,
                f"'except {'/'.join(names)}' discards the exception "
                "without re-raising or recording it",
            )

    @staticmethod
    def _handler_is_swallowing(handler: ast.ExceptHandler) -> bool:
        """True when the handler neither re-raises nor does real work."""
        for node in ast.walk(handler):
            if isinstance(node, ast.Raise):
                return False
        for stmt in handler.body:
            if isinstance(stmt, (ast.Pass, ast.Continue, ast.Break)):
                continue
            if isinstance(stmt, ast.Return) and (
                stmt.value is None or isinstance(stmt.value, ast.Constant)
            ):
                continue
            if isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Constant):
                continue
            return False  # assignments, calls, logging: handled, not hidden
        return True


# -- MRE104 helpers ---------------------------------------------------------


def _is_shm_allocation(call: ast.Call) -> bool:
    name = _dotted(call.func)
    if name is None:
        return False
    last = name.rsplit(".", 1)[-1]
    if last in _SHM_ALLOCATORS:
        return True
    return any(
        name == dotted or name.endswith("." + dotted)
        for dotted in _SHM_ALLOCATOR_DOTTED
    )


def _walk_own_body(fn: ast.FunctionDef):
    """Walk a function's nodes, excluding nested function/lambda bodies
    (those are audited as their own functions)."""
    stack: list[ast.AST] = list(fn.body)
    while stack:
        node = stack.pop()
        yield node
        for child in ast.iter_child_nodes(node):
            if isinstance(
                child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
            ):
                continue
            stack.append(child)


def _class_owns_cleanup(klass: ast.ClassDef) -> bool:
    return any(
        isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
        and stmt.name in _SHM_OWNER_METHODS
        for stmt in klass.body
    )


def _has_cleanup_guard(fn: ast.FunctionDef) -> bool:
    """Does ``fn`` contain a try whose finally/handlers release a handle?"""
    for node in _walk_own_body(fn):
        if not isinstance(node, ast.Try):
            continue
        blocks: list[ast.stmt] = list(node.finalbody)
        for handler in node.handlers:
            blocks.extend(handler.body)
        for stmt in blocks:
            for sub in ast.walk(stmt):
                if (
                    isinstance(sub, ast.Call)
                    and isinstance(sub.func, ast.Attribute)
                    and sub.func.attr in _SHM_CLEANUP_METHODS
                ):
                    return True
    return False


def _with_item_nodes(fn: ast.FunctionDef) -> set[ast.AST]:
    """Every node appearing inside a ``with`` item's context expression."""
    guarded: set[ast.AST] = set()
    for node in _walk_own_body(fn):
        if isinstance(node, (ast.With, ast.AsyncWith)):
            for item in node.items:
                guarded.update(ast.walk(item.context_expr))
    return guarded


def check_engine_rules(path: str, tree: ast.Module) -> list[Finding]:
    """Run all MRE1xx rules over one parsed module."""
    return _EngineVisitor(path, tree).run()
