"""The runtime sanitizer: catch dynamically what the AST cannot.

Enabled by ``MapReduceConfig(sanitize=True)``.  Task execution
(:mod:`repro.mapreduce.runtime`) then

- deep-fingerprints every map/reduce *input* before and after the user
  call, catching in-place mutation (MRJ002's dynamic twin);
- snapshots every emitted pair at ``context.write`` time and re-checks
  at drain, catching emitted-object aliasing (MRJ004's dynamic twin);
- spot-checks the job's combiner on deterministically sampled key
  groups by seeded re-execution on copies: commutativity (reversed
  values), idempotence (re-combining its own output), and split-merge
  associativity — the check that catches mean-of-means, which both
  naive checks miss (MRJ007's dynamic twin).

Violations surface through the existing counters machinery (group
``"Sanitizer"``), so they ride the normal pooled-result merge into the
job report, appear in chaos-drill timelines, and are visible to the
graders.  The sanitizer never changes task *results*: checks run on
deep copies with scratch contexts, add no simulated time, and increment
no counters unless a violation is found — a sanitized clean run is
bit-identical to an unsanitized one.
"""

from __future__ import annotations

import copy
from typing import Any, Iterable

from repro.mapreduce.api import Context, Reducer
from repro.mapreduce.config import JobConf
from repro.mapreduce.counters import C, Counters
from repro.mapreduce.types import Writable

#: Spot-check at most this many key groups per task (evenly spaced over
#: the sorted groups, so sampling is deterministic on every backend).
MAX_COMBINER_GROUPS = 8

#: Keep at most this many violation messages per task (counters always
#: count all of them).
MAX_MESSAGES = 25

_MEMO_SLOTS = ("_size_memo", "_key_memo")


def fingerprint(obj: Any, _depth: int = 0) -> tuple:
    """A deep, order-insensitive-where-unordered structural hash key.

    Recurses raw slot values on Writables — *never* ``sort_key()`` /
    ``serialized_size()``, whose memos would hide mutations that happen
    after the first call.
    """
    if _depth > 25:
        return ("...",)
    if isinstance(obj, Writable):
        fields = []
        for klass in type(obj).__mro__:
            slots = getattr(klass, "__slots__", ())
            if isinstance(slots, str):
                slots = (slots,)
            for slot in slots:
                if slot in _MEMO_SLOTS:
                    continue
                try:
                    value = getattr(obj, slot)
                except AttributeError:
                    continue
                fields.append((slot, fingerprint(value, _depth + 1)))
        return ("writable", type(obj).__name__, tuple(fields))
    if isinstance(obj, dict):
        return (
            "dict",
            tuple(
                sorted(
                    (fingerprint(k, _depth + 1), fingerprint(v, _depth + 1))
                    for k, v in obj.items()
                )
            ),
        )
    if isinstance(obj, (list, tuple)):
        kind = "list" if isinstance(obj, list) else "tuple"
        return (kind, tuple(fingerprint(x, _depth + 1) for x in obj))
    if isinstance(obj, (set, frozenset)):
        return ("set", tuple(sorted(fingerprint(x, _depth + 1) for x in obj)))
    if isinstance(obj, bytearray):
        return ("bytearray", bytes(obj))
    return (type(obj).__name__, repr(obj))


def _short(obj: Any, limit: int = 60) -> str:
    text = repr(obj)
    return text if len(text) <= limit else text[: limit - 3] + "..."


class SanitizingContext(Context):
    """A Context that snapshots every emitted pair for aliasing checks."""

    def __init__(self, sanitizer: "TaskSanitizer", **kwargs: Any):
        super().__init__(**kwargs)
        self._sanitizer = sanitizer
        self._emit_log: list[tuple[Writable, Writable, tuple, tuple]] = []

    def write(self, key: Any, value: Any) -> None:
        super().write(key, value)
        wk, wv = self._collected[-1]
        self._emit_log.append((wk, wv, fingerprint(wk), fingerprint(wv)))

    def drain(self):
        pairs = super().drain()
        log, self._emit_log = self._emit_log, []
        self._sanitizer.verify_emits(log)
        return pairs


class TaskSanitizer:
    """Per-task violation collector; one instance per task attempt."""

    def __init__(self, conf: JobConf, counters: Counters, task: str):
        self._conf = conf
        self._counters = counters
        self._task = task
        self.violations: list[str] = []
        self._total = 0

    # -- plumbing ---------------------------------------------------------
    def make_context(self, **kwargs: Any) -> SanitizingContext:
        return SanitizingContext(self, **kwargs)

    def _record(self, counter: tuple[str, str], message: str) -> None:
        self._counters.increment(counter, 1)
        self._total += 1
        if len(self.violations) < MAX_MESSAGES:
            self.violations.append(f"{self._task}: {message}")

    def finish(self) -> list[str]:
        return list(self.violations)

    # -- input mutation ---------------------------------------------------
    def snapshot_inputs(self, *inputs: Any) -> tuple:
        return tuple(fingerprint(x) for x in inputs)

    def verify_inputs(
        self, phase: str, snapshot: tuple, *inputs: Any
    ) -> None:
        for before, obj in zip(snapshot, inputs):
            if fingerprint(obj) != before:
                self._record(
                    C.SANITIZER_INPUT_MUTATIONS,
                    f"{phase}() mutated its input {_short(obj)} in place",
                )

    # -- emit aliasing ----------------------------------------------------
    def verify_emits(
        self, log: list[tuple[Writable, Writable, tuple, tuple]]
    ) -> None:
        for key, value, key_fp, value_fp in log:
            if fingerprint(key) != key_fp:
                self._record(
                    C.SANITIZER_EMIT_ALIASING,
                    f"emitted key {_short(key)} was mutated after "
                    "context.write()",
                )
            if fingerprint(value) != value_fp:
                self._record(
                    C.SANITIZER_EMIT_ALIASING,
                    f"emitted value {_short(value)} was mutated after "
                    "context.write()",
                )

    # -- combiner contract ------------------------------------------------
    def check_combiner(
        self,
        combiner_cls: type[Reducer],
        partitions: dict[int, list[tuple[Writable, Writable]]],
    ) -> None:
        """Spot-check the combiner on sampled key groups of this task.

        ``partitions`` holds the *uncombined*, key-sorted map output.
        All re-executions run on deep copies with scratch contexts, so
        neither the real pairs nor the task's counters are disturbed.
        """
        from repro.mapreduce.shuffle import group_by_key

        groups: list[tuple[Writable, list[Writable]]] = []
        for partition in sorted(partitions):
            groups.extend(group_by_key(partitions[partition]))
        if not groups:
            return
        if len(groups) > MAX_COMBINER_GROUPS:
            n = len(groups)
            step = (n - 1) / (MAX_COMBINER_GROUPS - 1)
            indices = sorted({round(i * step) for i in range(MAX_COMBINER_GROUPS)})
            groups = [groups[i] for i in indices]
        for key, values in groups:
            self._check_group(combiner_cls, key, values)

    def _run_combiner_once(
        self,
        combiner_cls: type[Reducer],
        key: Writable,
        values: Iterable[Writable],
    ) -> tuple[list[tuple[Writable, Writable]], list[tuple[tuple, tuple]]]:
        """One scratch combiner run on copies.

        Returns the emitted pairs (for re-feeding) and their sorted
        fingerprints (for order-insensitive comparison).
        """
        context = Context(conf=self._conf, counters=Counters())
        combiner = combiner_cls()
        combiner.setup(context)
        combiner.reduce(copy.deepcopy(key), copy.deepcopy(list(values)), context)
        combiner.cleanup(context)
        pairs = context.drain()
        prints = sorted(
            (fingerprint(k), fingerprint(v)) for k, v in pairs
        )
        return pairs, prints

    def _check_group(
        self,
        combiner_cls: type[Reducer],
        key: Writable,
        values: list[Writable],
    ) -> None:
        name = combiner_cls.__name__
        key_fp = fingerprint(key)
        try:
            base_pairs, base = self._run_combiner_once(
                combiner_cls, key, values
            )
            # The contract: a combiner emits its own key (possibly many
            # values), because its output re-enters the shuffle keyed.
            if any(k != key_fp for k, _ in base):
                self._record(
                    C.SANITIZER_COMBINER_VIOLATIONS,
                    f"{name} rewrote key {_short(key)}; combiner output "
                    "must keep its input key",
                )
                return
            _, reversed_out = self._run_combiner_once(
                combiner_cls, key, list(reversed(values))
            )
            if reversed_out != base:
                self._record(
                    C.SANITIZER_COMBINER_VIOLATIONS,
                    f"{name} is not commutative on key {_short(key)}: "
                    "reversing the value order changed its output",
                )
                return
            # Idempotence: re-combining its own output must not change it.
            _, idem = self._run_combiner_once(
                combiner_cls, key, [v for _, v in base_pairs]
            )
            if idem != base:
                self._record(
                    C.SANITIZER_COMBINER_VIOLATIONS,
                    f"{name} is not idempotent on key {_short(key)}: "
                    "re-combining its own output changed the answer",
                )
                return
            # Split-merge associativity: combine(combine(a) ++ combine(b))
            # must equal combine(a ++ b).  This is the check that catches
            # averaging combiners — mean of means is not the mean.
            if len(values) >= 2:
                half = len(values) // 2
                first, _ = self._run_combiner_once(
                    combiner_cls, key, values[:half]
                )
                second, _ = self._run_combiner_once(
                    combiner_cls, key, values[half:]
                )
                merged = [v for _, v in first] + [v for _, v in second]
                _, split = self._run_combiner_once(combiner_cls, key, merged)
                if split != base:
                    self._record(
                        C.SANITIZER_COMBINER_VIOLATIONS,
                        f"{name} is not associative on key "
                        f"{_short(key)}: combining in two rounds "
                        "changed the answer (mean-of-means class)",
                    )
        except Exception as exc:  # noqa: BLE001 - user code under test
            self._record(
                C.SANITIZER_COMBINER_VIOLATIONS,
                f"{name} raised {type(exc).__name__} while re-combining "
                f"key {_short(key)}: its output does not round-trip "
                "through itself",
            )
