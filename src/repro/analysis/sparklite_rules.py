"""Sparklite rules (MRS2xx): closure-capture analysis for RDD pipelines.

Spark's classic beginner traps translate one-to-one to sparklite, and
all of them live in the *closures* handed to transformations — code
that looks like it runs "here" but actually runs once per partition,
per attempt, on whichever executor holds the data:

==========  ==========================================================
``MRS201``  nondeterministic closure: a function passed to a
            transformation reaches an unseeded RNG / the wall clock
            (directly or through helpers) — recomputed lineage
            produces *different* data than the first run, so a cache
            eviction silently changes answers
``MRS202``  closure mutates captured driver state (the accumulator
            anti-pattern): ``counts`` updated inside ``map`` lives in
            the executor's copy; the driver's object never changes
``MRS203``  action called on a captured RDD inside a transformation
            closure — nested job launch per record; collect the small
            side first and capture the *data*
``MRS204``  non-associative operand passed to ``reduce``/
            ``reduce_by_key`` — combine order varies with
            partitioning, so subtraction/division/averaging change
            answers when ``num_partitions`` does
==========  ==========================================================

Closure resolution goes through the module call graph
(:mod:`repro.analysis.callgraph`): inline lambdas, module functions,
name-bound lambdas and ``self.method`` references all resolve to the
same :class:`FunctionInfo` the taint engine summarised, so MRS201 is
exactly as interprocedural as MRJ001.
"""

from __future__ import annotations

import ast

from repro.analysis.callgraph import FunctionInfo, walk_own_nodes
from repro.analysis.findings import Finding, Rule
from repro.analysis.taint import EFFECT_KINDS, ModuleTaint, dotted_name

SPARKLITE_RULES = {
    "MRS201": Rule(
        id="MRS201",
        family="sparklite",
        severity="error",
        title="nondeterministic closure in a transformation",
        hint="lineage recomputation re-runs the closure after executor "
        "loss or cache eviction; seed randomness outside the pipeline "
        "(or derive it from the record) so recomputed partitions equal "
        "the originals",
    ),
    "MRS202": Rule(
        id="MRS202",
        family="sparklite",
        severity="error",
        title="closure mutates captured driver state",
        hint="closures are shipped to executors; mutations update the "
        "executor's copy and the driver never sees them — aggregate "
        "with reduce_by_key()/count_by_key() instead of a captured "
        "accumulator",
    ),
    "MRS203": Rule(
        id="MRS203",
        family="sparklite",
        severity="error",
        title="action on a captured RDD inside a transformation",
        hint="an action inside a per-record closure launches a nested "
        "job for every record; collect() the smaller dataset once on "
        "the driver and capture the resulting list/dict, or use join()",
    ),
    "MRS204": Rule(
        id="MRS204",
        family="sparklite",
        severity="error",
        title="non-associative reduce operand",
        hint="reduce()/reduce_by_key() combine partial results in "
        "partition order, so the operand must be associative: a - b, "
        "a / b and (a + b) / 2 all change answers with num_partitions; "
        "emit (sum, count) pairs and divide after collecting",
    ),
}

#: RDD methods that take a user closure and run it remotely.
TRANSFORMATIONS = frozenset(
    {"map", "filter", "flat_map", "map_values"}
)

#: RDD methods that take a *combining* closure (must be associative).
REDUCERS = frozenset({"reduce", "reduce_by_key"})

#: RDD methods that trigger a job when called.
ACTIONS = frozenset(
    {"collect", "count", "take", "reduce", "sum", "count_by_key"}
)

#: Context methods producing an RDD.
_RDD_SOURCES = frozenset({"parallelize", "text_file"})

#: RDD methods producing another RDD (for RDD-typedness inference).
_RDD_PRODUCERS = TRANSFORMATIONS | frozenset(
    {
        "union",
        "reduce_by_key",
        "group_by_key",
        "distinct",
        "join",
        "cache",
        "unpersist",
    }
)

#: Receiver-method mutations that count as writing captured state.
_MUTATOR_METHODS = frozenset(
    {
        "append",
        "extend",
        "insert",
        "add",
        "update",
        "pop",
        "popitem",
        "clear",
        "remove",
        "discard",
        "setdefault",
        "sort",
        "reverse",
    }
)

#: Non-associative binary operators for MRS204.
_NON_ASSOCIATIVE_OPS = (
    ast.Sub,
    ast.Div,
    ast.FloorDiv,
    ast.Mod,
    ast.Pow,
    ast.MatMult,
    ast.LShift,
    ast.RShift,
)


def _binding_names(target: ast.expr) -> set[str]:
    """Names a target expression *binds* — a subscript/attribute target
    mutates an existing object, it does not bind its root name."""
    if isinstance(target, ast.Name):
        return {target.id}
    if isinstance(target, ast.Starred):
        return _binding_names(target.value)
    if isinstance(target, (ast.Tuple, ast.List)):
        out: set[str] = set()
        for elt in target.elts:
            out |= _binding_names(elt)
        return out
    return set()


def _closure_locals(info: FunctionInfo) -> set[str]:
    """Names the closure binds itself: params, assignments, loop vars."""
    node = info.node
    args = node.args
    names = {
        a.arg
        for a in (
            args.posonlyargs
            + args.args
            + args.kwonlyargs
            + ([args.vararg] if args.vararg else [])
            + ([args.kwarg] if args.kwarg else [])
        )
    }
    if isinstance(node, ast.Lambda):
        return names
    for sub in walk_own_nodes(node):
        if isinstance(sub, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
            targets = (
                sub.targets
                if isinstance(sub, ast.Assign)
                else [sub.target]
            )
            for target in targets:
                names |= _binding_names(target)
        elif isinstance(sub, (ast.For, ast.AsyncFor)):
            names |= _binding_names(sub.target)
        elif isinstance(sub, ast.NamedExpr) and isinstance(
            sub.target, ast.Name
        ):
            names.add(sub.target.id)
        elif isinstance(sub, (ast.With, ast.AsyncWith)):
            for item in sub.items:
                if item.optional_vars is not None:
                    names |= _binding_names(item.optional_vars)
    return names


def _captured_mutations(
    info: FunctionInfo,
) -> list[tuple[ast.AST, str]]:
    """(site, name) pairs where the closure mutates a captured object."""
    local = _closure_locals(info)
    out: list[tuple[ast.AST, str]] = []
    for node in walk_own_nodes(info.node):
        name: str | None = None
        if isinstance(node, ast.AugAssign) and isinstance(
            node.target, (ast.Subscript, ast.Attribute)
        ):
            name = _root_name(node.target)
        elif isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, (ast.Subscript, ast.Attribute)):
                    name = _root_name(target)
        elif (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in _MUTATOR_METHODS
        ):
            name = _root_name(node.func.value)
        if name is not None and name not in local and name != "self":
            out.append((node, name))
    return out


def _root_name(node: ast.expr) -> str | None:
    while isinstance(node, (ast.Subscript, ast.Attribute)):
        node = node.value
    if isinstance(node, ast.Name):
        return node.id
    return None


class _RddNames:
    """Module-wide inference of which names are bound to RDDs.

    A name is RDD-typed when assigned from ``sc.parallelize(...)`` /
    ``sc.text_file(...)``, from a known RDD producer method on an
    already-RDD expression, or annotated ``: RDD``.  Inference iterates
    module-wide until stable so ``words = lines.flat_map(...)`` chains
    resolve regardless of order.
    """

    def __init__(self, tree: ast.Module):
        self.names: set[str] = set()
        assigns: list[tuple[str, ast.expr]] = []
        for node in ast.walk(tree):
            if isinstance(node, ast.Assign):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        assigns.append((target.id, node.value))
            elif (
                isinstance(node, ast.AnnAssign)
                and isinstance(node.target, ast.Name)
                and node.annotation is not None
            ):
                try:
                    annotation = ast.unparse(node.annotation)
                except Exception:  # pragma: no cover
                    annotation = ""
                if "RDD" in annotation:
                    self.names.add(node.target.id)
        for arg in (
            a
            for node in ast.walk(tree)
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
            for a in node.args.args + node.args.posonlyargs
        ):
            if arg.annotation is not None:
                try:
                    annotation = ast.unparse(arg.annotation)
                except Exception:  # pragma: no cover
                    annotation = ""
                if "RDD" in annotation:
                    self.names.add(arg.arg)
        for _ in range(len(assigns) + 1):
            changed = False
            for name, value in assigns:
                if name not in self.names and self.is_rdd_expr(value):
                    self.names.add(name)
                    changed = True
            if not changed:
                break

    def is_rdd_expr(self, node: ast.expr) -> bool:
        if isinstance(node, ast.Name):
            return node.id in self.names
        if isinstance(node, ast.Call) and isinstance(
            node.func, ast.Attribute
        ):
            method = node.func.attr
            if method in _RDD_SOURCES:
                return True
            if method in _RDD_PRODUCERS:
                return self.is_rdd_expr(node.func.value) or _looks_like_rdd(
                    node.func.value
                )
        return False


def _looks_like_rdd(node: ast.expr) -> bool:
    """Heuristic receiver check: a chain that *ends* in an RDD producer
    somewhere upstream (``sc.text_file(p).map(f)``)."""
    while isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
        if node.func.attr in _RDD_SOURCES:
            return True
        node = node.func.value
    return False


class _SparkliteVisitor:
    def __init__(self, path: str, tree: ast.Module):
        self.path = path
        self.tree = tree
        self.taint = ModuleTaint(tree)
        self.rdds = _RddNames(tree)
        self.findings: list[Finding] = []
        #: closures already reported per rule, to avoid one finding per
        #: pipeline stage reusing the same helper.
        self._seen: set[tuple[str, int]] = set()

    def _emit(self, rule_id: str, node: ast.AST, message: str) -> None:
        rule = SPARKLITE_RULES[rule_id]
        self.findings.append(
            Finding(
                rule=rule_id,
                path=self.path,
                line=node.lineno,
                col=node.col_offset,
                severity=rule.severity,
                message=message,
                hint=rule.hint,
            )
        )

    # ------------------------------------------------------------------
    def run(self) -> list[Finding]:
        for node in ast.walk(self.tree):
            if not (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
            ):
                continue
            method = node.func.attr
            if not self._is_rdd_call(node):
                continue
            if method in TRANSFORMATIONS and node.args:
                self._check_closure(node, method, node.args[0])
            if method in REDUCERS and node.args:
                self._check_reducer(node, method, node.args[0])
        return self.findings

    def _is_rdd_call(self, node: ast.Call) -> bool:
        receiver = node.func.value
        return self.rdds.is_rdd_expr(receiver) or _looks_like_rdd(receiver)

    def _resolve(self, ref: ast.expr) -> FunctionInfo | None:
        caller = None
        # Attribute refs like self.tokenize need the enclosing method;
        # find it by scanning the indexed functions for ownership.
        for info in self.taint.graph.functions:
            for sub in walk_own_nodes(info.node):
                if sub is ref:
                    caller = info
                    break
            if caller is not None:
                break
        return self.taint.graph.lookup(ref, caller)

    # -- MRS201 / MRS202 / MRS203 --------------------------------------
    def _check_closure(
        self, call: ast.Call, method: str, ref: ast.expr
    ) -> None:
        info = self._resolve(ref)
        if info is None:
            return
        label = info.name if info.name != "<lambda>" else "the closure"
        # MRS201: nondeterminism, interprocedural via the taint engine.
        for effect in self.taint.effects_of(info):
            if effect.kind not in EFFECT_KINDS:
                continue
            if not self._first_report("MRS201", effect.site):
                continue
            self._emit(
                "MRS201",
                effect.site,
                f".{method}({label}) ships a closure that calls "
                f"{effect.render_chain()}: recomputing a lost partition "
                "produces different records than the first run",
            )
        # MRS202: mutating captured driver state.
        for site, name in _captured_mutations(info):
            if not self._first_report("MRS202", site):
                continue
            self._emit(
                "MRS202",
                site,
                f".{method}({label}) mutates captured '{name}'; the "
                "update happens on the executor's copy and never reaches "
                "the driver",
            )
        # MRS203: actions on captured RDDs inside the closure.
        for sub in walk_own_nodes(info.node):
            if not (
                isinstance(sub, ast.Call)
                and isinstance(sub.func, ast.Attribute)
                and sub.func.attr in ACTIONS
            ):
                continue
            receiver = sub.func.value
            if self.rdds.is_rdd_expr(receiver) or _looks_like_rdd(receiver):
                if not self._first_report("MRS203", sub):
                    continue
                target = dotted_name(receiver) or "an RDD"
                self._emit(
                    "MRS203",
                    sub,
                    f".{method}({label}) calls {target}.{sub.func.attr}() "
                    "per record — a nested job launch for every input; "
                    "collect the small side once on the driver instead",
                )

    def _first_report(self, rule: str, site: ast.AST) -> bool:
        key = (rule, id(site))
        if key in self._seen:
            return False
        self._seen.add(key)
        return True

    # -- MRS204 ---------------------------------------------------------
    def _check_reducer(
        self, call: ast.Call, method: str, ref: ast.expr
    ) -> None:
        info = self._resolve(ref)
        if info is None:
            return
        site = self._non_associative_site(info, set())
        if site is None:
            return
        label = info.name if info.name != "<lambda>" else "the operand"
        op = site.op.__class__.__name__.lower()
        self._emit(
            "MRS204",
            ref if hasattr(ref, "lineno") else call,
            f".{method}({label}) combines with a non-associative "
            f"operator ({op}); partial results merge in partition order, "
            "so the answer changes with num_partitions",
        )

    def _non_associative_site(
        self, info: FunctionInfo, visited: set[int]
    ) -> ast.BinOp | None:
        """First Div/Sub/... reachable from the operand, helpers included."""
        if id(info.node) in visited:
            return None
        visited.add(id(info.node))
        params = set(info.params)
        for node in walk_own_nodes(info.node):
            if isinstance(node, ast.BinOp) and isinstance(
                node.op, _NON_ASSOCIATIVE_OPS
            ):
                # Only flag arithmetic that involves the combined values
                # (a constant scale like x * 2 - 1 on one input would be
                # a mapper's business; reduce operands combine *both*).
                names = {
                    leaf.id
                    for leaf in ast.walk(node)
                    if isinstance(leaf, ast.Name)
                }
                if len(names & params) >= 2 or not params:
                    return node
            elif isinstance(node, ast.Call):
                callee = self.taint.graph.resolve_call(node, info)
                if callee is not None:
                    nested = self._non_associative_site(callee, visited)
                    if nested is not None:
                        return nested
        return None


def check_sparklite_rules(path: str, tree: ast.Module) -> list[Finding]:
    """Run all MRS2xx rules over one parsed module."""
    return _SparkliteVisitor(path, tree).run()
