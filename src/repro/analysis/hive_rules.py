"""Hive rules (MRH3xx): UDFs and query-embedded Python.

HiveLite compiles micro-SQL to MapReduce, so every guarantee the MRJ
rules defend — deterministic re-execution, stateless per-record calls —
must also hold for the Python that *rides along with a query*:

==========  ==========================================================
``MRH301``  nondeterministic UDF: a function registered with
            ``register_udf`` (or passed live to ``lint_udfs``) reaches
            an unseeded RNG / wall clock / entropy source — the UDF
            runs map-side per attempt, so speculative re-execution
            writes different rows
``MRH302``  stateful UDF: the function carries state across calls
            (``global``/``nonlocal`` writes, mutation of captured
            objects, default-argument accumulators) — rows are
            processed in partition order on executors, so the state
            neither aggregates correctly nor reaches the driver
``MRH303``  nondeterministic value interpolated into SQL text handed
            to ``execute()``/``explain()`` — the query itself then
            differs run-to-run, which defeats plan caching, auditing
            and the course's replayability contract
==========  ==========================================================

Like the MRS rules, resolution is interprocedural: the module call
graph chases ``register_udf("n", helper)`` to the helper, and the
taint engine's summaries make a UDF that *calls* ``noise()`` exactly as
guilty as one that calls ``random.random()`` itself.
"""

from __future__ import annotations

import ast
import inspect
import textwrap

from repro.analysis.callgraph import FunctionInfo, walk_own_nodes
from repro.analysis.cfg import header_expressions, is_header
from repro.analysis.findings import Finding, Rule, sort_findings
from repro.analysis.taint import (
    EFFECT_KINDS,
    KIND_HASH_ORDER,
    ModuleTaint,
)

HIVE_RULES = {
    "MRH301": Rule(
        id="MRH301",
        family="hive",
        severity="error",
        title="nondeterministic UDF",
        hint="a UDF runs map-side once per row per attempt; speculation "
        "and failure recovery re-run it, so it must be a pure function "
        "of its argument — derive randomness from the row value or "
        "precompute it outside the query",
    ),
    "MRH302": Rule(
        id="MRH302",
        family="hive",
        severity="error",
        title="UDF carries state across calls",
        hint="UDFs are shipped to executors; global/captured/default-arg "
        "state is per-process and per-attempt, so it neither survives "
        "nor aggregates — use GROUP BY with the built-in aggregates "
        "for anything that accumulates",
    ),
    "MRH303": Rule(
        id="MRH303",
        family="hive",
        severity="error",
        title="nondeterministic value interpolated into SQL",
        hint="the query string must be stable run-to-run: compute "
        "thresholds/labels deterministically (e.g. from JobConf) before "
        "formatting them into the SQL",
    ),
}

#: Methods treated as SQL entry points for MRH303.
_SQL_SINKS = frozenset({"execute", "explain"})

#: Receiver-method mutations that count as writing captured state.
_MUTATOR_METHODS = frozenset(
    {
        "append",
        "extend",
        "insert",
        "add",
        "update",
        "pop",
        "popitem",
        "clear",
        "remove",
        "discard",
        "setdefault",
        "sort",
        "reverse",
    }
)


def _fn_locals(node: ast.AST) -> set[str]:
    """Names a function binds itself (params, assignments, loop vars)."""
    from repro.analysis.sparklite_rules import _binding_names

    args = node.args
    names = {
        a.arg
        for a in (
            args.posonlyargs
            + args.args
            + args.kwonlyargs
            + ([args.vararg] if args.vararg else [])
            + ([args.kwarg] if args.kwarg else [])
        )
    }
    if isinstance(node, ast.Lambda):
        return names
    for sub in walk_own_nodes(node):
        if isinstance(sub, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
            targets = (
                sub.targets if isinstance(sub, ast.Assign) else [sub.target]
            )
            for target in targets:
                names |= _binding_names(target)
        elif isinstance(sub, (ast.For, ast.AsyncFor)):
            names |= _binding_names(sub.target)
        elif isinstance(sub, ast.NamedExpr) and isinstance(
            sub.target, ast.Name
        ):
            names.add(sub.target.id)
    return names


def _root_name(node: ast.expr) -> str | None:
    while isinstance(node, (ast.Subscript, ast.Attribute)):
        node = node.value
    if isinstance(node, ast.Name):
        return node.id
    return None


def _state_carriers(info: FunctionInfo) -> list[tuple[ast.AST, str]]:
    """(site, description) pairs where the UDF keeps cross-call state."""
    node = info.node
    out: list[tuple[ast.AST, str]] = []
    if isinstance(node, ast.Lambda):
        mutable_defaults: list[ast.expr] = []
    else:
        mutable_defaults = list(node.args.defaults) + [
            d for d in node.args.kw_defaults if d is not None
        ]
    for default in mutable_defaults:
        if isinstance(default, (ast.List, ast.Dict, ast.Set)) or (
            isinstance(default, ast.Call)
            and isinstance(default.func, ast.Name)
            and default.func.id in ("list", "dict", "set", "defaultdict")
        ):
            out.append(
                (default, "a mutable default argument (shared across calls)")
            )
    local = _fn_locals(node)
    for sub in walk_own_nodes(node):
        if isinstance(sub, ast.Global):
            for name in sub.names:
                out.append((sub, f"global '{name}'"))
        elif isinstance(sub, ast.Nonlocal):
            for name in sub.names:
                out.append((sub, f"nonlocal '{name}'"))
        else:
            name: str | None = None
            if isinstance(sub, ast.AugAssign) and isinstance(
                sub.target, (ast.Subscript, ast.Attribute)
            ):
                name = _root_name(sub.target)
            elif isinstance(sub, ast.Assign):
                for target in sub.targets:
                    if isinstance(target, (ast.Subscript, ast.Attribute)):
                        name = _root_name(target)
            elif (
                isinstance(sub, ast.Call)
                and isinstance(sub.func, ast.Attribute)
                and sub.func.attr in _MUTATOR_METHODS
            ):
                name = _root_name(sub.func.value)
            if name is not None and name not in local and name != "self":
                out.append((sub, f"captured '{name}'"))
    return out


class _HiveVisitor:
    def __init__(self, path: str, tree: ast.Module):
        self.path = path
        self.tree = tree
        self.taint = ModuleTaint(tree)
        self.findings: list[Finding] = []

    def _emit(self, rule_id: str, node: ast.AST, message: str) -> None:
        rule = HIVE_RULES[rule_id]
        self.findings.append(
            Finding(
                rule=rule_id,
                path=self.path,
                line=node.lineno,
                col=node.col_offset,
                severity=rule.severity,
                message=message,
                hint=rule.hint,
            )
        )

    # ------------------------------------------------------------------
    def run(self) -> list[Finding]:
        for name, info, site in self._udf_registrations():
            self.check_udf(name, info, emit_at=site)
        self._check_sql_sinks()
        return self.findings

    def _enclosing(self, ref: ast.AST) -> FunctionInfo | None:
        for info in self.taint.graph.functions:
            for sub in walk_own_nodes(info.node):
                if sub is ref:
                    return info
        return None

    def _udf_registrations(self):
        """Every ``<x>.register_udf("name", fn)`` resolvable in-module."""
        out = []
        for node in ast.walk(self.tree):
            if not (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "register_udf"
                and len(node.args) >= 2
            ):
                continue
            name = (
                node.args[0].value
                if isinstance(node.args[0], ast.Constant)
                and isinstance(node.args[0].value, str)
                else "<udf>"
            )
            ref = node.args[1]
            info = self.taint.graph.lookup(ref, self._enclosing(ref))
            if info is not None:
                out.append((name, info, node))
        return out

    # -- MRH301 / MRH302 -------------------------------------------------
    def check_udf(
        self, name: str, info: FunctionInfo, emit_at: ast.AST | None = None
    ) -> None:
        for effect in self.taint.effects_of(info):
            if effect.kind not in EFFECT_KINDS:
                continue
            self._emit(
                "MRH301",
                effect.site,
                f"UDF {name}() calls {effect.render_chain()}: re-executed "
                "map attempts write different rows for the same input",
            )
        for site, what in _state_carriers(info):
            self._emit(
                "MRH302",
                site,
                f"UDF {name}() accumulates state in {what}; executors "
                "process rows independently, so the state neither "
                "aggregates nor reaches the driver",
            )

    # -- MRH303 ----------------------------------------------------------
    def _check_sql_sinks(self) -> None:
        for info in self.taint.graph.functions:
            analysis = self.taint.analysis_for(info)
            envs = analysis.statement_envs()
            for stmt in analysis.cfg.statements_in_flow_order():
                env = envs.get(id(stmt), {})
                self._check_stmt_sinks(stmt, env, analysis)
        # Module-level code: straight-line environment approximation.
        analysis = self.taint.analysis_for(None)
        env: dict = {}
        for stmt in self.tree.body:
            if isinstance(
                stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            ):
                continue
            self._check_stmt_sinks(stmt, env, analysis, header_ok=True)
            analysis._statement(stmt, env)

    def _check_stmt_sinks(
        self, stmt, env: dict, analysis, header_ok: bool = False
    ) -> None:
        if is_header(stmt):
            exprs = [
                e for e in header_expressions(stmt) if isinstance(e, ast.expr)
            ]
        elif header_ok:
            # Raw module-level statements: walk everything (bodies of
            # module-level ifs/loops included; the env is approximate).
            exprs = [
                child
                for child in ast.walk(stmt)
                if isinstance(child, ast.expr)
            ]
        else:
            exprs = [
                child
                for child in ast.iter_child_nodes(stmt)
                if isinstance(child, ast.expr)
            ]
        seen: set[int] = set()
        for expr in exprs:
            for node in ast.walk(expr):
                if id(node) in seen:
                    continue
                seen.add(id(node))
                if not (
                    isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr in _SQL_SINKS
                    and node.args
                ):
                    continue
                sql_arg = node.args[0]
                if isinstance(sql_arg, ast.Constant):
                    continue  # literal SQL is always stable
                taint = analysis.eval_taint(sql_arg, dict(env), record=False)
                bad = taint & (EFFECT_KINDS | {KIND_HASH_ORDER})
                if not bad:
                    continue
                kinds = ", ".join(sorted(bad))
                self._emit(
                    "MRH303",
                    sql_arg,
                    f".{node.func.attr}(...) receives SQL text built from "
                    f"a nondeterministic value ({kinds}); the query "
                    "differs run-to-run",
                )


def check_hive_rules(path: str, tree: ast.Module) -> list[Finding]:
    """Run all MRH3xx rules over one parsed module."""
    return _HiveVisitor(path, tree).run()


def lint_udf_callables(udfs: dict) -> list[Finding]:
    """Lint *live* UDF callables (the ``HiveLite.lint_udfs`` backend).

    Source is recovered with :mod:`inspect` per defining module, so a
    UDF's same-module helpers resolve exactly as they do when linting
    the file.  Callables whose source cannot be recovered (builtins,
    C extensions, REPL lambdas) are skipped — they cannot be analysed,
    and the registration API already guarantees they are callable.
    """
    by_module: dict = {}
    for name, fn in sorted(udfs.items()):
        module = inspect.getmodule(fn)
        try:
            if module is not None and hasattr(module, "__file__"):
                source = inspect.getsource(module)
                path = module.__file__ or f"<module {module.__name__}>"
            else:
                source = textwrap.dedent(inspect.getsource(fn))
                path = f"<udf {name}>"
        except (OSError, TypeError):
            continue
        by_module.setdefault((path, source), []).append((name, fn))
    findings: list[Finding] = []
    for (path, source), fns in by_module.items():
        try:
            tree = ast.parse(source)
        except SyntaxError:  # pragma: no cover - inspect returned junk
            continue
        visitor = _HiveVisitor(path, tree)
        for name, fn in fns:
            info = _find_function(visitor.taint, fn)
            if info is not None:
                visitor.check_udf(name, info)
        findings.extend(visitor.findings)
    return sort_findings(findings)


def _find_function(taint: ModuleTaint, fn) -> FunctionInfo | None:
    qualname = getattr(fn, "__qualname__", None)
    code = getattr(fn, "__code__", None)
    for info in taint.graph.functions:
        if qualname is not None and info.qualname == qualname:
            return info
    if code is not None:
        for info in taint.graph.functions:
            if info.node.lineno == code.co_firstlineno:
                return info
    return None
