"""Purity/nondeterminism taint: the lattice under mrlint 2.0.

PR 3's rules matched call names inside one function body.  This module
tracks *where nondeterminism enters and how it travels*:

- **Sources** — unseeded RNG draws (``random.random`` and friends, on
  the module RNG or an unseeded ``random.Random()``/``SystemRandom``
  instance), wall-clock reads (``time.*``, ``datetime.now``), entropy
  (``os.urandom``, ``uuid.uuid1/4``), address-space leaks (``id()``,
  builtin ``hash()``), and hash-order iteration over ``set``/``dict``.
- **Sanitizers** — seeding from job configuration (``random.Random(x)``
  or ``random.seed(x)`` with a deterministic ``x``, e.g. a JobConf
  value) makes the RNG's stream replayable, so draws from it are
  *clean*; ``sorted(...)`` and order-insensitive aggregates
  (``sum``/``min``/``max``/``any``/``all``/``len``/``set``) erase
  hash-order taint.
- **Propagation** — flow-sensitively through local assignments (via the
  CFG), through ``self.<attr>`` fields (joined across a class's
  methods, so ``setup()`` seeding is visible from ``map()``), and
  *interprocedurally* through the module call graph: every function
  gets a :class:`Summary` of the nondeterministic effects running it
  causes — unconditionally, or conditionally on what a caller passes
  for a parameter — and call sites splice callee summaries in with the
  call chain preserved for diagnostics.

Rules consume the result through :class:`ModuleTaint`: MRJ001 asks for
a task method's effects, MRS201/MRH301 ask for a closure's, MRH303 asks
for the *value* taint of an expression interpolated into SQL.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field, replace

from repro.analysis.callgraph import CallGraph, FunctionInfo, walk_own_nodes
from repro.analysis.cfg import build_cfg, header_expressions, is_header
from repro.analysis.dataflow import solve_forward

# --------------------------------------------------------------------------
# taint tags

#: Nondeterministic *call* kinds (an effect happened when control passed
#: the site).
KIND_RANDOM = "random"
KIND_TIME = "time"
KIND_ENTROPY = "entropy"
KIND_ADDRESS = "address"
#: A *value* whose ordering/content depends on hash iteration order.
KIND_HASH_ORDER = "hash-order"

#: Kinds that make re-executed task attempts diverge (MRJ001's gate).
EFFECT_KINDS = frozenset(
    {KIND_RANDOM, KIND_TIME, KIND_ENTROPY, KIND_ADDRESS}
)

#: Object-shape tags for RNG instances.
TAG_RNG_SEEDED = "rng-seeded"
TAG_RNG_UNSEEDED = "rng-unseeded"

_PARAM = "param:{}"  # value IS parameter i (identity flow)
_PARAM_DRAW = "param-draw:{}"  # value drawn from parameter i's RNG
_PARAM_RE = re.compile(r"^param(?:-draw)?:(\d+)$")


#: Dotted suffixes that are nondeterministic sources, with their kind.
#: Matched like PR 3 did — exact dotted name or ``.``-suffix — so
#: aliased module imports still hit.
NONDET_CALLS: dict[str, str] = {
    "os.urandom": KIND_ENTROPY,
    "uuid.uuid1": KIND_ENTROPY,
    "uuid.uuid4": KIND_ENTROPY,
    "time.time": KIND_TIME,
    "time.time_ns": KIND_TIME,
    "time.monotonic": KIND_TIME,
    "time.monotonic_ns": KIND_TIME,
    "time.perf_counter": KIND_TIME,
    "time.perf_counter_ns": KIND_TIME,
    "datetime.now": KIND_TIME,
    "datetime.utcnow": KIND_TIME,
    "datetime.today": KIND_TIME,
    "date.today": KIND_TIME,
}

#: Draw methods on RNG objects (and the ``random`` module itself).
RNG_DRAW_METHODS = frozenset(
    {
        "random",
        "randint",
        "randrange",
        "choice",
        "choices",
        "sample",
        "shuffle",
        "uniform",
        "triangular",
        "gauss",
        "normalvariate",
        "lognormvariate",
        "expovariate",
        "betavariate",
        "gammavariate",
        "paretovariate",
        "vonmisesvariate",
        "weibullvariate",
        "getrandbits",
        "randbytes",
    }
)

#: Builtins whose *call* is an address/hash-seed leak.
ADDRESS_BUILTINS = frozenset({"id", "hash"})

#: Builtins that consume an iterable order-insensitively: feeding a
#: hash-ordered collection through them yields a deterministic value.
ORDER_INSENSITIVE_AGGREGATES = frozenset(
    {"sum", "len", "any", "all", "min", "max", "set", "frozenset", "sorted"}
)

#: Builtins that *freeze* iteration order into their result.
ORDER_PRESERVING = frozenset({"list", "tuple", "iter", "reversed", "enumerate"})


def dotted_name(node: ast.expr) -> str | None:
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _suffix_lookup(name: str, table: dict[str, str]) -> str | None:
    for suffix, kind in table.items():
        if name == suffix or name.endswith("." + suffix):
            return kind
    return None


# --------------------------------------------------------------------------
# set-typedness inference (shared with the MRE101 rule)


_SET_ANNOTATION = re.compile(r"\b(set|frozenset|Set|AbstractSet|MutableSet)\b")


def is_set_annotation(annotation: ast.expr | None) -> bool:
    if annotation is None:
        return False
    try:
        text = ast.unparse(annotation)
    except Exception:  # pragma: no cover - malformed annotation
        return False
    return bool(_SET_ANNOTATION.search(text))


def is_set_literalish(node: ast.expr) -> bool:
    """A value expression that is statically a set."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id in ("set", "frozenset")
    ):
        return True
    return False


class SetTypes:
    """Module-wide syntactic inference of set-typed names/attributes.

    Grown from PR 3's ``engine_rules._SetTypes`` — now shared by the
    taint engine (hash-order sources) and MRE101.
    """

    def __init__(self, tree: ast.Module):
        #: Attribute names declared set-typed somewhere in this module
        #: (class annotations or ``self.x = set()``); any ``expr.<name>``
        #: access is then treated as a set.
        self.attr_names: set[str] = set()
        for node in ast.walk(tree):
            if isinstance(node, ast.ClassDef):
                for stmt in node.body:
                    if (
                        isinstance(stmt, ast.AnnAssign)
                        and isinstance(stmt.target, ast.Name)
                        and is_set_annotation(stmt.annotation)
                    ):
                        self.attr_names.add(stmt.target.id)
            elif isinstance(node, ast.Assign):
                if is_set_literalish(node.value):
                    for target in node.targets:
                        if (
                            isinstance(target, ast.Attribute)
                            and isinstance(target.value, ast.Name)
                            and target.value.id == "self"
                        ):
                            self.attr_names.add(target.attr)
            elif isinstance(node, ast.AnnAssign):
                if (
                    isinstance(node.target, ast.Attribute)
                    and isinstance(node.target.value, ast.Name)
                    and node.target.value.id == "self"
                    and is_set_annotation(node.annotation)
                ):
                    self.attr_names.add(node.target.attr)

    def local_sets(self, fn: ast.FunctionDef) -> set[str]:
        names: set[str] = set()
        for arg in list(fn.args.args) + list(fn.args.kwonlyargs):
            if is_set_annotation(arg.annotation):
                names.add(arg.arg)
        for node in ast.walk(fn):
            if isinstance(node, ast.Assign) and is_set_literalish(node.value):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        names.add(target.id)
            elif (
                isinstance(node, ast.AnnAssign)
                and isinstance(node.target, ast.Name)
                and is_set_annotation(node.annotation)
            ):
                names.add(node.target.id)
        return names

    def is_set_expr(self, node: ast.expr, local: set[str]) -> bool:
        if is_set_literalish(node):
            return True
        if isinstance(node, ast.Name):
            return node.id in local
        if isinstance(node, ast.Attribute):
            return node.attr in self.attr_names
        if isinstance(node, ast.BinOp) and isinstance(
            node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)
        ):
            return self.is_set_expr(node.left, local) or self.is_set_expr(
                node.right, local
            )
        return False


def order_insensitive_generator_iters(tree: ast.AST) -> set[int]:
    """ids of generator ``iter`` expressions consumed order-insensitively.

    A comprehension/generator that is the *sole* argument of an
    order-insensitive aggregate (``sum(1 for d in dns if live(d))``,
    ``any(... for d in s)``, ``sorted(x for x in s)``) visits its
    iterable in hash order, but the aggregate's value provably does not
    depend on that order — the dataflow fact that lets MRE101 pass the
    NameNode's replication arithmetic without suppressions.
    """
    sinks: set[int] = set()
    for node in ast.walk(tree):
        if not (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id in ORDER_INSENSITIVE_AGGREGATES
            and len(node.args) == 1
            and not any(kw.arg == "key" for kw in node.keywords)
        ):
            continue
        arg = node.args[0]
        if isinstance(arg, (ast.GeneratorExp, ast.ListComp, ast.SetComp)):
            for gen in arg.generators:
                sinks.add(id(gen.iter))
        else:
            sinks.add(id(arg))
    return sinks


# --------------------------------------------------------------------------
# function summaries


@dataclass(frozen=True)
class Effect:
    """One nondeterministic effect of running a function.

    ``site`` is a node *inside the summarised function* (for transitive
    effects: the local call that leads there).  ``chain`` spells the
    path for diagnostics — ``("noise", "random.random")`` reads as
    "calls noise() → random.random()".  ``param`` marks conditional
    effects: the effect only happens when argument ``param`` is an
    unseeded RNG.  ``module_rng`` marks draws on the shared ``random``
    module RNG, which a ``random.seed(...)`` in ``setup()`` tames.
    """

    kind: str
    site: ast.AST
    chain: tuple[str, ...]
    param: int | None = None
    module_rng: bool = False

    def render_chain(self) -> str:
        return " → ".join(f"{part}()" for part in self.chain)

    def _key(self):
        return (self.kind, id(self.site), self.chain, self.param)


@dataclass
class Summary:
    """What calling a function does, nondeterminism-wise."""

    effects: list[Effect] = field(default_factory=list)
    #: Taint tags of the return value (may include param markers).
    returns: frozenset = frozenset()
    #: Does any method body call ``random.seed(<deterministic>)``?
    seeds_module_rng: bool = False

    def key(self):
        return (
            tuple(e._key() for e in self.effects),
            self.returns,
            self.seeds_module_rng,
        )


_EMPTY = frozenset()


class ModuleTaint:
    """Taint analysis of one module: call graph + per-function summaries
    + per-class attribute taint, iterated to a fixpoint."""

    def __init__(self, tree: ast.Module):
        self.tree = tree
        self.graph = CallGraph(tree)
        self.set_types = SetTypes(tree)
        self.order_sinks = order_insensitive_generator_iters(tree)
        #: (class name, attr) -> taint tags, joined over every
        #: ``self.attr = ...`` in the class's methods.
        self.attr_taint: dict[tuple[str, str], frozenset] = {}
        #: class name -> True when setup()/__init__ seeds the module RNG
        self.rng_seeding_classes: set[str] = set()
        self.summaries: dict[FunctionInfo, Summary] = {
            info: Summary() for info in self.graph.functions
        }
        self._cfgs: dict[FunctionInfo, object] = {}
        self._solve()

    # ------------------------------------------------------------------
    def summary(self, info: FunctionInfo) -> Summary:
        return self.summaries.get(info, Summary())

    def effects_of(self, info: FunctionInfo) -> list[Effect]:
        """Unconditional nondeterministic effects of calling ``info``,
        with class-level sanitisation (module-RNG seeding) applied."""
        out = []
        seeded = (
            info.klass is not None
            and info.klass.name in self.rng_seeding_classes
        )
        for effect in self.summary(info).effects:
            if effect.param is not None:
                continue
            if effect.module_rng and seeded:
                continue
            out.append(effect)
        return out

    def value_taint(
        self, expr: ast.expr, info: FunctionInfo | None
    ) -> frozenset:
        """Taint of one expression evaluated in ``info``'s environment.

        Convenience for rules that inspect a single expression (e.g. a
        value interpolated into SQL): parameters are treated as clean,
        ``self.<attr>`` resolves through the class attribute map.
        """
        analysis = _FunctionAnalysis(self, info)
        env = analysis.env_at_end() if info is not None else {}
        return analysis.eval_taint(expr, env, record=False)

    def analysis_for(self, info: FunctionInfo) -> "_FunctionAnalysis":
        """A fresh intraprocedural pass over ``info`` for rules needing
        per-statement environments (:meth:`_FunctionAnalysis.statement_envs`)."""
        return _FunctionAnalysis(self, info)

    # ------------------------------------------------------------------
    def _solve(self) -> None:
        # Monotone summaries: iterate until stable.  Chain lengths are
        # capped by the visited-set inside effect splicing, so this
        # terminates even on recursion.
        for _round in range(len(self.graph.functions) + 2):
            changed = False
            for info in self.graph.functions:
                analysis = _FunctionAnalysis(self, info)
                summary = analysis.run()
                if summary.key() != self.summaries[info].key():
                    self.summaries[info] = summary
                    changed = True
                if summary.seeds_module_rng and info.klass is not None:
                    if info.name in ("setup", "__init__"):
                        if info.klass.name not in self.rng_seeding_classes:
                            self.rng_seeding_classes.add(info.klass.name)
                            changed = True
            if not changed:
                break


class _FunctionAnalysis:
    """Flow-sensitive intraprocedural pass over one function's CFG."""

    def __init__(self, module: ModuleTaint, info: FunctionInfo | None):
        self.module = module
        self.info = info
        self.effects: list[Effect] = []
        self._effect_keys: set = set()
        self.returns: set = set()
        self.seeds_module_rng = False
        if info is not None:
            cfg = module._cfgs.get(info)
            if cfg is None:
                cfg = build_cfg(info.node, info.qualname)
                module._cfgs[info] = cfg
            self.cfg = cfg
        else:
            self.cfg = None

    # ------------------------------------------------------------------
    def _initial_env(self) -> dict[str, frozenset]:
        env: dict[str, frozenset] = {}
        if self.info is not None:
            params = self.info.params
            start = 0
            if self.info.is_method and params and params[0] in ("self", "cls"):
                start = 1
            for index, param in enumerate(params[start:], start=start):
                env[param] = frozenset({_PARAM.format(index - start)})
        return env

    def run(self) -> Summary:
        if self.cfg is None:
            return Summary()
        self._solve_cfg()
        return Summary(
            effects=self.effects,
            returns=frozenset(self.returns),
            seeds_module_rng=self.seeds_module_rng,
        )

    def env_at_end(self) -> dict[str, frozenset]:
        if self.cfg is None:
            return {}
        solution = self._solve_cfg()
        _in, out = solution.get(self.cfg.exit.index, ({}, {}))
        return out

    def statement_envs(self) -> dict[int, dict[str, frozenset]]:
        """``id(stmt) -> env before the statement`` for every statement."""
        if self.cfg is None:
            return {}
        solution = self._solve_cfg()
        envs: dict[int, dict[str, frozenset]] = {}
        for block in self.cfg.blocks:
            state = dict(solution.get(block.index, ({}, {}))[0])
            for stmt in block.statements:
                envs[id(stmt)] = dict(state)
                self._statement(stmt, state)
        return envs

    def _solve_cfg(self):
        return solve_forward(
            self.cfg,
            transfer=self._transfer,
            join=self._join,
            initial=self._initial_env(),
            bottom={},
        )

    @staticmethod
    def _join(states: list[dict]) -> dict:
        merged: dict[str, frozenset] = {}
        for state in states:
            for name, tags in state.items():
                merged[name] = merged.get(name, _EMPTY) | tags
        return merged

    def _transfer(self, block, state: dict) -> dict:
        env = dict(state)
        for stmt in block.statements:
            self._statement(stmt, env)
        return env

    # ------------------------------------------------------------------
    # statements
    def _statement(self, stmt: ast.stmt, env: dict) -> None:
        if is_header(stmt):
            for expr in header_expressions(stmt):
                if expr is None or not isinstance(expr, ast.expr):
                    continue
                taint = self.eval_taint(expr, env)
            # For-loop targets: hash-order taints the loop variable's
            # *sequence*; the element is deterministic content-wise, so
            # the target itself stays clean unless iterating tainted
            # values.
            if isinstance(stmt, (ast.For, ast.AsyncFor)):
                iter_taint = self.eval_taint(stmt.iter, env, record=False)
                self._bind_target(
                    stmt.target, iter_taint - {KIND_HASH_ORDER}, env
                )
            if isinstance(stmt, (ast.With, ast.AsyncWith)):
                for item in stmt.items:
                    if item.optional_vars is not None and isinstance(
                        item.optional_vars, ast.Name
                    ):
                        env[item.optional_vars.id] = self.eval_taint(
                            item.context_expr, env, record=False
                        )
            return
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            return  # analysed as their own functions
        if isinstance(stmt, ast.Assign):
            taint = self.eval_taint(stmt.value, env)
            for target in stmt.targets:
                self._bind_target(target, taint, env)
            return
        if isinstance(stmt, ast.AnnAssign):
            if stmt.value is not None:
                taint = self.eval_taint(stmt.value, env)
                self._bind_target(stmt.target, taint, env)
            return
        if isinstance(stmt, ast.AugAssign):
            taint = self.eval_taint(stmt.value, env)
            existing = self.eval_taint(stmt.target, env, record=False)
            self._bind_target(stmt.target, taint | existing, env)
            return
        if isinstance(stmt, ast.Return):
            if stmt.value is not None:
                self.returns |= self.eval_taint(stmt.value, env)
            return
        # Everything else: evaluate contained expressions for effects.
        for node in ast.iter_child_nodes(stmt):
            if isinstance(node, ast.expr):
                self.eval_taint(node, env)

    def _bind_target(
        self, target: ast.expr, taint: frozenset, env: dict
    ) -> None:
        if isinstance(target, ast.Name):
            env[target.id] = taint
        elif isinstance(target, ast.Starred):
            self._bind_target(target.value, taint, env)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                self._bind_target(elt, taint, env)
        elif isinstance(target, ast.Attribute) and isinstance(
            target.value, ast.Name
        ):
            key = f"{target.value.id}.{target.attr}"
            env[key] = taint
            if (
                target.value.id == "self"
                and self.info is not None
                and self.info.klass is not None
            ):
                attr_key = (self.info.klass.name, target.attr)
                existing = self.module.attr_taint.get(attr_key, _EMPTY)
                self.module.attr_taint[attr_key] = existing | taint

    # ------------------------------------------------------------------
    # expressions
    def eval_taint(
        self, node: ast.expr, env: dict, record: bool = True
    ) -> frozenset:
        """Taint of an expression; optionally records effects en route."""
        if isinstance(node, ast.Call):
            return self._call(node, env, record)
        if isinstance(node, ast.Name):
            tags = env.get(node.id, _EMPTY)
            if node.id == "self":
                return _EMPTY
            return tags
        if isinstance(node, ast.Attribute):
            root = dotted_name(node)
            if root is not None and isinstance(node.value, ast.Name):
                key = f"{node.value.id}.{node.attr}"
                if key in env:
                    return env[key]
                if (
                    node.value.id == "self"
                    and self.info is not None
                    and self.info.klass is not None
                ):
                    return self._class_attr_taint(
                        self.info.klass, node.attr
                    )
            base = self.eval_taint(node.value, env, record)
            return base
        if isinstance(node, ast.Constant):
            return _EMPTY
        if isinstance(node, (ast.List, ast.Tuple, ast.Set)):
            out = _EMPTY
            for elt in node.elts:
                out |= self.eval_taint(elt, env, record)
            return out
        if isinstance(node, ast.Dict):
            out = _EMPTY
            for key in node.keys:
                if key is not None:
                    out |= self.eval_taint(key, env, record)
            for value in node.values:
                out |= self.eval_taint(value, env, record)
            return out
        if isinstance(node, ast.BinOp):
            return self.eval_taint(node.left, env, record) | self.eval_taint(
                node.right, env, record
            )
        if isinstance(node, ast.BoolOp):
            out = _EMPTY
            for value in node.values:
                out |= self.eval_taint(value, env, record)
            return out
        if isinstance(node, ast.UnaryOp):
            return self.eval_taint(node.operand, env, record)
        if isinstance(node, ast.Compare):
            out = self.eval_taint(node.left, env, record)
            for comp in node.comparators:
                out |= self.eval_taint(comp, env, record)
            return out
        if isinstance(node, ast.IfExp):
            self.eval_taint(node.test, env, record)
            return self.eval_taint(node.body, env, record) | self.eval_taint(
                node.orelse, env, record
            )
        if isinstance(node, ast.Subscript):
            return self.eval_taint(node.value, env, record)
        if isinstance(node, ast.Starred):
            return self.eval_taint(node.value, env, record)
        if isinstance(node, ast.JoinedStr):
            out = _EMPTY
            for value in node.values:
                if isinstance(value, ast.FormattedValue):
                    out |= self.eval_taint(value.value, env, record)
            return out
        if isinstance(node, ast.NamedExpr):
            taint = self.eval_taint(node.value, env, record)
            if isinstance(node.target, ast.Name):
                env[node.target.id] = taint
            return taint
        if isinstance(
            node, (ast.GeneratorExp, ast.ListComp, ast.SetComp, ast.DictComp)
        ):
            return self._comprehension(node, env, record)
        if isinstance(node, ast.Lambda):
            return _EMPTY  # a value, not a call; resolved at call sites
        if isinstance(node, ast.Await):
            return self.eval_taint(node.value, env, record)
        return _EMPTY

    def _class_attr_taint(self, klass: ast.ClassDef, attr: str) -> frozenset:
        tags = self.module.attr_taint.get((klass.name, attr), _EMPTY)
        # Same-module base classes contribute too (setup() on a base).
        for base in self.module.graph._bases_of(klass):
            tags |= self._class_attr_taint(base, attr)
        return tags

    def _comprehension(self, node, env: dict, record: bool) -> frozenset:
        out = _EMPTY
        local = dict(env)
        for gen in node.generators:
            iter_taint = self.eval_taint(gen.iter, local, record)
            out |= iter_taint - {KIND_HASH_ORDER}
            if self._is_set_expr(gen.iter) and id(gen.iter) not in (
                self.module.order_sinks
            ):
                out |= {KIND_HASH_ORDER}
            if iter_taint & {KIND_HASH_ORDER}:
                out |= {KIND_HASH_ORDER}
            self._bind_target(
                gen.target, iter_taint - {KIND_HASH_ORDER}, local
            )
            for cond in gen.ifs:
                out |= self.eval_taint(cond, local, record)
        if isinstance(node, ast.DictComp):
            out |= self.eval_taint(node.key, local, record)
            out |= self.eval_taint(node.value, local, record)
        else:
            out |= self.eval_taint(node.elt, local, record)
        return out

    def _is_set_expr(self, node: ast.expr) -> bool:
        local: set[str] = set()
        if self.info is not None and isinstance(
            self.info.node, (ast.FunctionDef, ast.AsyncFunctionDef)
        ):
            local = self.module.set_types.local_sets(self.info.node)
        return self.module.set_types.is_set_expr(node, local)

    # ------------------------------------------------------------------
    # calls
    def _record(self, effect: Effect) -> None:
        key = effect._key()
        if key not in self._effect_keys:
            self._effect_keys.add(key)
            self.effects.append(effect)

    def _call(self, node: ast.Call, env: dict, record: bool) -> frozenset:
        arg_taints = [
            self.eval_taint(arg, env, record) for arg in node.args
        ]
        for kw in node.keywords:
            arg_taints.append(self.eval_taint(kw.value, env, record))
        name = dotted_name(node.func)

        # -- RNG constructors ------------------------------------------
        if name is not None:
            last = name.rsplit(".", 1)[-1]
            if last == "SystemRandom" and (
                name in ("random.SystemRandom", "SystemRandom")
                or name.endswith(".random.SystemRandom")
            ):
                return frozenset({TAG_RNG_UNSEEDED})
            if last == "Random" and (
                name in ("random.Random", "Random")
                or name.endswith(".random.Random")
            ):
                if node.args and not self._tainted(arg_taints[0]):
                    return frozenset({TAG_RNG_SEEDED})
                return frozenset({TAG_RNG_UNSEEDED})
            # -- random.seed(x): sanitises the module RNG ---------------
            if name in ("random.seed",) or name.endswith(".random.seed"):
                if node.args and not self._tainted(arg_taints[0]):
                    self.seeds_module_rng = True
                    return _EMPTY
                # seeding from a nondet value is still nondet
                if record:
                    self._record(
                        Effect(
                            kind=KIND_RANDOM,
                            site=node,
                            chain=(name,),
                            module_rng=True,
                        )
                    )
                return _EMPTY

        # -- known nondeterministic sources ----------------------------
        if name is not None:
            kind = _suffix_lookup(name, NONDET_CALLS)
            if kind is not None:
                if record:
                    self._record(Effect(kind=kind, site=node, chain=(name,)))
                return frozenset({kind})
            if (
                isinstance(node.func, ast.Name)
                and node.func.id in ADDRESS_BUILTINS
            ):
                if record:
                    self._record(
                        Effect(
                            kind=KIND_ADDRESS, site=node,
                            chain=(node.func.id,),
                        )
                    )
                return frozenset({KIND_ADDRESS})

        # -- RNG draws -------------------------------------------------
        if isinstance(node.func, ast.Attribute):
            method = node.func.attr
            if method in RNG_DRAW_METHODS:
                receiver = node.func.value
                receiver_name = dotted_name(receiver)
                if receiver_name == "random" or (
                    receiver_name or ""
                ).endswith(".random") and receiver_name not in (None,):
                    # module-level RNG draw: random.random()'s cousins
                    # (random.choice etc.) — seedable via random.seed.
                    if record:
                        self._record(
                            Effect(
                                kind=KIND_RANDOM,
                                site=node,
                                chain=(f"{receiver_name}.{method}",),
                                module_rng=True,
                            )
                        )
                    return frozenset({KIND_RANDOM})
                receiver_taint = self.eval_taint(receiver, env, record=False)
                if TAG_RNG_UNSEEDED in receiver_taint:
                    if record:
                        self._record(
                            Effect(
                                kind=KIND_RANDOM,
                                site=node,
                                chain=(
                                    f"{receiver_name or '<rng>'}.{method}",
                                ),
                            )
                        )
                    return frozenset({KIND_RANDOM})
                params = self._param_indexes(receiver_taint)
                if params and TAG_RNG_SEEDED not in receiver_taint:
                    out = _EMPTY
                    for index in params:
                        if record:
                            self._record(
                                Effect(
                                    kind=KIND_RANDOM,
                                    site=node,
                                    chain=(
                                        f"{receiver_name or '<rng>'}"
                                        f".{method}",
                                    ),
                                    param=index,
                                )
                            )
                        out |= {_PARAM_DRAW.format(index)}
                    return out
                return _EMPTY

        # -- order-insensitive aggregates / order-preserving builtins --
        if isinstance(node.func, ast.Name):
            fname = node.func.id
            if fname in ORDER_INSENSITIVE_AGGREGATES:
                out = _EMPTY
                for taint in arg_taints:
                    out |= taint
                return out - {KIND_HASH_ORDER}
            if fname in ORDER_PRESERVING:
                out = _EMPTY
                for taint in arg_taints:
                    out |= taint
                if node.args and self._is_set_expr(node.args[0]):
                    out |= {KIND_HASH_ORDER}
                return out

        # -- intra-module calls: splice the callee summary -------------
        callee = self.module.graph.resolve_call(node, self.info)
        if callee is not None and callee is not self.info:
            return self._splice(node, callee, arg_taints, record)

        # -- unknown call: taint flows through arguments ---------------
        out = _EMPTY
        for taint in arg_taints:
            out |= taint & (EFFECT_KINDS | {KIND_HASH_ORDER})
        return out

    @staticmethod
    def _param_indexes(tags: frozenset) -> list[int]:
        out = []
        for tag in tags:
            match = _PARAM_RE.match(tag)
            if match:
                out.append(int(match.group(1)))
        return sorted(set(out))

    def _tainted(self, tags: frozenset) -> bool:
        return bool(
            tags & (EFFECT_KINDS | {TAG_RNG_UNSEEDED, KIND_HASH_ORDER})
        )

    def _splice(
        self,
        node: ast.Call,
        callee: FunctionInfo,
        arg_taints: list[frozenset],
        record: bool,
    ) -> frozenset:
        summary = self.module.summary(callee)
        callee_label = callee.name
        if record:
            for effect in summary.effects:
                if len(effect.chain) >= 8:
                    continue  # recursion depth cap
                if effect.param is None:
                    self._record(
                        replace(
                            effect,
                            site=node,
                            chain=(callee_label,) + effect.chain,
                        )
                    )
                    continue
                # Conditional effect: does our argument trigger it?
                if effect.param < len(node.args):
                    taint = arg_taints[effect.param]
                else:
                    continue
                if TAG_RNG_UNSEEDED in taint or taint & EFFECT_KINDS:
                    self._record(
                        replace(
                            effect,
                            site=node,
                            chain=(callee_label,) + effect.chain,
                            param=None,
                        )
                    )
                else:
                    for index in self._param_indexes(taint):
                        self._record(
                            replace(
                                effect,
                                site=node,
                                chain=(callee_label,) + effect.chain,
                                param=index,
                            )
                        )
        # Return taint: substitute param markers with argument taints.
        out = set()
        for tag in summary.returns:
            match = _PARAM_RE.match(tag)
            if match is None:
                out.add(tag)
                continue
            index = int(match.group(1))
            arg_taint = (
                arg_taints[index] if index < len(node.args) else _EMPTY
            )
            if tag.startswith("param-draw:"):
                if TAG_RNG_UNSEEDED in arg_taint:
                    out.add(KIND_RANDOM)
                else:
                    for sub in self._param_indexes(arg_taint):
                        out.add(_PARAM_DRAW.format(sub))
            else:
                out |= arg_taint
        return frozenset(out)
