"""Intra-module call graph: who calls whom, resolved syntactically.

mrlint's unit of analysis is one file (student submissions may not even
import), so the graph is deliberately module-local: edges resolve to
functions *defined in the same module* and everything else is an
external call the taint engine classifies by its dotted name.

Resolution covers the shapes student and engine code actually use:

- ``helper(...)`` — a module-level function (or a lambda bound to a
  module-level / function-local name);
- ``self.method(...)`` — a method on the enclosing class, searching
  same-module base classes in MRO-ish order;
- ``ClassName.method(...)`` and ``cls.method(...)``;
- ``ClassName(...)`` — the class's ``__init__``;
- bare references (``rdd.map(helper)``) via :meth:`CallGraph.lookup`,
  which the sparklite closure rules use to chase named callables.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field


def walk_own_nodes(fn: ast.AST):
    """Walk a function's own nodes, *excluding* nested function/lambda
    bodies — those are analysed as their own graph nodes."""
    roots = [fn.body] if isinstance(fn, ast.Lambda) else list(fn.body)
    stack: list[ast.AST] = list(roots)
    while stack:
        node = stack.pop()
        # A nested def can sit anywhere, including directly in the body
        # (as a root): never descend into one.
        if isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
        ):
            continue
        yield node
        for child in ast.iter_child_nodes(node):
            stack.append(child)


@dataclass
class FunctionInfo:
    """One function/method/lambda defined in the module."""

    qualname: str
    node: ast.AST  # FunctionDef | AsyncFunctionDef | Lambda
    klass: ast.ClassDef | None = None
    #: For lambdas: the name they were bound to (if any).
    bound_name: str | None = None

    @property
    def name(self) -> str:
        if isinstance(self.node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            return self.node.name
        return self.bound_name or "<lambda>"

    @property
    def params(self) -> list[str]:
        args = self.node.args
        return [a.arg for a in args.posonlyargs + args.args]

    @property
    def is_method(self) -> bool:
        return self.klass is not None

    def __hash__(self) -> int:
        return id(self.node)

    def __eq__(self, other) -> bool:
        return isinstance(other, FunctionInfo) and other.node is self.node


@dataclass
class CallSite:
    """One resolved intra-module call."""

    call: ast.Call
    caller: FunctionInfo | None  # None: module level
    callee: FunctionInfo


class CallGraph:
    """Index of a module's functions plus resolved call edges."""

    def __init__(self, tree: ast.Module):
        self.tree = tree
        #: module-level function name -> info
        self.module_functions: dict[str, FunctionInfo] = {}
        #: class name -> ClassDef
        self.classes: dict[str, ast.ClassDef] = {}
        #: (class name, method name) -> info
        self.methods: dict[tuple[str, str], FunctionInfo] = {}
        #: every FunctionInfo, in source order
        self.functions: list[FunctionInfo] = []
        #: id(ast node) -> enclosing FunctionInfo (for lambdas too)
        self._owner_of: dict[int, FunctionInfo] = {}
        self._index(tree)
        self.calls: list[CallSite] = []
        self._collect_calls()

    # ------------------------------------------------------------------
    # indexing
    def _index(self, tree: ast.Module) -> None:
        for stmt in tree.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                info = FunctionInfo(qualname=stmt.name, node=stmt)
                self.module_functions[stmt.name] = info
                self._register(info)
            elif isinstance(stmt, ast.ClassDef):
                self.classes[stmt.name] = stmt
                for member in stmt.body:
                    if isinstance(
                        member, (ast.FunctionDef, ast.AsyncFunctionDef)
                    ):
                        info = FunctionInfo(
                            qualname=f"{stmt.name}.{member.name}",
                            node=member,
                            klass=stmt,
                        )
                        self.methods[(stmt.name, member.name)] = info
                        self._register(info)
            elif isinstance(stmt, ast.Assign) and isinstance(
                stmt.value, ast.Lambda
            ):
                for target in stmt.targets:
                    if isinstance(target, ast.Name):
                        info = FunctionInfo(
                            qualname=target.id,
                            node=stmt.value,
                            bound_name=target.id,
                        )
                        self.module_functions[target.id] = info
                        self._register(info)
                        break
        # Nested named functions and name-bound lambdas inside functions.
        for outer in list(self.functions):
            if isinstance(outer.node, ast.Lambda):
                continue
            for node in ast.walk(outer.node):
                if node is outer.node:
                    continue
                if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    if id(node) in self._owner_of or any(
                        f.node is node for f in self.functions
                    ):
                        continue
                    info = FunctionInfo(
                        qualname=f"{outer.qualname}.<locals>.{node.name}",
                        node=node,
                        klass=outer.klass,
                    )
                    self._register(info)
                elif isinstance(node, ast.Assign) and isinstance(
                    node.value, ast.Lambda
                ):
                    for target in node.targets:
                        if isinstance(target, ast.Name):
                            info = FunctionInfo(
                                qualname=(
                                    f"{outer.qualname}.<locals>.{target.id}"
                                ),
                                node=node.value,
                                bound_name=target.id,
                            )
                            self._register(info)
                            break
        # Anonymous lambdas (inline arguments, comprehension filters...):
        # registered so closure rules can analyse them by node identity.
        for node in ast.walk(tree):
            if isinstance(node, ast.Lambda) and id(node) not in self._owner_of:
                self._register(
                    FunctionInfo(
                        qualname=f"<lambda@{node.lineno}>", node=node
                    )
                )

    def _register(self, info: FunctionInfo) -> None:
        self.functions.append(info)
        self._owner_of[id(info.node)] = info

    # ------------------------------------------------------------------
    # resolution
    def info_for(self, node: ast.AST) -> FunctionInfo | None:
        return self._owner_of.get(id(node))

    def _bases_of(self, klass: ast.ClassDef) -> list[ast.ClassDef]:
        out = []
        for base in klass.bases:
            name = base.id if isinstance(base, ast.Name) else None
            if name and name in self.classes:
                out.append(self.classes[name])
        return out

    def method_on(
        self, klass: ast.ClassDef, method: str
    ) -> FunctionInfo | None:
        """Find ``method`` on ``klass`` or its same-module ancestors."""
        seen: set[str] = set()
        queue = [klass]
        while queue:
            current = queue.pop(0)
            if current.name in seen:
                continue
            seen.add(current.name)
            info = self.methods.get((current.name, method))
            if info is not None:
                return info
            queue.extend(self._bases_of(current))
        return None

    def lookup(
        self, ref: ast.expr, caller: FunctionInfo | None
    ) -> FunctionInfo | None:
        """Resolve a *reference* (not a call) to a module function.

        Handles ``helper`` (module or local-lambda name), ``self.method``
        and ``Class.method`` attribute references, and inline lambdas.
        """
        if isinstance(ref, ast.Lambda):
            return self.info_for(ref)
        if isinstance(ref, ast.Name):
            # Function-local lambda bindings shadow module names.
            if caller is not None:
                local = self._local_lambda(caller, ref.id)
                if local is not None:
                    return local
            info = self.module_functions.get(ref.id)
            if info is not None:
                return info
            klass = self.classes.get(ref.id)
            if klass is not None:
                return self.method_on(klass, "__init__")
            return None
        if isinstance(ref, ast.Attribute) and isinstance(ref.value, ast.Name):
            receiver = ref.value.id
            if receiver in ("self", "cls") and caller is not None and caller.klass:
                return self.method_on(caller.klass, ref.attr)
            if receiver in self.classes:
                return self.method_on(self.classes[receiver], ref.attr)
        return None

    def _local_lambda(
        self, caller: FunctionInfo, name: str
    ) -> FunctionInfo | None:
        prefix = f"{caller.qualname}.<locals>."
        for info in self.functions:
            if info.bound_name == name and info.qualname == prefix + name:
                return info
            if (
                isinstance(info.node, (ast.FunctionDef, ast.AsyncFunctionDef))
                and info.qualname == prefix + name
            ):
                return info
        return None

    def resolve_call(
        self, call: ast.Call, caller: FunctionInfo | None
    ) -> FunctionInfo | None:
        return self.lookup(call.func, caller)

    # ------------------------------------------------------------------
    def _collect_calls(self) -> None:
        for info in self.functions:
            for node in walk_own_nodes(info.node):
                if isinstance(node, ast.Call):
                    callee = self.resolve_call(node, info)
                    if callee is not None:
                        self.calls.append(
                            CallSite(call=node, caller=info, callee=callee)
                        )

    def callees_of(self, info: FunctionInfo) -> list[CallSite]:
        return [site for site in self.calls if site.caller is info]

    def callers_of(self, info: FunctionInfo) -> list[CallSite]:
        return [site for site in self.calls if site.callee is info]
