"""``repro.analysis`` — mrlint: static analysis + a runtime sanitizer.

The correctness tooling the paper's teaching moments beg for (and PR 2
proved the engine itself needs).  Two halves:

- **Static** (:mod:`repro.analysis.linter`): AST rules over student
  map/reduce code (``MRJ0xx``, :mod:`repro.analysis.job_rules`) and
  over the engine itself (``MRE1xx``,
  :mod:`repro.analysis.engine_rules`), with ``# repro: lint-ok[RULE]``
  suppressions.  CLI: ``python -m repro lint [--self|--jobs|PATH]``.
- **Dynamic** (:mod:`repro.analysis.sanitizer`): enabled by
  ``MapReduceConfig(sanitize=True)``; catches input mutation, emit
  aliasing, and non-monoid combiners at run time, reporting through
  the job counters (group ``"Sanitizer"``).
"""

from repro.analysis.engine_rules import ENGINE_RULES, check_engine_rules
from repro.analysis.findings import (
    Finding,
    Rule,
    render_findings,
    render_json,
    sort_findings,
)
from repro.analysis.job_rules import JOB_RULES, check_job_rules
from repro.analysis.linter import (
    ALL_RULES,
    SELF_AUDIT_PACKAGES,
    lint_jobs,
    lint_paths,
    lint_self,
    lint_source,
)
from repro.analysis.sanitizer import SanitizingContext, TaskSanitizer, fingerprint

__all__ = [
    "ALL_RULES",
    "ENGINE_RULES",
    "Finding",
    "JOB_RULES",
    "Rule",
    "SELF_AUDIT_PACKAGES",
    "SanitizingContext",
    "TaskSanitizer",
    "check_engine_rules",
    "check_job_rules",
    "fingerprint",
    "lint_jobs",
    "lint_paths",
    "lint_self",
    "lint_source",
    "render_findings",
    "render_json",
    "sort_findings",
]
