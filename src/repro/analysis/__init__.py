"""``repro.analysis`` — mrlint: static analysis + a runtime sanitizer.

The correctness tooling the paper's teaching moments beg for (and PR 2
proved the engine itself needs).  Two halves:

- **Static** (:mod:`repro.analysis.linter`): dataflow-backed rules
  (CFG + reaching definitions + interprocedural nondeterminism taint,
  :mod:`repro.analysis.cfg` / :mod:`repro.analysis.dataflow` /
  :mod:`repro.analysis.callgraph` / :mod:`repro.analysis.taint`) over
  student map/reduce code (``MRJ0xx``,
  :mod:`repro.analysis.job_rules`), the engine itself (``MRE1xx``,
  :mod:`repro.analysis.engine_rules`), sparklite closures (``MRS2xx``,
  :mod:`repro.analysis.sparklite_rules`), and Hive UDFs /
  query-embedded Python (``MRH3xx``,
  :mod:`repro.analysis.hive_rules`), with ``# repro: lint-ok[RULE]``
  suppressions.  CLI: ``python -m repro lint [--self|--jobs|PATH]``
  with ``--json``, ``--format sarif`` and ``--baseline`` output modes.
- **Dynamic** (:mod:`repro.analysis.sanitizer`): enabled by
  ``MapReduceConfig(sanitize=True)``; catches input mutation, emit
  aliasing, and non-monoid combiners at run time, reporting through
  the job counters (group ``"Sanitizer"``).
"""

from repro.analysis.engine_rules import ENGINE_RULES, check_engine_rules
from repro.analysis.baseline import (
    filter_baseline,
    load_baseline,
    write_baseline,
)
from repro.analysis.findings import (
    Finding,
    Rule,
    render_findings,
    render_json,
    render_sarif,
    sort_findings,
)
from repro.analysis.hive_rules import HIVE_RULES, check_hive_rules
from repro.analysis.job_rules import JOB_RULES, check_job_rules
from repro.analysis.linter import (
    ALL_RULES,
    SELF_AUDIT_PACKAGES,
    lint_jobs,
    lint_paths,
    lint_pipelines,
    lint_self,
    lint_source,
)
from repro.analysis.sparklite_rules import (
    SPARKLITE_RULES,
    check_sparklite_rules,
)
from repro.analysis.sanitizer import SanitizingContext, TaskSanitizer, fingerprint

__all__ = [
    "ALL_RULES",
    "ENGINE_RULES",
    "Finding",
    "HIVE_RULES",
    "JOB_RULES",
    "Rule",
    "SELF_AUDIT_PACKAGES",
    "SPARKLITE_RULES",
    "SanitizingContext",
    "TaskSanitizer",
    "check_engine_rules",
    "check_hive_rules",
    "check_job_rules",
    "check_sparklite_rules",
    "filter_baseline",
    "fingerprint",
    "lint_jobs",
    "lint_paths",
    "lint_pipelines",
    "lint_self",
    "lint_source",
    "load_baseline",
    "render_findings",
    "render_json",
    "render_sarif",
    "sort_findings",
    "write_baseline",
]
