"""Control-flow graphs for lint-time dataflow analysis.

mrlint 1.x walked raw ASTs, which made every rule *path-insensitive*:
``random.random()`` after an early ``return`` looked the same as one on
the hot path, and a sanitising ``sorted(...)`` could not "kill" the
hash-order taint it provably removes.  This module builds a classic
basic-block CFG per function so :mod:`repro.analysis.dataflow` can run
worklist analyses (reaching definitions, taint propagation) over it.

Design notes
============

- One :class:`CFG` per ``FunctionDef``/``AsyncFunctionDef``/``Lambda``.
  Nested functions are *not* inlined — they get their own CFGs and the
  call graph stitches them together.
- Blocks hold whole statements.  Expression-level ordering inside a
  statement is handled by the analyses (Python evaluates left-to-right,
  and our lattices are coarse enough not to care).
- ``try`` is modelled conservatively: the body may jump to any handler
  after *any* of its statements, and ``finally`` dominates every exit.
  That over-approximates flow, which is the safe direction for taint.
- ``break``/``continue``/``return``/``raise`` end their block and wire
  the edge the statement dictates; code after them is unreachable and
  lands in a block with no predecessors (analyses simply never reach
  it, matching runtime truth).

The graphs are tiny (student jobs, engine modules), so no effort is
spent on compaction — empty blocks are pruned at the end and that is
all the optimisation this needs.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field


@dataclass
class Block:
    """A straight-line run of statements with single entry/exit."""

    index: int
    statements: list[ast.stmt] = field(default_factory=list)
    successors: list[int] = field(default_factory=list)
    predecessors: list[int] = field(default_factory=list)

    def add_successor(self, other: "Block") -> None:
        if other.index not in self.successors:
            self.successors.append(other.index)
        if self.index not in other.predecessors:
            other.predecessors.append(self.index)


class CFG:
    """The control-flow graph of one function (or lambda)."""

    def __init__(self, name: str):
        self.name = name
        self.blocks: list[Block] = []
        self.entry = self.new_block()
        self.exit = self.new_block()

    def new_block(self) -> Block:
        block = Block(index=len(self.blocks))
        self.blocks.append(block)
        return block

    # ------------------------------------------------------------------
    def reachable_blocks(self) -> list[Block]:
        """Blocks reachable from entry, in a deterministic BFS order."""
        seen = {self.entry.index}
        order = [self.entry]
        frontier = [self.entry]
        while frontier:
            nxt: list[Block] = []
            for block in frontier:
                for succ in block.successors:
                    if succ not in seen:
                        seen.add(succ)
                        order.append(self.blocks[succ])
                        nxt.append(self.blocks[succ])
            frontier = nxt
        return order

    def statements_in_flow_order(self) -> list[ast.stmt]:
        """Every reachable statement, blocks in BFS order."""
        out: list[ast.stmt] = []
        for block in self.reachable_blocks():
            out.extend(block.statements)
        return out

    def render(self) -> str:
        """Debug rendering (used by tests and DESIGN.md examples)."""
        lines = [f"cfg {self.name}: {len(self.blocks)} blocks"]
        for block in self.blocks:
            head = f"  B{block.index}"
            if block.index == self.entry.index:
                head += " (entry)"
            if block.index == self.exit.index:
                head += " (exit)"
            stmts = ", ".join(
                type(stmt).__name__ for stmt in block.statements
            )
            succ = ", ".join(f"B{s}" for s in block.successors)
            lines.append(f"{head}: [{stmts}] -> [{succ}]")
        return "\n".join(lines)


class _Builder:
    """Recursive statement-list walker producing the block structure."""

    def __init__(self, cfg: CFG):
        self.cfg = cfg
        #: Stack of (continue-target, break-target) block pairs.
        self.loops: list[tuple[Block, Block]] = []
        #: Innermost enclosing handler-entry blocks (try bodies may jump
        #: there after any statement).
        self.handlers: list[list[Block]] = []

    # ------------------------------------------------------------------
    def build(self, body: list[ast.stmt]) -> None:
        tail = self._body(body, self.cfg.entry)
        if tail is not None:
            tail.add_successor(self.cfg.exit)

    def _body(self, body: list[ast.stmt], current: Block) -> Block | None:
        """Thread ``body`` starting in ``current``; return the block the
        flow falls out of (None when every path left — return/raise/...)."""
        for stmt in body:
            if current is None:
                # Unreachable code after a jump: park it in a fresh
                # predecessor-less block so its statements still exist.
                current = self.cfg.new_block()
            current = self._statement(stmt, current)
        return current

    # ------------------------------------------------------------------
    def _statement(self, stmt: ast.stmt, current: Block) -> Block | None:
        if isinstance(stmt, ast.If):
            return self._if(stmt, current)
        if isinstance(stmt, (ast.While, ast.For, ast.AsyncFor)):
            return self._loop(stmt, current)
        if isinstance(stmt, (ast.Try, getattr(ast, "TryStar", ast.Try))):
            return self._try(stmt, current)
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            current.statements.append(_HeaderMarker.wrap(stmt))
            return self._body(stmt.body, current)
        if isinstance(stmt, (ast.Return, ast.Raise)):
            current.statements.append(stmt)
            self._edge_to_handlers(current)
            current.add_successor(self.cfg.exit)
            return None
        if isinstance(stmt, ast.Break):
            current.statements.append(stmt)
            if self.loops:
                current.add_successor(self.loops[-1][1])
            return None
        if isinstance(stmt, ast.Continue):
            current.statements.append(stmt)
            if self.loops:
                current.add_successor(self.loops[-1][0])
            return None
        # Plain statement (also covers nested FunctionDef/ClassDef —
        # their bodies get their own CFGs via build_cfgs()).
        current.statements.append(stmt)
        self._edge_to_handlers(current)
        return current

    def _edge_to_handlers(self, block: Block) -> None:
        """Inside a try body, any statement may raise into a handler."""
        if self.handlers:
            for handler_block in self.handlers[-1]:
                block.add_successor(handler_block)

    # ------------------------------------------------------------------
    def _if(self, stmt: ast.If, current: Block) -> Block | None:
        current.statements.append(_HeaderMarker.wrap(stmt))
        then_block = self.cfg.new_block()
        current.add_successor(then_block)
        join: Block | None = None
        then_tail = self._body(stmt.body, then_block)
        if stmt.orelse:
            else_block = self.cfg.new_block()
            current.add_successor(else_block)
            else_tail = self._body(stmt.orelse, else_block)
        else:
            else_tail = current
        if then_tail is None and else_tail is None:
            return None
        join = self.cfg.new_block()
        if then_tail is not None:
            then_tail.add_successor(join)
        if else_tail is not None:
            else_tail.add_successor(join)
        return join

    def _loop(self, stmt, current: Block) -> Block:
        header = self.cfg.new_block()
        header.statements.append(_HeaderMarker.wrap(stmt))
        current.add_successor(header)
        body_block = self.cfg.new_block()
        after = self.cfg.new_block()
        header.add_successor(body_block)
        header.add_successor(after)
        self.loops.append((header, after))
        body_tail = self._body(stmt.body, body_block)
        self.loops.pop()
        if body_tail is not None:
            body_tail.add_successor(header)
        if stmt.orelse:
            else_tail = self._body(stmt.orelse, after)
            if else_tail is not None and else_tail is not after:
                else_tail.add_successor(after)
        return after

    def _try(self, stmt: ast.Try, current: Block) -> Block | None:
        handler_blocks = [self.cfg.new_block() for _ in stmt.handlers]
        self.handlers.append(handler_blocks)
        body_tail = self._body(stmt.body, current)
        self.handlers.pop()
        tails: list[Block] = []
        if stmt.orelse:
            if body_tail is not None:
                body_tail = self._body(stmt.orelse, body_tail)
        if body_tail is not None:
            tails.append(body_tail)
        for handler, block in zip(stmt.handlers, handler_blocks):
            block.statements.append(_HeaderMarker.wrap(handler))
            handler_tail = self._body(handler.body, block)
            if handler_tail is not None:
                tails.append(handler_tail)
        if stmt.finalbody:
            final_block = self.cfg.new_block()
            for tail in tails:
                tail.add_successor(final_block)
            if not tails:
                # Every path raised/returned; finally still runs.
                current.add_successor(final_block)
            return self._body(stmt.finalbody, final_block)
        if not tails:
            return None
        join = self.cfg.new_block()
        for tail in tails:
            tail.add_successor(join)
        return join


class _HeaderMarker:
    """Compound-statement headers enter the CFG as the statement itself.

    Analyses that only look at *expressions* (taint, reaching defs) need
    the header's test/iter expressions in flow order but must not
    descend into the compound body twice.  We record the original node;
    :func:`header_expressions` yields just the header-owned parts.
    """

    @staticmethod
    def wrap(stmt: ast.stmt) -> ast.stmt:
        stmt._mrlint_header = True  # type: ignore[attr-defined]
        return stmt


def is_header(stmt: ast.stmt) -> bool:
    return getattr(stmt, "_mrlint_header", False)


def header_expressions(stmt: ast.AST) -> list[ast.AST]:
    """The expressions a compound-statement header evaluates itself."""
    if isinstance(stmt, ast.If):
        return [stmt.test]
    if isinstance(stmt, ast.While):
        return [stmt.test]
    if isinstance(stmt, (ast.For, ast.AsyncFor)):
        return [stmt.iter, stmt.target]
    if isinstance(stmt, (ast.With, ast.AsyncWith)):
        return [item.context_expr for item in stmt.items]
    if isinstance(stmt, ast.ExceptHandler):
        return [stmt.type] if stmt.type is not None else []
    return []


def build_cfg(fn: ast.AST, name: str | None = None) -> CFG:
    """Build the CFG of one function, lambda, or module body."""
    if isinstance(fn, ast.Lambda):
        cfg = CFG(name or "<lambda>")
        expr = ast.Expr(value=fn.body)
        ast.copy_location(expr, fn.body)
        _Builder(cfg).build([expr])
        return cfg
    if isinstance(fn, ast.Module):
        cfg = CFG(name or "<module>")
        _Builder(cfg).build(fn.body)
        return cfg
    cfg = CFG(name or fn.name)
    _Builder(cfg).build(fn.body)
    return cfg


def build_cfgs(tree: ast.Module) -> dict[str, CFG]:
    """CFGs for every function in a module, keyed by qualified name.

    Methods key as ``Class.method``; nested functions as
    ``outer.<locals>.inner`` (matching ``__qualname__``).
    """
    out: dict[str, CFG] = {}

    def visit(node: ast.AST, prefix: str) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qualname = prefix + child.name
                out[qualname] = build_cfg(child, qualname)
                visit(child, qualname + ".<locals>.")
            elif isinstance(child, ast.ClassDef):
                visit(child, prefix + child.name + ".")
            else:
                visit(child, prefix)

    visit(tree, "")
    return out
