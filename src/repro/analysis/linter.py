"""The mrlint driver: walk files, run rule families, apply suppressions.

Entry points
============

- :func:`lint_paths` — lint explicit files/directories (default: the
  student-facing job rules; pass ``families`` to change);
- :func:`lint_jobs` — the reference jobs (``repro.jobs``) plus the
  repository's ``examples/`` directory, job rules;
- :func:`lint_self` — the engine auditing itself: ``repro.hdfs``,
  ``repro.mapreduce``, ``repro.faults``, ``repro.sim``, engine rules;
- :func:`lint_source` — one in-memory source string (tests, notebooks).

Suppressions
============

A finding is suppressed by a comment on the flagged line, or on a
comment-only line directly above it::

    extras = sorted(meta.locations)  # repro: lint-ok[MRE101] audited: sorted

    # repro: lint-ok[MRJ006] deliberate anti-pattern for the assignment
    text = context.read_side_file(path)

``lint-ok[*]`` suppresses every rule on that line.  The justification
text after the bracket is required by convention (CI diffs review it),
not enforced.
"""

from __future__ import annotations

import ast
import re
from pathlib import Path

from repro.analysis.engine_rules import ENGINE_RULES, check_engine_rules
from repro.analysis.findings import Finding, sort_findings
from repro.analysis.job_rules import JOB_RULES, check_job_rules
from repro.util.errors import ConfigError

#: rule-id -> Rule, both families.
ALL_RULES = {**JOB_RULES, **ENGINE_RULES}

_SUPPRESS_RE = re.compile(r"#\s*repro:\s*lint-ok\[([A-Za-z0-9*,\s]+)\]")
_COMMENT_ONLY_RE = re.compile(r"^\s*#")

_FAMILY_CHECKERS = {
    "jobs": check_job_rules,
    "engine": check_engine_rules,
}

#: The engine packages `--self` audits (relative to the repro package).
SELF_AUDIT_PACKAGES = ("hdfs", "mapreduce", "faults", "sim")


def _suppressions_by_line(source: str) -> dict[int, set[str]]:
    """Map line number -> rule ids suppressed *for that line*.

    A marker covers its own line; a marker on a comment-only line also
    covers the next non-comment line (so long multi-line suppression
    blocks stack naturally).
    """
    covered: dict[int, set[str]] = {}
    pending: set[str] = set()
    for lineno, text in enumerate(source.splitlines(), start=1):
        match = _SUPPRESS_RE.search(text)
        rules_here: set[str] = set()
        if match:
            rules_here = {
                token.strip()
                for token in match.group(1).split(",")
                if token.strip()
            }
        if _COMMENT_ONLY_RE.match(text):
            pending |= rules_here
            continue
        applicable = rules_here | pending
        if applicable:
            covered[lineno] = applicable
        pending = set()
    return covered


def _apply_suppressions(
    findings: list[Finding], source: str
) -> list[Finding]:
    covered = _suppressions_by_line(source)
    kept = []
    for finding in findings:
        rules = covered.get(finding.line, set())
        if "*" in rules or finding.rule in rules:
            continue
        kept.append(finding)
    return kept


def lint_source(
    source: str,
    path: str = "<string>",
    families: tuple[str, ...] = ("jobs",),
) -> list[Finding]:
    """Lint one source string; raises ConfigError on syntax errors."""
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        raise ConfigError(f"{path}: cannot lint, not valid Python: {exc}")
    findings: list[Finding] = []
    for family in families:
        try:
            checker = _FAMILY_CHECKERS[family]
        except KeyError:
            raise ConfigError(
                f"unknown rule family {family!r} "
                f"(choose from {sorted(_FAMILY_CHECKERS)})"
            )
        findings.extend(checker(path, tree))
    return sort_findings(_apply_suppressions(findings, source))


def _iter_python_files(target: Path):
    if target.is_file():
        yield target
    elif target.is_dir():
        yield from sorted(target.rglob("*.py"))
    else:
        raise ConfigError(f"lint target does not exist: {target}")


def lint_paths(
    paths: list[str | Path],
    families: tuple[str, ...] = ("jobs",),
) -> list[Finding]:
    """Lint explicit files or directories with the given rule families."""
    findings: list[Finding] = []
    for raw in paths:
        for file in _iter_python_files(Path(raw)):
            source = file.read_text(encoding="utf-8")
            findings.extend(lint_source(source, str(file), families))
    return sort_findings(findings)


def _repro_root() -> Path:
    import repro

    return Path(repro.__file__).resolve().parent


def lint_self() -> list[Finding]:
    """Audit the engine itself with the MRE1xx rules."""
    root = _repro_root()
    targets = [root / pkg for pkg in SELF_AUDIT_PACKAGES]
    return lint_paths(targets, families=("engine",))


def lint_jobs() -> list[Finding]:
    """Lint the reference jobs and the repository's examples/ directory."""
    root = _repro_root()
    targets: list[Path] = [root / "jobs"]
    # src/repro -> repo root; examples/ only exists in a source checkout.
    examples = root.parents[1] / "examples"
    if examples.is_dir():
        targets.append(examples)
    return lint_paths(targets, families=("jobs",))
