"""The mrlint driver: walk files, run rule families, apply suppressions.

Entry points
============

- :func:`lint_paths` — lint explicit files/directories (default: the
  student-facing job rules; pass ``families`` to change);
- :func:`lint_jobs` — the reference jobs (``repro.jobs``) plus the
  repository's ``examples/`` directory, job rules;
- :func:`lint_self` — the engine auditing itself: ``repro.hdfs``,
  ``repro.mapreduce``, ``repro.faults``, ``repro.sim``, engine rules;
- :func:`lint_source` — one in-memory source string (tests, notebooks).

Suppressions
============

A finding is suppressed by a comment on the flagged line, or on a
comment-only line directly above it::

    extras = sorted(meta.locations)  # repro: lint-ok[MRE101] audited: sorted

    # repro: lint-ok[MRJ006] deliberate anti-pattern for the assignment
    text = context.read_side_file(path)

Matching is statement-aware: the marker covers every line of the
statement it attaches to, so a comment above a decorated function
reaches the ``def`` line, and a trailing marker on any line of a
multi-line call covers the whole call.  For compound statements the
marker covers the header only, never the nested body.

``lint-ok[*]`` suppresses every rule on that line.  The justification
text after the bracket is required by convention (CI diffs review it),
not enforced.
"""

from __future__ import annotations

import ast
import re
from pathlib import Path

from repro.analysis.engine_rules import ENGINE_RULES, check_engine_rules
from repro.analysis.findings import Finding, sort_findings
from repro.analysis.hive_rules import HIVE_RULES, check_hive_rules
from repro.analysis.job_rules import JOB_RULES, check_job_rules
from repro.analysis.sparklite_rules import (
    SPARKLITE_RULES,
    check_sparklite_rules,
)
from repro.util.errors import ConfigError

#: rule-id -> Rule, all families.
ALL_RULES = {
    **JOB_RULES,
    **ENGINE_RULES,
    **SPARKLITE_RULES,
    **HIVE_RULES,
}

_SUPPRESS_RE = re.compile(r"#\s*repro:\s*lint-ok\[([A-Za-z0-9*,\s]+)\]")
_COMMENT_ONLY_RE = re.compile(r"^\s*#")

_FAMILY_CHECKERS = {
    "jobs": check_job_rules,
    "engine": check_engine_rules,
    "sparklite": check_sparklite_rules,
    "hive": check_hive_rules,
}

#: The engine packages `--self` audits (relative to the repro package).
SELF_AUDIT_PACKAGES = ("hdfs", "mapreduce", "faults", "sim", "sparklite", "hive")


def _statement_ranges(tree: ast.AST) -> list[tuple[int, int, int]]:
    """``(start, header_end, end)`` line triples, one per statement.

    ``start`` includes decorator lines (a marker above ``@functools.cache``
    reaches the ``def`` it decorates); ``header_end`` is the last line
    before the first nested statement, so for a simple statement it equals
    ``end`` (the whole statement, however many lines it wraps across) and
    for a compound statement it stops at the header — a marker above a
    ``def`` must not silence the entire body.
    """
    ranges = []
    for node in ast.walk(tree):
        if not isinstance(node, (ast.stmt, ast.excepthandler)):
            continue
        start = node.lineno
        for deco in getattr(node, "decorator_list", []):
            start = min(start, deco.lineno)
        end = node.end_lineno or node.lineno
        children: list[ast.AST] = []
        for field in ("body", "orelse", "finalbody", "handlers"):
            children.extend(getattr(node, field, None) or [])
        if children:
            header_end = min(child.lineno for child in children) - 1
        else:
            header_end = end
        ranges.append((start, header_end, end))
    return sorted(ranges)


def _marker_target(
    ranges: list[tuple[int, int, int]], lineno: int, comment_only: bool
) -> tuple[int, int, int] | None:
    """The statement a suppression marker on ``lineno`` applies to.

    A comment-only marker covers the next statement to *start* after it;
    a trailing marker covers the innermost statement whose effective
    lines (start..header_end) contain it.
    """
    if comment_only:
        best = None
        for rng in ranges:
            if rng[0] > lineno and (best is None or rng[0] < best[0]):
                best = rng
        return best
    best = None
    for rng in ranges:
        if rng[0] <= lineno <= rng[1] and (best is None or rng[0] >= best[0]):
            best = rng
    return best


def _suppressions_by_line(
    source: str, tree: ast.AST | None = None
) -> dict[int, set[str]]:
    """Map line number -> rule ids suppressed *for that line*.

    Statement-aware: a marker (trailing or on the comment line above)
    covers every line of the statement it attaches to, so findings
    anchored mid-way through a multi-line call, or on the ``def`` line
    of a decorated function, are reached.  Without a tree (unparsable
    source never gets here, but be safe) markers cover their own line
    and the next non-comment line, as before.
    """
    ranges = _statement_ranges(tree) if tree is not None else []
    covered: dict[int, set[str]] = {}

    def cover(lines, rules: set[str]) -> None:
        for ln in lines:
            covered.setdefault(ln, set()).update(rules)

    pending: set[str] = set()
    for lineno, text in enumerate(source.splitlines(), start=1):
        match = _SUPPRESS_RE.search(text)
        comment_only = bool(_COMMENT_ONLY_RE.match(text))
        rules_here: set[str] = set()
        if match:
            rules_here = {
                token.strip()
                for token in match.group(1).split(",")
                if token.strip()
            }
        if rules_here:
            cover([lineno], rules_here)
            target = _marker_target(ranges, lineno, comment_only)
            if target is not None:
                start, header_end, _end = target
                cover(range(start, header_end + 1), rules_here)
        # Line-based fallback keeps stacked comment blocks working even
        # when the statement table has no entry (e.g. markers trailing
        # an `else:` line).
        if comment_only:
            pending |= rules_here
            continue
        if pending:
            cover([lineno], pending)
        pending = set()
    return covered


def _apply_suppressions(
    findings: list[Finding], source: str, tree: ast.AST | None = None
) -> list[Finding]:
    covered = _suppressions_by_line(source, tree)
    kept = []
    for finding in findings:
        rules = covered.get(finding.line, set())
        if "*" in rules or finding.rule in rules:
            continue
        kept.append(finding)
    return kept


def lint_source(
    source: str,
    path: str = "<string>",
    families: tuple[str, ...] = ("jobs",),
) -> list[Finding]:
    """Lint one source string; raises ConfigError on syntax errors."""
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        raise ConfigError(f"{path}: cannot lint, not valid Python: {exc}")
    findings: list[Finding] = []
    for family in families:
        try:
            checker = _FAMILY_CHECKERS[family]
        except KeyError:
            raise ConfigError(
                f"unknown rule family {family!r} "
                f"(choose from {sorted(_FAMILY_CHECKERS)})"
            )
        findings.extend(checker(path, tree))
    return sort_findings(_apply_suppressions(findings, source, tree))


def _iter_python_files(target: Path):
    if target.is_file():
        yield target
    elif target.is_dir():
        yield from sorted(target.rglob("*.py"))
    else:
        raise ConfigError(f"lint target does not exist: {target}")


def lint_paths(
    paths: list[str | Path],
    families: tuple[str, ...] = ("jobs",),
) -> list[Finding]:
    """Lint explicit files or directories with the given rule families."""
    findings: list[Finding] = []
    for raw in paths:
        for file in _iter_python_files(Path(raw)):
            source = file.read_text(encoding="utf-8")
            findings.extend(lint_source(source, str(file), families))
    return sort_findings(findings)


def _repro_root() -> Path:
    import repro

    return Path(repro.__file__).resolve().parent


def lint_self() -> list[Finding]:
    """Audit the engine itself with the MRE1xx rules."""
    root = _repro_root()
    targets = [root / pkg for pkg in SELF_AUDIT_PACKAGES]
    return lint_paths(targets, families=("engine",))


def lint_jobs() -> list[Finding]:
    """Lint the reference jobs and the repository's examples/ directory."""
    root = _repro_root()
    targets: list[Path] = [root / "jobs"]
    # src/repro -> repo root; examples/ only exists in a source checkout.
    examples = root.parents[1] / "examples"
    if examples.is_dir():
        targets.append(examples)
    return lint_paths(targets, families=("jobs",))


def lint_pipelines() -> list[Finding]:
    """Lint the examples/ pipelines with the sparklite + hive rules.

    The reference RDD pipelines and HiveLite scripts are held to the
    same bar as the reference jobs: clean under MRS2xx/MRH3xx.
    """
    root = _repro_root()
    examples = root.parents[1] / "examples"
    if not examples.is_dir():
        return []
    return lint_paths([examples], families=("sparklite", "hive"))
