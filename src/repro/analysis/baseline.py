"""Lint baselines: adopt a rule over legacy code without a flag day.

The "adopt-a-rule" workflow (docs/ADOPTING_RULES.md): when a new rule
lands against a codebase with pre-existing violations, record them once
with ``repro lint --write-baseline mrlint-baseline.json ...`` and check
the file in.  CI then runs with ``--baseline mrlint-baseline.json`` and
fails only on *new* findings, so the backlog burns down incrementally
instead of blocking every unrelated change.

Entries are keyed by ``(rule, path, message)`` — deliberately *not* by
line number, so edits elsewhere in a file don't resurrect baselined
findings when they shift.  Messages embed names (class, attribute,
callee), which keeps the key stable yet specific.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.analysis.findings import Finding, sort_findings
from repro.util.errors import ConfigError

#: Bumped if the on-disk shape ever changes incompatibly.
BASELINE_VERSION = 1


def _key(finding: Finding) -> tuple[str, str, str]:
    return (finding.rule, finding.path, finding.message)


def write_baseline(findings: list[Finding], path: str | Path) -> int:
    """Record the findings at ``path``; returns the entry count."""
    entries = []
    seen: set[tuple[str, str, str]] = set()
    for finding in sort_findings(findings):
        key = _key(finding)
        if key in seen:
            continue
        seen.add(key)
        entries.append(
            {
                "rule": finding.rule,
                "path": finding.path,
                "message": finding.message,
            }
        )
    payload = {"version": BASELINE_VERSION, "findings": entries}
    Path(path).write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )
    return len(entries)


def load_baseline(path: str | Path) -> set[tuple[str, str, str]]:
    """Read a baseline file back into a set of suppression keys."""
    target = Path(path)
    if not target.is_file():
        raise ConfigError(f"baseline file does not exist: {target}")
    try:
        payload = json.loads(target.read_text(encoding="utf-8"))
    except json.JSONDecodeError as exc:
        raise ConfigError(f"{target}: not valid JSON: {exc}")
    if not isinstance(payload, dict) or "findings" not in payload:
        raise ConfigError(f"{target}: not a mrlint baseline (no findings key)")
    if payload.get("version") != BASELINE_VERSION:
        raise ConfigError(
            f"{target}: unsupported baseline version "
            f"{payload.get('version')!r} (expected {BASELINE_VERSION})"
        )
    keys: set[tuple[str, str, str]] = set()
    for entry in payload["findings"]:
        try:
            keys.add((entry["rule"], entry["path"], entry["message"]))
        except (TypeError, KeyError):
            raise ConfigError(f"{target}: malformed baseline entry: {entry!r}")
    return keys


def filter_baseline(
    findings: list[Finding], baseline: set[tuple[str, str, str]]
) -> list[Finding]:
    """Drop findings already recorded in the baseline; keep the new ones."""
    return [f for f in findings if _key(f) not in baseline]
