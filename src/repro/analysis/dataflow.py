"""Worklist dataflow over :mod:`repro.analysis.cfg` graphs.

Two layers:

- :func:`solve_forward` — the generic monotone-framework engine.  A
  client supplies a transfer function over whole blocks and a join; the
  solver iterates to fixpoint.  Block order and join inputs are always
  visited in deterministic (index) order, so analysis results — and
  therefore lint output — are byte-identical run to run, which the
  property suite asserts under varying ``PYTHONHASHSEED``.
- :class:`ReachingDefinitions` — the classic gen/kill instance: which
  assignments of each name may reach each program point.  The taint
  engine uses it to answer "was ``self.rng`` ever assigned an unseeded
  RNG on a path reaching this call?" instead of PR 3's "does the text
  mention random anywhere".
"""

from __future__ import annotations

import ast
from typing import Callable, TypeVar

from repro.analysis.cfg import CFG, Block, header_expressions, is_header

State = TypeVar("State")


def solve_forward(
    cfg: CFG,
    transfer: Callable[[Block, State], State],
    join: Callable[[list[State]], State],
    initial: State,
    bottom: State,
    equal: Callable[[State, State], bool] = lambda a, b: a == b,
    max_iterations: int = 10_000,
) -> dict[int, tuple[State, State]]:
    """Run a forward analysis to fixpoint.

    Returns ``{block index: (state-in, state-out)}``.  ``initial`` seeds
    the entry block; ``bottom`` is the no-information state joined at
    blocks whose predecessors have not been visited yet.
    """
    ins: dict[int, State] = {cfg.entry.index: initial}
    outs: dict[int, State] = {}
    worklist = [block.index for block in cfg.reachable_blocks()]
    iterations = 0
    while worklist:
        iterations += 1
        if iterations > max_iterations:  # pragma: no cover - safety valve
            break
        index = worklist.pop(0)
        block = cfg.blocks[index]
        if block.predecessors:
            preds = [
                outs[p] for p in sorted(block.predecessors) if p in outs
            ]
            state_in = join(preds) if preds else bottom
        else:
            state_in = ins.get(index, initial if index == cfg.entry.index else bottom)
        ins[index] = state_in
        state_out = transfer(block, state_in)
        if index in outs and equal(outs[index], state_out):
            continue
        outs[index] = state_out
        for succ in block.successors:
            if succ not in worklist:
                worklist.append(succ)
    return {
        index: (ins.get(index, bottom), outs.get(index, bottom))
        for index in sorted(set(ins) | set(outs))
    }


# --------------------------------------------------------------------------
# reaching definitions


def _assigned_names(stmt: ast.stmt) -> list[tuple[str, ast.AST]]:
    """Names (re)bound by a statement, with the binding node."""
    names: list[tuple[str, ast.AST]] = []

    def targets_of(node: ast.AST) -> list[ast.expr]:
        if isinstance(node, ast.Assign):
            return list(node.targets)
        if isinstance(node, (ast.AugAssign, ast.AnnAssign)):
            return [node.target] if node.target is not None else []
        if isinstance(node, (ast.For, ast.AsyncFor)):
            return [node.target]
        if isinstance(node, (ast.With, ast.AsyncWith)):
            return [
                item.optional_vars
                for item in node.items
                if item.optional_vars is not None
            ]
        return []

    def flatten(target: ast.expr) -> None:
        if isinstance(target, ast.Name):
            names.append((target.id, target))
        elif isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                flatten(elt)
        elif isinstance(target, ast.Starred):
            flatten(target.value)
        elif isinstance(target, ast.Attribute):
            # self.x = ... binds an attribute "name" of the receiver;
            # modelled as the dotted string so taint can track it.
            base = target.value
            if isinstance(base, ast.Name):
                names.append((f"{base.id}.{target.attr}", target))

    for target in targets_of(stmt):
        flatten(target)
    if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
        names.append((stmt.name, stmt))
    # Walrus targets anywhere in the statement's expressions.
    walk_roots: list[ast.AST]
    if is_header(stmt):
        walk_roots = list(header_expressions(stmt))
    else:
        walk_roots = [stmt]
    for root in walk_roots:
        if root is None:
            continue
        for node in ast.walk(root):
            if isinstance(node, ast.NamedExpr) and isinstance(
                node.target, ast.Name
            ):
                names.append((node.target.id, node.target))
    return names


class Definition:
    """One binding site of one name."""

    __slots__ = ("name", "node", "stmt")

    def __init__(self, name: str, node: ast.AST, stmt: ast.stmt):
        self.name = name
        self.node = node
        self.stmt = stmt

    @property
    def line(self) -> int:
        return getattr(self.node, "lineno", 0)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Definition({self.name!r}@{self.line})"


class ReachingDefinitions:
    """Which definitions of each name may reach each block entry."""

    def __init__(self, cfg: CFG):
        self.cfg = cfg
        #: Definitions by the statement that created them, in block order.
        self.defs_by_stmt: dict[int, list[Definition]] = {}
        all_defs: list[Definition] = []
        for block in cfg.blocks:
            for stmt in block.statements:
                defs = [
                    Definition(name, node, stmt)
                    for name, node in _assigned_names(stmt)
                ]
                if defs:
                    self.defs_by_stmt[id(stmt)] = defs
                    all_defs.extend(defs)
        self._all = all_defs
        self._solution = solve_forward(
            cfg,
            transfer=self._transfer,
            join=self._join,
            initial={},
            bottom={},
            equal=self._states_equal,
        )

    # -- lattice: name -> tuple of Definitions (ordered, deduped) -------
    @staticmethod
    def _states_equal(a: dict, b: dict) -> bool:
        if set(a) != set(b):
            return False
        return all(
            {id(d) for d in a[k]} == {id(d) for d in b[k]} for k in a
        )

    @staticmethod
    def _join(states: list[dict]) -> dict:
        merged: dict[str, list[Definition]] = {}
        for state in states:
            for name, defs in state.items():
                bucket = merged.setdefault(name, [])
                known = {id(d) for d in bucket}
                for definition in defs:
                    if id(definition) not in known:
                        bucket.append(definition)
                        known.add(id(definition))
        return merged

    def _transfer(self, block, state: dict) -> dict:
        state = {name: list(defs) for name, defs in state.items()}
        for stmt in block.statements:
            for definition in self.defs_by_stmt.get(id(stmt), []):
                if isinstance(definition.stmt, ast.AugAssign):
                    # x += 1 reads the old definition too: accumulate.
                    state.setdefault(definition.name, []).append(definition)
                else:
                    state[definition.name] = [definition]
        return state

    # ------------------------------------------------------------------
    def reaching_in(self, block_index: int) -> dict[str, list[Definition]]:
        return self._solution.get(block_index, ({}, {}))[0]

    def reaching_out(self, block_index: int) -> dict[str, list[Definition]]:
        return self._solution.get(block_index, ({}, {}))[1]

    def definitions_of(self, name: str) -> list[Definition]:
        return [d for d in self._all if d.name == name]
