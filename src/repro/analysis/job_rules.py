"""Job rules (MRJ0xx): lint user/student Mapper/Reducer/Combiner code.

These encode the course's recurring map/reduce bugs — the ones that
"work on my laptop" and melt down at cluster scale or grade time:

==========  ==========================================================
``MRJ001``  nondeterministic call (unseeded random / wall clock) in a
            task method — re-executed attempts diverge
``MRJ002``  mutation of a map/reduce *input* (key, value, values) —
            the framework may re-serve or re-sort those objects
``MRJ003``  emitting an unhashable key (list/dict/set literal) —
            partitioners and group-by need hashable, ordered keys
``MRJ004``  emitting an object the method also mutates — the Context
            holds a reference, not a copy, so later mutation rewrites
            already-emitted pairs
``MRJ005``  instance/global state carried across ``map()``/``reduce()``
            calls without the in-mapper-combining idiom (no
            ``cleanup()`` flush) — silently drops data
``MRJ006``  per-call side-file read (the movie-genres anti-pattern):
            ``read_side_file`` outside ``setup``/``cleanup``
``MRJ007``  combiner that is not a monoid (computes a ratio/average or
            re-formats values) — answers change with combine rounds
==========  ==========================================================

Detection works from the AST alone (student files may not even import)
— but since mrlint 2.0 it is no longer per-function: MRJ001, MRJ005 and
MRJ007 run on the shared analysis core (:mod:`repro.analysis.taint`,
:mod:`repro.analysis.callgraph`), so nondeterminism, cross-call state
and non-monoid arithmetic are caught even when the student factors them
into helper functions or methods — and *not* flagged when the dataflow
engine can prove the helper draws from an RNG seeded out of the job
configuration.
"""

from __future__ import annotations

import ast

from repro.analysis.callgraph import walk_own_nodes
from repro.analysis.findings import Finding, Rule
from repro.analysis.taint import EFFECT_KINDS, ModuleTaint

JOB_RULES = {
    "MRJ001": Rule(
        id="MRJ001",
        family="jobs",
        severity="error",
        title="nondeterministic call in task method",
        hint="seed randomness in setup() from a job parameter, or take "
        "timestamps out of map/reduce: re-executed attempts (speculation, "
        "failure recovery) must produce identical output",
    ),
    "MRJ002": Rule(
        id="MRJ002",
        family="jobs",
        severity="error",
        title="mutates a map/reduce input",
        hint="copy the input before editing it; the framework re-serves "
        "and re-sorts input objects, so in-place edits corrupt other "
        "tasks' views of the data",
    ),
    "MRJ003": Rule(
        id="MRJ003",
        family="jobs",
        severity="error",
        title="emits an unhashable key",
        hint="keys must be hashable and totally ordered (the shuffle "
        "partitions by hash and sorts by key); emit a string/tuple "
        "rendering instead of a list/dict/set",
    ),
    "MRJ004": Rule(
        id="MRJ004",
        family="jobs",
        severity="error",
        title="emitted object is mutated in the same method",
        hint="context.write() stores a reference, not a snapshot; "
        "emit a copy (or a freshly constructed Writable) if you keep "
        "mutating the object afterwards",
    ),
    "MRJ005": Rule(
        id="MRJ005",
        family="jobs",
        severity="warning",
        title="cross-call state without in-mapper-combining idiom",
        hint="state accumulated across map()/reduce() calls is lost "
        "unless cleanup() flushes it (the in-mapper-combining pattern); "
        "either emit per call or add a cleanup() that drains the state",
    ),
    "MRJ006": Rule(
        id="MRJ006",
        family="jobs",
        severity="warning",
        title="side file re-read on every call",
        hint="read_side_file() streams the whole file each call — the "
        "movie-genres assignment's order-of-magnitude slowdown; load it "
        "once in setup() or use context.cached_side_file()",
    ),
    "MRJ007": Rule(
        id="MRJ007",
        family="jobs",
        severity="error",
        title="combiner is not a monoid",
        hint="a combiner may run 0..N times, so it must be associative "
        "and emit its own input type; compute ratios/averages (and any "
        "formatting) in the reducer, and have the combiner emit partial "
        "sums (Monoidify!)",
    ),
}

#: Methods that mutate their receiver in place.
_MUTATOR_METHODS = {
    "append",
    "extend",
    "insert",
    "add",
    "update",
    "pop",
    "popitem",
    "clear",
    "remove",
    "discard",
    "sort",
    "reverse",
    "setdefault",
}

#: The task-lifecycle methods the framework calls.
_TASK_METHODS = {"setup", "map", "reduce", "cleanup"}

#: Per-record methods: called once per input record / key group.
_PER_CALL_METHODS = {"map", "reduce"}


def dotted(node: ast.expr) -> str | None:
    """Render ``a.b.c`` attribute chains; None for anything else."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def root_symbol(node: ast.expr) -> tuple[str, ...] | None:
    """The base symbol of an expression: ``("x",)`` or ``("self", "attr")``.

    Walks down attribute/subscript chains: ``self.acc[k].field`` roots at
    ``("self", "acc")``; ``values[0]`` roots at ``("values",)``.
    """
    while isinstance(node, (ast.Subscript, ast.Attribute)):
        if (
            isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id == "self"
        ):
            return ("self", node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        return (node.id,)
    return None


def _is_task_class(node: ast.ClassDef) -> bool:
    """Does this class look like a Mapper/Reducer/Combiner subclass?"""
    for base in node.bases:
        name = base.attr if isinstance(base, ast.Attribute) else getattr(base, "id", "")
        if name.endswith(("Mapper", "Reducer", "Combiner")):
            return True
    return False


def _is_job_class(node: ast.ClassDef) -> bool:
    for base in node.bases:
        name = base.attr if isinstance(base, ast.Attribute) else getattr(base, "id", "")
        if name == "Job" or name.endswith("Job"):
            return True
    return False


def _method_params(fn: ast.FunctionDef) -> list[str]:
    return [a.arg for a in fn.args.args]


def _context_names(fn: ast.FunctionDef) -> set[str]:
    """Names through which ``fn`` can reach the framework Context."""
    names = {"context", "ctx"}
    params = _method_params(fn)
    if fn.name in ("map", "reduce") and len(params) >= 4:
        names.add(params[3])
    elif fn.name in ("setup", "cleanup") and len(params) >= 2:
        names.add(params[1])
    return names


def _mutations(fn: ast.FunctionDef) -> list[tuple[int, int, tuple[str, ...]]]:
    """All in-place mutations in ``fn``: (line, col, root symbol).

    A mutation is an assignment through a subscript/attribute, an
    augmented assignment, a ``del x[...]``, or a mutator-method call
    (``.append``/``.update``/...).  Rebinding a bare name is NOT a
    mutation — it cannot affect an aliased object.
    """
    out: list[tuple[int, int, tuple[str, ...]]] = []
    for node in ast.walk(fn):
        targets: list[ast.expr] = []
        if isinstance(node, ast.Assign):
            targets = [
                t for t in node.targets
                if isinstance(t, (ast.Subscript, ast.Attribute))
            ]
        elif isinstance(node, ast.AugAssign):
            targets = [node.target]
        elif isinstance(node, ast.Delete):
            targets = [
                t for t in node.targets
                if isinstance(t, (ast.Subscript, ast.Attribute))
            ]
        elif (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in _MUTATOR_METHODS
        ):
            targets = [node.func.value]
        for target in targets:
            root = root_symbol(target)
            # AugAssign on a bare local name is rebinding, not mutation
            # — unless it targets self.attr (shared across calls).
            if (
                isinstance(node, ast.AugAssign)
                and isinstance(node.target, ast.Name)
            ):
                continue
            if root is not None:
                out.append((node.lineno, node.col_offset, root))
    return out


def _context_writes(
    fn: ast.FunctionDef, ctx_names: set[str]
) -> list[ast.Call]:
    """All ``context.write(...)`` calls in ``fn``."""
    calls = []
    for node in ast.walk(fn):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "write"
            and isinstance(node.func.value, ast.Name)
            and node.func.value.id in ctx_names
        ):
            calls.append(node)
    return calls


def _loads_of_self_attrs(fn: ast.FunctionDef) -> set[str]:
    """Self attributes *referenced at all* inside ``fn``."""
    attrs = set()
    for node in ast.walk(fn):
        if (
            isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id == "self"
        ):
            attrs.add(node.attr)
    return attrs


class _JobVisitor:
    def __init__(self, path: str, tree: ast.Module):
        self.path = path
        self.tree = tree
        self.taint = ModuleTaint(tree)
        self.findings: list[Finding] = []

    def _emit(self, rule_id: str, node: ast.AST, message: str) -> None:
        rule = JOB_RULES[rule_id]
        self.findings.append(
            Finding(
                rule=rule_id,
                path=self.path,
                line=node.lineno,
                col=node.col_offset,
                severity=rule.severity,
                message=message,
                hint=rule.hint,
            )
        )

    # -- per-module entry -------------------------------------------------
    def run(self) -> list[Finding]:
        combiner_classes = self._combiner_class_names()
        for node in ast.walk(self.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            if _is_task_class(node):
                self._check_task_class(node)
            if node.name in combiner_classes:
                self._check_combiner_class(node)
        return self.findings

    def _combiner_class_names(self) -> set[str]:
        """Classes wired as ``combiner = X`` in a Job subclass, plus any
        task class whose name says it is one."""
        names = set()
        for node in ast.walk(self.tree):
            if isinstance(node, ast.ClassDef):
                if _is_job_class(node):
                    for stmt in node.body:
                        if (
                            isinstance(stmt, ast.Assign)
                            and len(stmt.targets) == 1
                            and isinstance(stmt.targets[0], ast.Name)
                            and stmt.targets[0].id == "combiner"
                            and isinstance(stmt.value, ast.Name)
                        ):
                            names.add(stmt.value.id)
                elif _is_task_class(node) and "Combiner" in node.name:
                    names.add(node.name)
        return names

    # -- task-class rules -------------------------------------------------
    def _check_task_class(self, cls: ast.ClassDef) -> None:
        methods = {
            stmt.name: stmt
            for stmt in cls.body
            if isinstance(stmt, ast.FunctionDef)
        }
        cleanup_loads = (
            self._transitive_self_loads(methods, "cleanup", set())
            if "cleanup" in methods
            else set()
        )
        global_names = {
            name
            for fn in methods.values()
            for node in ast.walk(fn)
            if isinstance(node, ast.Global)
            for name in node.names
        }
        stateful_attrs_flagged: set[str] = set()
        for name, fn in methods.items():
            self._check_nondeterminism(cls, fn)
            self._check_side_file(cls, fn)
            ctx_names = _context_names(fn)
            writes = _context_writes(fn, ctx_names)
            mutations = _mutations(fn)
            self._check_unhashable_keys(cls, writes)
            self._check_emit_aliasing(cls, fn, writes, mutations)
            if name in _PER_CALL_METHODS:
                self._check_input_mutation(cls, fn, mutations)
                self._check_cross_call_state(
                    cls, fn, mutations, global_names,
                    cleanup_loads, stateful_attrs_flagged,
                )
                # State accumulated by a helper *method* the per-record
                # method calls (self.track(x) → self.counts[x] += 1)
                # carries across calls exactly the same way.
                self._check_cross_call_state_via_helpers(
                    cls, fn, methods, cleanup_loads, stateful_attrs_flagged,
                )

    def _check_nondeterminism(
        self, cls: ast.ClassDef, fn: ast.FunctionDef
    ) -> None:
        """MRJ001, on the taint engine.

        A task method is flagged when *executing it* reaches an
        unsanitised nondeterministic source — directly or through any
        chain of same-module helper calls.  Draws from an RNG the class
        seeded out of the job configuration (``random.Random(conf[...])``
        in ``setup()``, or ``random.seed(conf[...])``) are proven clean
        by the dataflow engine and not flagged.  Helper *methods* only
        report their own direct calls, so one bug does not fan out into
        a finding per caller plus one at the helper's body.
        """
        info = self.taint.graph.info_for(fn)
        if info is None:  # pragma: no cover - methods always indexed
            return
        lifecycle = fn.name in _TASK_METHODS
        for effect in self.taint.effects_of(info):
            if effect.kind not in EFFECT_KINDS:
                continue
            if len(effect.chain) > 1 and not lifecycle:
                continue
            self._emit(
                "MRJ001",
                effect.site,
                f"{cls.name}.{fn.name}() calls {effect.render_chain()}: "
                "output differs across re-executed attempts",
            )

    def _check_side_file(self, cls: ast.ClassDef, fn: ast.FunctionDef) -> None:
        if fn.name in ("setup", "cleanup"):
            return  # once-per-task reads are the taught fix
        for node in ast.walk(fn):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "read_side_file"
            ):
                self._emit(
                    "MRJ006",
                    node,
                    f"{cls.name}.{fn.name}() streams a side file on every "
                    "call (full read + open overhead per record)",
                )

    def _check_unhashable_keys(
        self, cls: ast.ClassDef, writes: list[ast.Call]
    ) -> None:
        unhashable = (
            ast.List,
            ast.Dict,
            ast.Set,
            ast.ListComp,
            ast.DictComp,
            ast.SetComp,
        )
        for call in writes:
            if call.args and isinstance(call.args[0], unhashable):
                kind = type(call.args[0]).__name__.lower().replace("comp", "")
                self._emit(
                    "MRJ003",
                    call.args[0],
                    f"{cls.name} emits a {kind} as a key; the shuffle "
                    "cannot hash-partition or sort it",
                )

    def _check_input_mutation(
        self,
        cls: ast.ClassDef,
        fn: ast.FunctionDef,
        mutations: list[tuple[int, int, tuple[str, ...]]],
    ) -> None:
        params = _method_params(fn)
        inputs = set(params[1:3])  # (key, value) / (key, values)
        for line, col, root in mutations:
            if len(root) == 1 and root[0] in inputs:
                marker = ast.Name(id=root[0])
                marker.lineno, marker.col_offset = line, col
                self._emit(
                    "MRJ002",
                    marker,
                    f"{cls.name}.{fn.name}() mutates its input "
                    f"'{root[0]}' in place",
                )

    def _check_emit_aliasing(
        self,
        cls: ast.ClassDef,
        fn: ast.FunctionDef,
        writes: list[ast.Call],
        mutations: list[tuple[int, int, tuple[str, ...]]],
    ) -> None:
        mutated_roots = {root for _, _, root in mutations}
        for call in writes:
            for arg in call.args[:2]:
                root = root_symbol(arg)
                if root is not None and root in mutated_roots:
                    pretty = ".".join(root)
                    self._emit(
                        "MRJ004",
                        arg,
                        f"{cls.name}.{fn.name}() emits '{pretty}' and also "
                        "mutates it; the emitted pair aliases live state",
                    )

    def _check_cross_call_state(
        self,
        cls: ast.ClassDef,
        fn: ast.FunctionDef,
        mutations: list[tuple[int, int, tuple[str, ...]]],
        global_names: set[str],
        cleanup_loads: set[str],
        already_flagged: set[str],
    ) -> None:
        # Any rebinding of self.attr inside map()/reduce() also carries
        # state across calls (e.g. running argmax), so count those too.
        assigned_attrs: list[tuple[int, int, str]] = []
        for node in ast.walk(fn):
            if isinstance(node, (ast.Assign, ast.AugAssign)):
                targets = (
                    node.targets
                    if isinstance(node, ast.Assign)
                    else [node.target]
                )
                for target in targets:
                    root = root_symbol(target)
                    if root and root[0] == "self" and len(root) == 2:
                        assigned_attrs.append(
                            (node.lineno, node.col_offset, root[1])
                        )
        mutated_attrs = {
            root[1]
            for _, _, root in mutations
            if root and root[0] == "self" and len(root) == 2
        }
        seen_attrs = {a for _, _, a in assigned_attrs} | mutated_attrs
        for attr in sorted(seen_attrs):
            if attr in cleanup_loads or attr in already_flagged:
                continue
            already_flagged.add(attr)
            site = next(
                (
                    (line, col)
                    for line, col, a in assigned_attrs
                    if a == attr
                ),
                None,
            )
            if site is None:
                site = next(
                    (line, col)
                    for line, col, root in mutations
                    if root == ("self", attr)
                )
            marker = ast.Name(id=attr)
            marker.lineno, marker.col_offset = site
            self._emit(
                "MRJ005",
                marker,
                f"{cls.name}.{fn.name}() accumulates state in "
                f"'self.{attr}' across calls but no cleanup() flushes it",
            )
        for node in ast.walk(fn):
            if isinstance(node, ast.Global):
                for name in node.names:
                    self._emit(
                        "MRJ005",
                        node,
                        f"{cls.name}.{fn.name}() mutates global '{name}'; "
                        "tasks run in separate processes, so globals "
                        "neither share nor survive",
                    )
    def _check_cross_call_state_via_helpers(
        self,
        cls: ast.ClassDef,
        fn: ast.FunctionDef,
        methods: dict[str, ast.FunctionDef],
        cleanup_loads: set[str],
        already_flagged: set[str],
    ) -> None:
        for call, method_name in self._self_calls(fn):
            if method_name in _TASK_METHODS or method_name not in methods:
                continue
            writes = self._transitive_attr_writes(
                methods, method_name, set()
            )
            for attr in sorted(writes):
                if attr in cleanup_loads or attr in already_flagged:
                    continue
                already_flagged.add(attr)
                chain = " → ".join(
                    f"{part}()" for part in writes[attr]
                )
                self._emit(
                    "MRJ005",
                    call,
                    f"{cls.name}.{fn.name}() accumulates state in "
                    f"'self.{attr}' through {chain} across calls but no "
                    "cleanup() flushes it",
                )

    # -- interprocedural state helpers -----------------------------------
    @staticmethod
    def _self_calls(fn: ast.FunctionDef) -> list[tuple[ast.Call, str]]:
        out = []
        for node in walk_own_nodes(fn):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and isinstance(node.func.value, ast.Name)
                and node.func.value.id == "self"
            ):
                out.append((node, node.func.attr))
        return out

    def _direct_attr_writes(self, fn: ast.FunctionDef) -> set[str]:
        attrs: set[str] = set()
        for _line, _col, root in _mutations(fn):
            if root and root[0] == "self" and len(root) == 2:
                attrs.add(root[1])
        for node in walk_own_nodes(fn):
            if isinstance(node, (ast.Assign, ast.AugAssign)):
                targets = (
                    node.targets
                    if isinstance(node, ast.Assign)
                    else [node.target]
                )
                for target in targets:
                    root = root_symbol(target)
                    if root and root[0] == "self" and len(root) == 2:
                        attrs.add(root[1])
        return attrs

    def _transitive_attr_writes(
        self,
        methods: dict[str, ast.FunctionDef],
        name: str,
        visited: set[str],
    ) -> dict[str, tuple[str, ...]]:
        """attr -> call chain (method names) by which ``name`` writes it."""
        if name in visited or name not in methods:
            return {}
        visited.add(name)
        fn = methods[name]
        writes: dict[str, tuple[str, ...]] = {
            attr: (name,) for attr in self._direct_attr_writes(fn)
        }
        for _call, callee in self._self_calls(fn):
            for attr, chain in self._transitive_attr_writes(
                methods, callee, visited
            ).items():
                writes.setdefault(attr, (name,) + chain)
        return writes

    def _transitive_self_loads(
        self,
        methods: dict[str, ast.FunctionDef],
        name: str,
        visited: set[str],
    ) -> set[str]:
        if name in visited or name not in methods:
            return set()
        visited.add(name)
        fn = methods[name]
        loads = _loads_of_self_attrs(fn)
        for _call, callee in self._self_calls(fn):
            loads |= self._transitive_self_loads(methods, callee, visited)
        return loads

    def _division_sites(
        self, info, visited: set[int]
    ) -> list[tuple[ast.BinOp, tuple[str, ...]]]:
        """Div/FloorDiv nodes reached from ``info``, with the helper
        chain that gets there.  Direct divisions report at the BinOp;
        transitive ones report at the *callsite* inside the caller so
        the finding lands in the combiner's own code."""
        if info is None:
            return []
        if id(info.node) in visited:
            return []
        visited.add(id(info.node))
        out: list[tuple[ast.BinOp, tuple[str, ...]]] = []
        for node in walk_own_nodes(info.node):
            if isinstance(node, ast.BinOp) and isinstance(
                node.op, (ast.Div, ast.FloorDiv)
            ):
                out.append((node, ()))
            elif isinstance(node, ast.Call):
                callee = self.taint.graph.resolve_call(node, info)
                if callee is None:
                    continue
                nested = self._division_sites(callee, visited)
                if nested:
                    # Report once per callsite, at the call, naming the
                    # deepest chain that actually divides.
                    _, deepest = max(nested, key=lambda item: len(item[1]))
                    out.append((node, (callee.name,) + deepest))
        return out

    # -- combiner rules ---------------------------------------------------
    def _check_combiner_class(self, cls: ast.ClassDef) -> None:
        reduce_fn = next(
            (
                stmt
                for stmt in cls.body
                if isinstance(stmt, ast.FunctionDef) and stmt.name == "reduce"
            ),
            None,
        )
        if reduce_fn is None:
            return
        reduce_info = self.taint.graph.info_for(reduce_fn)
        for site, chain in self._division_sites(reduce_info, set()):
            via = (
                f" through {' → '.join(f'{part}()' for part in chain)}"
                if chain
                else ""
            )
            self._emit(
                "MRJ007",
                site,
                f"{cls.name}.reduce() divides accumulated values{via} — "
                "ratios/averages are not associative, so running the "
                "combiner a different number of times changes the "
                "answer (mean of means is not the mean)",
            )
        ctx_names = _context_names(reduce_fn)
        for call in _context_writes(reduce_fn, ctx_names):
            if len(call.args) >= 2 and isinstance(call.args[1], ast.JoinedStr):
                self._emit(
                    "MRJ007",
                    call.args[1],
                    f"{cls.name}.reduce() emits a formatted string value; "
                    "a second combine round would re-combine text, not "
                    "numbers",
                )


def check_job_rules(path: str, tree: ast.Module) -> list[Finding]:
    """Run all MRJ0xx rules over one parsed module."""
    return _JobVisitor(path, tree).run()
