"""YarnCluster: ResourceManager + NodeManagers, assembled."""

from __future__ import annotations

from repro.sim.engine import Simulation
from repro.yarn.application import Application
from repro.yarn.nodemanager import NodeManager
from repro.yarn.resourcemanager import ResourceManager
from repro.yarn.resources import DEFAULT_NODE_RESOURCE, Resource


class YarnCluster:
    """A running YARN: one RM, N NMs, a shared simulation."""

    def __init__(
        self,
        num_nodes: int = 4,
        policy: str = "fair",
        node_capacity: Resource = DEFAULT_NODE_RESOURCE,
        sim: Simulation | None = None,
    ):
        self.sim = sim or Simulation()
        self.rm = ResourceManager(self.sim, policy=policy)
        self.nodes: dict[str, NodeManager] = {}
        for i in range(num_nodes):
            manager = NodeManager(
                name=f"node{i}", sim=self.sim, capacity=node_capacity
            )
            manager.register(self.rm)
            self.nodes[manager.name] = manager

    # ------------------------------------------------------------------
    def submit(self, application: Application) -> str:
        return self.rm.submit(application)

    def run_until_finished(
        self, *applications: Application, timeout: float = 24 * 3600.0
    ) -> None:
        deadline = self.sim.now + timeout
        while self.sim.now < deadline:
            if all(app.finished for app in applications):
                return
            self.sim.run_for(min(1.0, deadline - self.sim.now))

    def crash_node(self, name: str) -> None:
        self.nodes[name].crash()
