"""NodeManagers: per-node resource accounting and container execution.

A container is just "a slice of one node's resources running one piece
of work for one application" — the generalization that freed Hadoop 2
from fixed map/reduce slots.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable

from repro.sim.engine import ScheduledEvent, Simulation
from repro.util.errors import ReproError
from repro.yarn.resources import DEFAULT_NODE_RESOURCE, Resource

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.yarn.resourcemanager import ResourceManager


class ContainerState(enum.Enum):
    RUNNING = "running"
    COMPLETED = "completed"
    FAILED = "failed"
    KILLED = "killed"  # node lost or preempted


@dataclass
class Container:
    """One granted resource slice, possibly running work."""

    container_id: str
    node: str
    application_id: str
    resource: Resource
    state: ContainerState = ContainerState.RUNNING
    exit_message: str = ""
    _completion: ScheduledEvent | None = field(default=None, repr=False)


class NodeManager:
    """One node's agent: launches containers, reports liveness."""

    _ids = itertools.count(1)

    def __init__(
        self,
        name: str,
        sim: Simulation,
        capacity: Resource = DEFAULT_NODE_RESOURCE,
        heartbeat_interval: float = 3.0,
    ):
        self.name = name
        self.sim = sim
        self.capacity = capacity
        self.heartbeat_interval = heartbeat_interval
        self.alive = True
        self.containers: dict[str, Container] = {}
        self.rm: "ResourceManager | None" = None
        self._cancel_heartbeat: Callable[[], None] | None = None
        self.containers_launched = 0

    # ------------------------------------------------------------------
    @property
    def used(self) -> Resource:
        total = Resource.zero()
        for container in self.containers.values():
            if container.state == ContainerState.RUNNING:
                total = total + container.resource
        return total

    @property
    def available(self) -> Resource:
        used = self.used
        return Resource(
            self.capacity.memory - used.memory,
            self.capacity.vcores - used.vcores,
        )

    def can_fit(self, resource: Resource) -> bool:
        return self.alive and resource.fits_in(self.available)

    # -- lifecycle -------------------------------------------------------
    def register(self, rm: "ResourceManager") -> None:
        self.rm = rm
        rm.register_node(self)
        self._cancel_heartbeat = self.sim.every(
            self.heartbeat_interval, self._heartbeat
        )

    def _heartbeat(self) -> None:
        if self.alive and self.rm is not None:
            self.rm.node_heartbeat(self.name)

    def crash(self) -> None:
        """Node death: every running container dies with it."""
        self.alive = False
        if self._cancel_heartbeat is not None:
            self._cancel_heartbeat()
            self._cancel_heartbeat = None
        for container in self.containers.values():
            if container.state == ContainerState.RUNNING:
                if container._completion is not None:
                    container._completion.cancel()
                self._finish(
                    container, ContainerState.KILLED, "node lost", notify=False
                )

    # -- containers ----------------------------------------------------------
    def launch(
        self,
        application_id: str,
        resource: Resource,
        duration: float,
        will_fail: bool = False,
        payload: Callable[[], object] | None = None,
    ) -> Container:
        """Start a container that completes (or fails) after ``duration``."""
        if not self.alive:
            raise ReproError(f"node manager {self.name} is down")
        if not resource.fits_in(self.available):
            raise ReproError(
                f"{self.name} cannot fit {resource.describe()} "
                f"(available {self.available.describe()})"
            )
        container = Container(
            container_id=f"container_{next(self._ids):06d}",
            node=self.name,
            application_id=application_id,
            resource=resource,
        )
        self.containers[container.container_id] = container
        self.containers_launched += 1
        final_state = (
            ContainerState.FAILED if will_fail else ContainerState.COMPLETED
        )
        message = "simulated task failure" if will_fail else ""

        def complete() -> None:
            result = None
            if payload is not None and not will_fail:
                result = payload()
            self._finish(container, final_state, message, result=result)

        container._completion = self.sim.schedule(duration, complete)
        return container

    def kill_container(self, container_id: str, reason: str = "killed") -> None:
        container = self.containers.get(container_id)
        if container is None or container.state != ContainerState.RUNNING:
            return
        if container._completion is not None:
            container._completion.cancel()
        self._finish(container, ContainerState.KILLED, reason)

    def _finish(
        self,
        container: Container,
        state: ContainerState,
        message: str,
        notify: bool = True,
        result: object = None,
    ) -> None:
        container.state = state
        container.exit_message = message
        if notify and self.rm is not None:
            self.rm.container_finished(container, result)
