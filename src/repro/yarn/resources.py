"""Resource vectors: the (memory, vcores) pair YARN schedules by."""

from __future__ import annotations

from dataclasses import dataclass

from repro.util.errors import ConfigError
from repro.util.units import GB, MB


@dataclass(frozen=True, order=True)
class Resource:
    """An amount of memory (bytes) and virtual cores."""

    memory: int
    vcores: int

    def __post_init__(self) -> None:
        if self.memory < 0 or self.vcores < 0:
            raise ConfigError("resources must be non-negative")

    def fits_in(self, other: "Resource") -> bool:
        return self.memory <= other.memory and self.vcores <= other.vcores

    def __add__(self, other: "Resource") -> "Resource":
        return Resource(self.memory + other.memory, self.vcores + other.vcores)

    def __sub__(self, other: "Resource") -> "Resource":
        result = Resource(
            self.memory - other.memory, self.vcores - other.vcores
        )
        return result

    @classmethod
    def zero(cls) -> "Resource":
        return cls(0, 0)

    def describe(self) -> str:
        return f"<{self.memory // MB}MB, {self.vcores}vc>"


#: A 2012-era worker node's schedulable share (leaving headroom for the
#: DataNode and the OS, as yarn.nodemanager.resource.* would).
DEFAULT_NODE_RESOURCE = Resource(memory=48 * GB, vcores=14)
#: The default container ask (a map-task-sized container).
DEFAULT_CONTAINER = Resource(memory=2 * GB, vcores=1)
