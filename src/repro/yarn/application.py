"""ApplicationMasters: the per-job brains YARN moved out of the master.

An :class:`Application` owns a bag of :class:`TaskSpec`\\ s, asks the
ResourceManager for containers, and — the part every real AM must get
right — re-requests work when a container fails or its node dies.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Callable

from repro.util.errors import ReproError
from repro.yarn.nodemanager import Container, ContainerState
from repro.yarn.resources import DEFAULT_CONTAINER, Resource


@dataclass
class TaskSpec:
    """One unit of containerized work."""

    name: str
    duration: float = 5.0
    resource: Resource = DEFAULT_CONTAINER
    preferred_nodes: tuple[str, ...] = ()
    #: Attempts that fail before one succeeds (deterministic injection).
    failures_before_success: int = 0
    payload: Callable[[], object] | None = None


class AppState(enum.Enum):
    PENDING = "pending"
    RUNNING = "running"
    SUCCEEDED = "succeeded"
    FAILED = "failed"


class Application:
    """A simple AM: run every task to completion, retrying failures."""

    def __init__(
        self,
        name: str,
        tasks: list[TaskSpec],
        max_attempts_per_task: int = 4,
    ):
        if not tasks:
            raise ReproError("an application needs at least one task")
        self.name = name
        self.application_id = ""  # assigned at submission
        self.tasks = list(tasks)
        self.max_attempts_per_task = max_attempts_per_task
        self.state = AppState.PENDING
        self.pending: list[TaskSpec] = list(tasks)
        self.running: dict[str, TaskSpec] = {}  # container id -> task
        self.completed: list[str] = []
        self.results: dict[str, object] = {}
        self.attempts: dict[str, int] = {t.name: 0 for t in tasks}
        self.failure_reason: str | None = None
        self.containers_lost = 0

    # ------------------------------------------------------------------
    @property
    def finished(self) -> bool:
        return self.state in (AppState.SUCCEEDED, AppState.FAILED)

    @property
    def progress(self) -> float:
        return len(self.completed) / len(self.tasks)

    def next_request(self) -> TaskSpec | None:
        """The next container ask, or None when nothing is pending."""
        return self.pending[0] if self.pending else None

    # -- ResourceManager callbacks ------------------------------------------
    def on_allocated(self, task: TaskSpec, container: Container) -> None:
        self.state = AppState.RUNNING
        self.pending.remove(task)
        self.running[container.container_id] = task
        self.attempts[task.name] += 1

    def on_container_finished(
        self, container: Container, result: object
    ) -> None:
        task = self.running.pop(container.container_id, None)
        if task is None or self.finished:
            return
        if container.state == ContainerState.COMPLETED:
            self.completed.append(task.name)
            self.results[task.name] = result
            if len(self.completed) == len(self.tasks):
                self.state = AppState.SUCCEEDED
            return
        # FAILED or KILLED: the retry loop.
        if container.state == ContainerState.KILLED:
            self.containers_lost += 1
        if self.attempts[task.name] >= self.max_attempts_per_task:
            self.state = AppState.FAILED
            self.failure_reason = (
                f"task {task.name!r} failed "
                f"{self.attempts[task.name]} times: {container.exit_message}"
            )
            return
        self.pending.append(task)

    # ------------------------------------------------------------------
    def should_fail_attempt(self, task: TaskSpec) -> bool:
        """Deterministic failure injection: the first
        ``failures_before_success`` attempts of a task fail.

        Called *before* the attempt is recorded, so ``attempts`` holds
        the number of attempts already made.
        """
        return self.attempts[task.name] < task.failures_before_success
