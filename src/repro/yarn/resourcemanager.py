"""The ResourceManager: one scheduler for every kind of application.

Implements the two policies the YARN lecture would contrast:

- ``fifo`` — Hadoop 1's behaviour: the oldest application takes
  everything it can;
- ``fair`` — round-robin across running applications, the property that
  lets a 4-container ad-hoc query make progress next to a 400-container
  batch job.

Locality is a *preference*: a request naming preferred nodes waits
``locality_delay`` seconds for one of them before accepting any node —
YARN's delay scheduling, miniaturized.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

from repro.sim.engine import Simulation
from repro.util.errors import ConfigError, ReproError
from repro.yarn.application import Application, AppState, TaskSpec
from repro.yarn.nodemanager import Container, NodeManager


@dataclass
class _NodeRecord:
    manager: NodeManager
    last_heartbeat: float
    alive: bool = True


@dataclass
class _PendingAsk:
    application: Application
    task: TaskSpec
    first_seen: float


class ResourceManager:
    """Allocates containers to applications over registered nodes."""

    def __init__(
        self,
        sim: Simulation,
        policy: str = "fair",
        schedule_interval: float = 1.0,
        heartbeat_timeout: float = 30.0,
        locality_delay: float = 5.0,
    ):
        if policy not in ("fifo", "fair"):
            raise ConfigError(f"unknown scheduling policy {policy!r}")
        self.sim = sim
        self.policy = policy
        self.heartbeat_timeout = heartbeat_timeout
        self.locality_delay = locality_delay
        self.nodes: dict[str, _NodeRecord] = {}
        self.applications: dict[str, Application] = {}
        self._app_order: list[str] = []
        self._app_ids = itertools.count(1)
        self._fair_cursor = 0
        self.containers_allocated = 0
        self.nodes_lost = 0
        sim.every(schedule_interval, self._tick)

    # ------------------------------------------------------------------
    # nodes
    def register_node(self, manager: NodeManager) -> None:
        self.nodes[manager.name] = _NodeRecord(
            manager=manager, last_heartbeat=self.sim.now
        )

    def node_heartbeat(self, name: str) -> None:
        record = self.nodes.get(name)
        if record is not None:
            record.last_heartbeat = self.sim.now
            record.alive = True

    def live_nodes(self) -> list[NodeManager]:
        return [r.manager for r in self.nodes.values() if r.alive]

    def cluster_capacity(self):
        from repro.yarn.resources import Resource

        total = Resource.zero()
        for manager in self.live_nodes():
            total = total + manager.capacity
        return total

    def _check_liveness(self) -> None:
        for name, record in self.nodes.items():
            if (
                record.alive
                and self.sim.now - record.last_heartbeat > self.heartbeat_timeout
            ):
                record.alive = False
                self.nodes_lost += 1
                self._node_lost(record.manager)

    def _node_lost(self, manager: NodeManager) -> None:
        """Report every container that died with the node to its AM."""
        for container in manager.containers.values():
            app = self.applications.get(container.application_id)
            if app is None:
                continue
            if container.container_id in app.running:
                from repro.yarn.nodemanager import ContainerState

                container.state = ContainerState.KILLED
                container.exit_message = "node lost"
                app.on_container_finished(container, None)

    # ------------------------------------------------------------------
    # applications
    def submit(self, application: Application) -> str:
        application.application_id = f"application_{next(self._app_ids):04d}"
        self.applications[application.application_id] = application
        self._app_order.append(application.application_id)
        return application.application_id

    def _active_apps(self) -> list[Application]:
        return [
            self.applications[app_id]
            for app_id in self._app_order
            if not self.applications[app_id].finished
        ]

    # ------------------------------------------------------------------
    # scheduling
    def _tick(self) -> None:
        self._check_liveness()
        apps = self._active_apps()
        if not apps:
            return
        if self.policy == "fifo":
            for app in apps:
                self._serve_app_fully(app)
        else:
            self._fair_round(apps)

    def _serve_app_fully(self, app: Application) -> None:
        while True:
            task = app.next_request()
            if task is None or not self._try_place(app, task):
                return

    def _fair_round(self, apps: list[Application]) -> None:
        """One container per app per pass, round-robin, until stuck."""
        progress = True
        while progress:
            progress = False
            for offset in range(len(apps)):
                app = apps[(self._fair_cursor + offset) % len(apps)]
                task = app.next_request()
                if task is not None and self._try_place(app, task):
                    progress = True
            self._fair_cursor += 1

    def _try_place(self, app: Application, task: TaskSpec) -> bool:
        candidates = [
            m for m in self.live_nodes() if m.can_fit(task.resource)
        ]
        if not candidates:
            return False
        chosen = None
        if task.preferred_nodes:
            preferred = [
                m for m in candidates if m.name in task.preferred_nodes
            ]
            if preferred:
                chosen = max(
                    preferred, key=lambda m: (m.available.memory, m.name)
                )
            else:
                # Delay scheduling: hold out for locality, briefly.
                waited = self.sim.now - getattr(task, "_first_ask", self.sim.now)
                if not hasattr(task, "_first_ask"):
                    task._first_ask = self.sim.now
                if waited < self.locality_delay:
                    return False
        if chosen is None:
            chosen = max(candidates, key=lambda m: (m.available.memory, m.name))
        will_fail = app.should_fail_attempt(task)
        container = chosen.launch(
            application_id=app.application_id,
            resource=task.resource,
            duration=task.duration,
            will_fail=will_fail,
            payload=task.payload,
        )
        self.containers_allocated += 1
        app.on_allocated(task, container)
        return True

    # ------------------------------------------------------------------
    def container_finished(self, container: Container, result: object) -> None:
        app = self.applications.get(container.application_id)
        if app is not None:
            app.on_container_finished(container, result)
