"""YARN-lite: the "cluster resource manager" of the paper's conclusion.

The paper closes by noting that the ecosystem had already "moved Hadoop
beyond MapReduce's limitations in order to support additional
capabilities such as cluster resource manager [Apache Hadoop 2.0:
YARN]".  This package is that next step, teaching-scale: the
fixed-slot TaskTrackers of Hadoop 1 are replaced by general
``(memory, vcores)`` containers negotiated from a ResourceManager —
which is exactly the architectural change YARN made.

- :class:`~repro.yarn.nodemanager.NodeManager` — per-node resources,
  container launch/stop, heartbeats;
- :class:`~repro.yarn.resourcemanager.ResourceManager` — application
  queue (FIFO or capacity-fair), container allocation with optional
  locality preferences, liveness tracking, lost-node handling;
- :class:`~repro.yarn.application.Application` — an ApplicationMaster
  skeleton: request containers, run work in them, handle container
  loss by re-requesting (the retry loop every YARN AM implements).
"""

from repro.yarn.resources import Resource
from repro.yarn.nodemanager import Container, ContainerState, NodeManager
from repro.yarn.resourcemanager import ResourceManager
from repro.yarn.application import Application, TaskSpec
from repro.yarn.cluster import YarnCluster

__all__ = [
    "Resource",
    "Container",
    "ContainerState",
    "NodeManager",
    "ResourceManager",
    "Application",
    "TaskSpec",
    "YarnCluster",
]
