"""Assignment: "find the word with highest count in the complete
Shakespeare collection" — a slight modification of WordCount.

The canonical two-job solution: WordCount first, then a single-reduce
max over its output.  :func:`find_top_word` chains them the way a
student's driver ``main()`` would.
"""

from __future__ import annotations

from repro.jobs.wordcount import WordCountWithCombinerJob
from repro.mapreduce.api import Context, Job, Mapper, Reducer
from repro.mapreduce.config import JobConf
from repro.mapreduce.inputformat import KeyValueTextInputFormat
from repro.mapreduce.types import IntWritable, Text, Writable


class CountPassMapper(Mapper):
    """Read a WordCount output line (``word<TAB>count``) back in."""

    def map(self, key: Writable, value: Writable, context: Context) -> None:
        # KeyValueTextInputFormat already split word/count at the tab.
        context.write(Text("max"), Text(f"{value.value}:{key.value}"))


class MaxCountReducer(Reducer):
    """Keep the (count, word) maximum; emit one winner.

    Ties break toward the lexicographically smallest word, matching the
    dataset ground truth's convention.
    """

    def reduce(self, key: Writable, values, context: Context) -> None:
        best_count = -1
        best_word = ""
        for packed in values:
            count_text, word = packed.value.split(":", 1)
            count = int(count_text)
            if count > best_count or (count == best_count and word < best_word):
                best_count, best_word = count, word
        context.write(Text(best_word), IntWritable(best_count))


class TopWordJob(Job):
    """Single-reduce max over WordCount output."""

    mapper = CountPassMapper
    reducer = MaxCountReducer
    input_format = KeyValueTextInputFormat

    def __init__(self, conf: JobConf | None = None, **params):
        conf = conf or JobConf(name="top-word", num_reduces=1)
        conf.num_reduces = 1  # a global max needs a single reducer
        super().__init__(conf=conf, **params)


def find_top_word(cluster, input_path: str, work_dir: str) -> tuple[str, int]:
    """Run the two-job chain on a cluster; return (word, count)."""
    counts_path = f"{work_dir}/counts"
    top_path = f"{work_dir}/top"
    cluster.run_job(
        WordCountWithCombinerJob(), input_path, counts_path, require_success=True
    )
    cluster.run_job(TopWordJob(), counts_path, top_path, require_success=True)
    pairs = cluster.read_output(top_path)
    word, count = pairs[0]
    return word, int(count)
