"""Assignment 2, part 2: "analyze the Yahoo song database and identify
the album that has the highest average rating using MapReduce and HDFS".

Mappers join each rating to its album through the ``songs.txt`` side
file; the (sum, count) monoid makes the combiner safe; reducers emit the
per-album average.  :func:`best_album_from_output` applies the
assignment's final argmax (with a minimum-support threshold, as any
sensible grader demands).
"""

from __future__ import annotations

from repro.jobs.airline_delay import SumCountWritable
from repro.mapreduce.api import Context, Job, Mapper, Reducer
from repro.mapreduce.config import JobConf
from repro.mapreduce.types import Text, Writable, record_writable
from repro.util.errors import ConfigError

#: Reduce output: average plus the supporting count, one value class.
AlbumAverageWritable = record_writable(
    "AlbumAverageWritable", [("average", float), ("count", int)]
)


def parse_songs_file(text: str) -> dict[int, int]:
    """``SongID<TAB>AlbumID<TAB>ArtistID`` -> {song: album}."""
    table: dict[int, int] = {}
    for line in text.splitlines():
        if not line:
            continue
        song, album, _artist = line.split("\t")
        table[int(song)] = int(album)
    return table


class AlbumJoinMapper(Mapper):
    SONGS_CACHE_KEY = "songs-table"

    def setup(self, context: Context) -> None:
        path = context.get("songs_path")
        if path is None:
            raise ConfigError("AlbumRatingJob requires songs_path=...")
        cache = context.node_cache
        if self.SONGS_CACHE_KEY not in cache:
            cache[self.SONGS_CACHE_KEY] = parse_songs_file(
                context.cached_side_file(path)
            )
        self._table: dict[int, int] = cache[self.SONGS_CACHE_KEY]

    def map(self, key: Writable, value: Writable, context: Context) -> None:
        line = value.value
        if not line:
            return
        fields = line.split("\t")
        if len(fields) != 3:
            return
        _user, song, rating = fields
        album = self._table.get(int(song))
        if album is None:
            return
        context.write(
            Text(str(album)), SumCountWritable(total=float(rating), count=1)
        )


class SumCountMergeCombiner(Reducer):
    def reduce(self, key: Writable, values, context: Context) -> None:
        total, count = 0.0, 0
        for value in values:
            total += value.total
            count += value.count
        context.write(key, SumCountWritable(total=total, count=count))


class AlbumAverageReducer(Reducer):
    def reduce(self, key: Writable, values, context: Context) -> None:
        total, count = 0.0, 0
        for value in values:
            total += value.total
            count += value.count
        context.write(
            key, AlbumAverageWritable(average=total / count, count=count)
        )


class AlbumRatingJob(Job):
    """Per-album average rating (params: ``songs_path``)."""

    mapper = AlbumJoinMapper
    combiner = SumCountMergeCombiner
    reducer = AlbumAverageReducer
    shares_node_state = True  # cached side file via node_cache

    def __init__(self, conf: JobConf | None = None, **params):
        conf = conf or JobConf(name="album-rating")
        super().__init__(conf=conf, **params)


def best_album_from_output(
    pairs: list[tuple[str, str]], min_ratings: int = 1
) -> tuple[int, float]:
    """Apply the assignment's argmax to the job output.

    Ties break toward the smallest album id, matching the dataset's
    ground-truth convention.
    """
    best_album, best_avg = None, float("-inf")
    for album_text, value_text in pairs:
        value = AlbumAverageWritable.decode(value_text)
        if value.count < min_ratings:
            continue
        album = int(album_text)
        if value.average > best_avg or (
            value.average == best_avg
            and (best_album is None or album < best_album)
        ):
            best_album, best_avg = album, value.average
    if best_album is None:
        raise ValueError("no album met the support threshold")
    return best_album, best_avg
