"""Version 1, assignment 2: "analyze the 171GB of a Google Data Center's
system log and find the computing job with largest number of task
resubmissions".

Two-job chain, the standard pattern for a grouped count followed by a
global argmax:

1. :class:`TraceResubmissionsJob` — key SUBMIT events by
   ``(job, task)``; each group's resubmissions are ``submits - 1``;
   sum per job.
2. :class:`MaxResubmissionsJob` — single-reduce max over job totals.
"""

from __future__ import annotations

from repro.datasets.google_trace import EVENT_SUBMIT
from repro.mapreduce.api import Context, Job, Mapper, Reducer
from repro.mapreduce.config import JobConf
from repro.mapreduce.inputformat import KeyValueTextInputFormat
from repro.mapreduce.partitioner import KeyFieldPartitioner
from repro.mapreduce.types import IntWritable, Text, Writable


def parse_event(line: str) -> tuple[int, int, int, int, int] | None:
    """``timestamp,job,task,machine,event`` or None for junk lines."""
    if not line:
        return None
    fields = line.split(",")
    if len(fields) != 5:
        return None
    try:
        return tuple(int(f) for f in fields)  # type: ignore[return-value]
    except ValueError:
        return None


class SubmitEventMapper(Mapper):
    """Emit ``("job|task", 1)`` for every SUBMIT event."""

    def map(self, key: Writable, value: Writable, context: Context) -> None:
        parsed = parse_event(value.value)
        if parsed is None:
            return
        _ts, job_id, task_index, _machine, event = parsed
        if event == EVENT_SUBMIT:
            context.write(Text(f"{job_id}|{task_index}"), IntWritable(1))


class SubmitSumCombiner(Reducer):
    def reduce(self, key: Writable, values, context: Context) -> None:
        context.write(key, IntWritable(sum(v.value for v in values)))


class ResubmissionReducer(Reducer):
    """Per (job, task): resubmissions = submits - 1; sum per job.

    Partitioning on the job-id field keeps all of one job's tasks in
    one reducer, so per-job accumulation in reducer state is safe.
    """

    def setup(self, context: Context) -> None:
        self._per_job: dict[int, int] = {}

    def reduce(self, key: Writable, values, context: Context) -> None:
        job_id = int(key.value.split("|", 1)[0])
        submits = sum(v.value for v in values)
        self._per_job[job_id] = self._per_job.get(job_id, 0) + max(
            0, submits - 1
        )

    def cleanup(self, context: Context) -> None:
        for job_id in sorted(self._per_job):
            context.write(IntWritable(job_id), IntWritable(self._per_job[job_id]))
        self._per_job.clear()


class TraceResubmissionsJob(Job):
    """Resubmission count per cluster job."""

    mapper = SubmitEventMapper
    combiner = SubmitSumCombiner
    reducer = ResubmissionReducer
    partitioner = KeyFieldPartitioner(separator="|", field_index=0)

    def __init__(self, conf: JobConf | None = None, **params):
        conf = conf or JobConf(name="trace-resubmissions")
        super().__init__(conf=conf, **params)


class MaxPassMapper(Mapper):
    """Funnel ``job<TAB>count`` lines to one reducer."""

    def map(self, key: Writable, value: Writable, context: Context) -> None:
        context.write(Text("max"), Text(f"{value.value}:{key.value}"))


class MaxResubmissionReducer(Reducer):
    def reduce(self, key: Writable, values, context: Context) -> None:
        best_count, best_job = -1, None
        for packed in values:
            count_text, job_text = packed.value.split(":", 1)
            count, job_id = int(count_text), int(job_text)
            if count > best_count or (
                count == best_count and (best_job is None or job_id < best_job)
            ):
                best_count, best_job = count, job_id
        if best_job is not None:
            context.write(IntWritable(best_job), IntWritable(best_count))


class MaxResubmissionsJob(Job):
    mapper = MaxPassMapper
    reducer = MaxResubmissionReducer
    input_format = KeyValueTextInputFormat

    def __init__(self, conf: JobConf | None = None, **params):
        conf = conf or JobConf(name="max-resubmissions", num_reduces=1)
        conf.num_reduces = 1
        super().__init__(conf=conf, **params)


def find_max_resubmission_job(
    cluster, input_path: str, work_dir: str, num_reduces: int = 4
) -> tuple[int, int]:
    """Run the two-job chain; return (job_id, resubmissions)."""
    per_job_path = f"{work_dir}/per_job"
    top_path = f"{work_dir}/top"
    job1 = TraceResubmissionsJob(
        conf=JobConf(name="trace-resubmissions", num_reduces=num_reduces)
    )
    cluster.run_job(job1, input_path, per_job_path, require_success=True)
    cluster.run_job(MaxResubmissionsJob(), per_job_path, top_path, require_success=True)
    pairs = cluster.read_output(top_path)
    job_id, count = pairs[0]
    return int(job_id), int(count)
