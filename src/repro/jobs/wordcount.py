"""WordCount, three ways — the MapReduce lecture's running example.

1. :class:`WordCountJob` — "the standard WordCount example which
   illustrates the basic concepts of mapping and reducing";
2. :class:`WordCountWithCombinerJob` — "another WordCount example that
   uses the reducer as a combiner", where students "observe the tradeoff
   between increased map task run time ... versus reduced network
   traffic";
3. :class:`WordCountInMapperJob` — in-mapper combining (Lin's design
   pattern), the aggressive end of the same trade-off.
"""

from __future__ import annotations

from repro.datasets.shakespeare import tokenize
from repro.mapreduce.api import Context, Job, Mapper, Reducer
from repro.mapreduce.types import IntWritable, Text, Writable


class TokenizerMapper(Mapper):
    """Emit ``(word, 1)`` for every token of the line."""

    def map(self, key: Writable, value: Writable, context: Context) -> None:
        for word in tokenize(value.value):
            context.write(Text(word), IntWritable(1))


class IntSumReducer(Reducer):
    """Sum the counts for one word.

    Summing integers is a monoid, which is exactly why this class can
    double as the combiner in :class:`WordCountWithCombinerJob`.
    """

    def reduce(self, key: Writable, values, context: Context) -> None:
        total = sum(v.value for v in values)
        context.write(key, IntWritable(total))


class InMapperCombiningMapper(Mapper):
    """Aggregate counts in task-local memory; emit once at cleanup."""

    def setup(self, context: Context) -> None:
        self._counts: dict[str, int] = {}

    def map(self, key: Writable, value: Writable, context: Context) -> None:
        for word in tokenize(value.value):
            self._counts[word] = self._counts.get(word, 0) + 1

    def cleanup(self, context: Context) -> None:
        for word in sorted(self._counts):
            context.write(Text(word), IntWritable(self._counts[word]))
        self._counts.clear()


class WordCountJob(Job):
    """Plain WordCount: every token crosses the network."""

    mapper = TokenizerMapper
    reducer = IntSumReducer


class WordCountWithCombinerJob(Job):
    """WordCount with the reducer reused as a combiner."""

    mapper = TokenizerMapper
    reducer = IntSumReducer
    combiner = IntSumReducer


class WordCountInMapperJob(Job):
    """WordCount with in-mapper combining (no combiner class at all)."""

    mapper = InMapperCombiningMapper
    reducer = IntSumReducer
