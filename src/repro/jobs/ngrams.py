"""N-gram counting over the Shakespeare corpus, as an RDD pipeline.

The corpus pipeline of the sparklite workload family: tokenize each
line with the vectorised :func:`~repro.datasets.shakespeare.tokenize`
(the C-loop fast path the map tasks of PR 5 run on), slide an *n*-wide
window over each line's tokens, and count windows with one shuffle.
Windows never cross line boundaries — the same convention as Hadoop's
classic n-gram examples, and what makes the pipeline embarrassingly
map-parallel before its single ``reduceByKey``.

All transformation arguments are module-level functions or
``functools.partial`` bindings of them, so the compiled backend ships
them to pooled workers instead of falling back inline.
"""

from __future__ import annotations

from collections import Counter
from functools import partial

from repro.datasets.shakespeare import tokenize


def line_ngrams(line: str, n: int = 2) -> list[str]:
    """All space-joined token windows of width ``n`` within one line."""
    words = tokenize(line)
    return [
        " ".join(words[start : start + n])
        for start in range(len(words) - n + 1)
    ]


def _pair_one(gram: str) -> tuple[str, int]:
    return (gram, 1)


def _add(a: int, b: int) -> int:
    return a + b


def ngram_counts(lines_rdd, n: int = 2, num_partitions: int = 4):
    """``lines -> ((gram, count), ...)`` as a lazy RDD.

    ``lines_rdd`` is any RDD of text lines (``sc.text_file(...)`` or
    ``sc.parallelize(text.splitlines(), ...)``); the result is not yet
    materialized, so callers can chain filters before acting.
    """
    return (
        lines_rdd.flat_map(partial(line_ngrams, n=n))
        .map(_pair_one)
        .reduce_by_key(_add, num_partitions)
    )


def top_ngrams(counts_rdd, k: int = 10) -> list[tuple[str, int]]:
    """The ``k`` most frequent grams, count-desc then gram-asc."""
    return sorted(counts_rdd.collect(), key=lambda kv: (-kv[1], kv[0]))[:k]


def ngram_reference(text: str, n: int = 2) -> dict[str, int]:
    """Pure-Python ground truth for grading pipeline output."""
    counts: Counter = Counter()
    for line in text.splitlines():
        counts.update(line_ngrams(line, n))
    return dict(counts)
