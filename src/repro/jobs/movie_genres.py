"""Per-genre rating statistics — assignment 1, part 1.

"The matching of the ratings for individual movies into the relevant
genres ... requires the map tasks to interact with an additional data
file.  ...the optimized implementation of this external access ... can
make the program run one order of magnitude faster."

Three side-file strategies, selected by the ``strategy`` parameter:

- ``"naive"`` — open and parse ``movies.dat`` *inside every map()
  call* ("the easiest, but inefficient approach, is to read the
  additional file from inside each mapper");
- ``"per_task"`` — read it once per task in ``setup()``;
- ``"cached"`` — "implement a Java object that reads the additional
  file once and stores the content in memory": read once per *node*,
  via the node cache.

All three produce identical answers; the benchmarks show the runtime
gap.
"""

from __future__ import annotations

from repro.mapreduce.api import Context, Job, Mapper, Reducer
from repro.mapreduce.config import JobConf
from repro.mapreduce.types import Text, Writable, record_writable
from repro.util.errors import ConfigError

#: The statistics monoid: (count, sum, min, max) merges associatively,
#: so the same class serves as combiner output and reducer input.
GenreStatsWritable = record_writable(
    "GenreStatsWritable",
    [("count", int), ("total", float), ("minimum", float), ("maximum", float)],
)

STRATEGIES = ("naive", "per_task", "cached")


def parse_movies_file(text: str) -> dict[int, list[str]]:
    """``MovieID::Title::Genre1|Genre2`` -> {movie_id: [genres]}."""
    table: dict[int, list[str]] = {}
    for line in text.splitlines():
        if not line:
            continue
        movie_id, _title, genre_field = line.split("::", 2)
        table[int(movie_id)] = genre_field.split("|")
    return table


def parse_rating(line: str) -> tuple[int, int, float] | None:
    """``UserID::MovieID::Rating::Timestamp`` -> (user, movie, rating)."""
    if not line:
        return None
    fields = line.split("::")
    if len(fields) != 4:
        return None
    return int(fields[0]), int(fields[1]), float(fields[2])


class GenreJoinMapper(Mapper):
    """Join each rating to its genres via the chosen side-file strategy."""

    MOVIES_CACHE_KEY = "movies-table"

    def setup(self, context: Context) -> None:
        self._strategy = context.get("strategy", "cached")
        if self._strategy not in STRATEGIES:
            raise ConfigError(f"unknown side-file strategy {self._strategy!r}")
        self._side_path = context.get("movies_path")
        if self._side_path is None:
            raise ConfigError("GenreStatsJob requires movies_path=...")
        self._table: dict[int, list[str]] | None = None
        if self._strategy == "per_task":
            self._table = parse_movies_file(
                context.read_side_file(self._side_path)
            )
        elif self._strategy == "cached":
            cache = context.node_cache
            if self.MOVIES_CACHE_KEY not in cache:
                cache[self.MOVIES_CACHE_KEY] = parse_movies_file(
                    context.cached_side_file(self._side_path)
                )
            self._table = cache[self.MOVIES_CACHE_KEY]

    def _genres_of(self, movie_id: int, context: Context) -> list[str]:
        if self._strategy == "naive":
            # Re-open and re-parse the side file for every single record.
            # repro: lint-ok[MRJ006] deliberate teaching anti-pattern: the
            # assignment exists to measure exactly this slowdown
            table = parse_movies_file(context.read_side_file(self._side_path))
            return table.get(movie_id, [])
        assert self._table is not None
        return self._table.get(movie_id, [])

    def map(self, key: Writable, value: Writable, context: Context) -> None:
        parsed = parse_rating(value.value)
        if parsed is None:
            return
        _user, movie, rating = parsed
        for genre in self._genres_of(movie, context):
            context.write(
                Text(genre),
                GenreStatsWritable(
                    count=1, total=rating, minimum=rating, maximum=rating
                ),
            )


class GenreStatsCombiner(Reducer):
    """Merge partial statistics (associative; safe as a combiner)."""

    def reduce(self, key: Writable, values, context: Context) -> None:
        count, total = 0, 0.0
        minimum, maximum = float("inf"), float("-inf")
        for value in values:
            count += value.count
            total += value.total
            minimum = min(minimum, value.minimum)
            maximum = max(maximum, value.maximum)
        context.write(
            key,
            GenreStatsWritable(
                count=count, total=total, minimum=minimum, maximum=maximum
            ),
        )


class GenreStatsReducer(Reducer):
    """Final descriptive statistics, rendered as a readable record."""

    def reduce(self, key: Writable, values, context: Context) -> None:
        count, total = 0, 0.0
        minimum, maximum = float("inf"), float("-inf")
        for value in values:
            count += value.count
            total += value.total
            minimum = min(minimum, value.minimum)
            maximum = max(maximum, value.maximum)
        mean = total / count if count else 0.0
        context.write(
            key,
            Text(
                f"count={count},mean={mean:.4f},min={minimum:g},max={maximum:g}"
            ),
        )


class GenreStatsJob(Job):
    """Descriptive statistics of ratings per genre.

    Parameters (via ``params``): ``movies_path`` (side file, required)
    and ``strategy`` (one of :data:`STRATEGIES`, default ``"cached"``).
    """

    mapper = GenreJoinMapper
    combiner = GenreStatsCombiner
    reducer = GenreStatsReducer
    shares_node_state = True  # side-file reads, all three strategies

    def __init__(self, conf: JobConf | None = None, **params):
        strategy = params.get("strategy", "cached")
        if strategy not in STRATEGIES:
            raise ConfigError(f"unknown side-file strategy {strategy!r}")
        conf = conf or JobConf(name=f"genre-stats-{strategy}")
        super().__init__(conf=conf, **params)


def parse_stats_value(text: str) -> dict[str, float]:
    """Parse the reducer's ``count=..,mean=..`` rendering back out."""
    out: dict[str, float] = {}
    for piece in text.split(","):
        name, value = piece.split("=")
        out[name] = float(value)
    return out
