"""Assignment 1, part 2: "a single MapReduce program to identify the
user that provides the most ratings and that user's favorite movie
genre".

The teaching point: "the students need to implement a customized Hadoop
output value class, as the information needed in the reduce step
requires several values for each key" — here
:data:`RaterProfileWritable`, carrying (rating count, favourite genre).

Implementation: mappers join ratings to genres (cached side file) and
emit ``(user, genre)``; a single reducer tallies each user's total and
per-genre counts, tracks the global maximum, and emits one winner at
``cleanup`` — so the whole answer comes from one job, as required.
"""

from __future__ import annotations

from collections import Counter

from repro.jobs.movie_genres import parse_movies_file, parse_rating
from repro.mapreduce.api import Context, Job, Mapper, Reducer
from repro.mapreduce.config import JobConf
from repro.mapreduce.types import IntWritable, Text, Writable, record_writable
from repro.util.errors import ConfigError

#: The "customized Hadoop output value class": several values per key.
RaterProfileWritable = record_writable(
    "RaterProfileWritable", [("num_ratings", int), ("favorite_genre", str)]
)


class UserGenreMapper(Mapper):
    MOVIES_CACHE_KEY = "movies-table"

    def setup(self, context: Context) -> None:
        path = context.get("movies_path")
        if path is None:
            raise ConfigError("TopRaterJob requires movies_path=...")
        cache = context.node_cache
        if self.MOVIES_CACHE_KEY not in cache:
            cache[self.MOVIES_CACHE_KEY] = parse_movies_file(
                context.cached_side_file(path)
            )
        self._table: dict[int, list[str]] = cache[self.MOVIES_CACHE_KEY]

    def map(self, key: Writable, value: Writable, context: Context) -> None:
        parsed = parse_rating(value.value)
        if parsed is None:
            return
        user, movie, _rating = parsed
        for genre in self._table.get(movie, []):
            context.write(IntWritable(user), Text(genre))


class TopRaterReducer(Reducer):
    """Track the most active user across all keys; emit at cleanup.

    Rating count is the number of *ratings*; a multi-genre movie adds
    several genre votes but only one rating, so the mapper's per-genre
    fan-out is corrected by counting distinct (deduplication is
    unnecessary: every rating contributes >= 1 genre, and the
    tie-breaking ground truth counts raw ratings, so we weight each
    genre vote by 1/genres... which Writables can't carry).  Instead the
    reducer counts genre votes for the favourite and receives the true
    rating count separately via the ``__rating__`` marker genre emitted
    once per rating by the mapper.
    """

    RATING_MARKER = "__rating__"

    def setup(self, context: Context) -> None:
        self._best_user: int | None = None
        self._best_count = -1
        self._best_genre = ""

    def reduce(self, key: Writable, values, context: Context) -> None:
        genre_counts: Counter = Counter()
        num_ratings = 0
        for value in values:
            if value.value == self.RATING_MARKER:
                num_ratings += 1
            else:
                genre_counts[value.value] += 1
        if not genre_counts:
            return
        top = max(genre_counts.values())
        favorite = min(g for g, c in genre_counts.items() if c == top)
        user = key.value
        if num_ratings > self._best_count or (
            num_ratings == self._best_count
            and (self._best_user is None or user < self._best_user)
        ):
            self._best_user = user
            self._best_count = num_ratings
            self._best_genre = favorite

    def cleanup(self, context: Context) -> None:
        if self._best_user is not None:
            context.write(
                IntWritable(self._best_user),
                RaterProfileWritable(
                    num_ratings=self._best_count,
                    favorite_genre=self._best_genre,
                ),
            )


class MarkedUserGenreMapper(UserGenreMapper):
    """Adds the once-per-rating marker the reducer counts."""

    def map(self, key: Writable, value: Writable, context: Context) -> None:
        parsed = parse_rating(value.value)
        if parsed is None:
            return
        user, movie, _rating = parsed
        context.write(IntWritable(user), Text(TopRaterReducer.RATING_MARKER))
        for genre in self._table.get(movie, []):
            context.write(IntWritable(user), Text(genre))


class TopRaterJob(Job):
    """One job, one answer: (top user, RaterProfileWritable)."""

    mapper = MarkedUserGenreMapper
    reducer = TopRaterReducer
    shares_node_state = True  # cached side file via node_cache

    def __init__(self, conf: JobConf | None = None, **params):
        conf = conf or JobConf(name="top-rater", num_reduces=1)
        conf.num_reduces = 1  # a global argmax needs a single reducer
        super().__init__(conf=conf, **params)
