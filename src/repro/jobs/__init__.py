"""The course's example and assignment MapReduce programs.

Each module implements one lecture example or assignment question from
the paper, usually in several algorithmic variants whose performance
difference *is* the lesson:

- :mod:`~repro.jobs.wordcount` — WordCount plain / reducer-as-combiner /
  in-mapper combining (the MapReduce lecture's three examples);
- :mod:`~repro.jobs.top_word` — "the word with highest count in the
  complete Shakespeare collection" (Version 1, assignment 1);
- :mod:`~repro.jobs.airline_delay` — average delay per airline, three
  implementations following Lin's "Monoidify!" design pattern;
- :mod:`~repro.jobs.movie_genres` — per-genre rating statistics with
  naive / per-task / cached side-file strategies (assignment 1);
- :mod:`~repro.jobs.top_rater` — most-active user and their favourite
  genre via a custom composite output value (assignment 1, part 2);
- :mod:`~repro.jobs.album_rating` — highest-average-rating album
  (assignment 2);
- :mod:`~repro.jobs.trace_resubmissions` — the job with the most task
  resubmissions in the Google trace (Version 1, assignment 2);
- :mod:`~repro.jobs.pagerank` — iterative PageRank on sparklite
  (cached link table, per-iteration stage reuse on the compiled
  backend);
- :mod:`~repro.jobs.ngrams` — n-gram corpus pipeline over the
  vectorised tokenizer, one shuffle.
"""

from repro.jobs.wordcount import (
    WordCountJob,
    WordCountWithCombinerJob,
    WordCountInMapperJob,
)
from repro.jobs.top_word import TopWordJob, find_top_word
from repro.jobs.airline_delay import (
    AirlineDelayNaiveJob,
    AirlineDelayCombinerJob,
    AirlineDelayInMapperJob,
)
from repro.jobs.movie_genres import GenreStatsJob
from repro.jobs.top_rater import TopRaterJob
from repro.jobs.album_rating import AlbumRatingJob, best_album_from_output
from repro.jobs.trace_resubmissions import (
    TraceResubmissionsJob,
    MaxResubmissionsJob,
    find_max_resubmission_job,
)
from repro.jobs.pagerank import (
    PageRankResult,
    generate_web_graph,
    pagerank,
    pagerank_reference,
)
from repro.jobs.ngrams import ngram_counts, ngram_reference, top_ngrams

__all__ = [
    "WordCountJob",
    "WordCountWithCombinerJob",
    "WordCountInMapperJob",
    "TopWordJob",
    "find_top_word",
    "AirlineDelayNaiveJob",
    "AirlineDelayCombinerJob",
    "AirlineDelayInMapperJob",
    "GenreStatsJob",
    "TopRaterJob",
    "AlbumRatingJob",
    "best_album_from_output",
    "TraceResubmissionsJob",
    "MaxResubmissionsJob",
    "find_max_resubmission_job",
    "PageRankResult",
    "generate_web_graph",
    "pagerank",
    "pagerank_reference",
    "ngram_counts",
    "ngram_reference",
    "top_ngrams",
]
