"""Average delay per airline — three implementations, one lesson.

"Three examples of code are provided which implement different
algorithmic choices described in [Lin's 'Monoidify!']":

1. :class:`AirlineDelayNaiveJob` — "a standard MapReduce program whose
   mappers emit the airline code and the delay time as a key-value pair
   and reducers calculate the average".  No combiner is *possible*:
   the mean of means is not the mean, and averages don't form a monoid.
2. :class:`AirlineDelayCombinerJob` — "implements a combiner, which also
   requires the implementation of a customized Hadoop Value class":
   (sum, count) pairs *are* a monoid, so the combiner is safe.
3. :class:`AirlineDelayInMapperJob` — "utilizes global memory on each
   node to implement a combining mechanism without implementing a
   combiner class": per-node accumulation flushed at task cleanup.

The benchmarks compare their shuffle bytes and map times — the
memory-vs-network trade-off the lecture narrates.
"""

from __future__ import annotations

from repro.mapreduce.api import Context, Job, Mapper, Reducer
from repro.mapreduce.types import (
    FloatWritable,
    Text,
    Writable,
    record_writable,
)

#: The "customized Hadoop Value class" of variant 2: a (sum, count)
#: pair, the monoid that makes averaging combinable.
SumCountWritable = record_writable(
    "SumCountWritable", [("total", float), ("count", int)]
)


def parse_flight(line: str) -> tuple[str, float] | None:
    """Extract (carrier, arrival delay) or None for header/cancelled."""
    if line.startswith("Year,") or not line:
        return None
    fields = line.split(",")
    if len(fields) < 13:
        return None
    carrier, arr_delay = fields[5], fields[7]
    if arr_delay == "NA":
        return None
    try:
        return carrier, float(arr_delay)
    except ValueError:
        return None


# --------------------------------------------------------------------------
# Variant 1: naive — one record per flight crosses the shuffle.


class DelayEmitMapper(Mapper):
    def map(self, key: Writable, value: Writable, context: Context) -> None:
        parsed = parse_flight(value.value)
        if parsed is not None:
            carrier, delay = parsed
            context.write(Text(carrier), FloatWritable(delay))


class AverageReducer(Reducer):
    def reduce(self, key: Writable, values, context: Context) -> None:
        total = 0.0
        count = 0
        for value in values:
            total += value.value
            count += 1
        context.write(key, FloatWritable(total / count))


class AirlineDelayNaiveJob(Job):
    mapper = DelayEmitMapper
    reducer = AverageReducer


# --------------------------------------------------------------------------
# Variant 2: combiner over (sum, count) — the monoidified version.


class SumCountMapper(Mapper):
    def map(self, key: Writable, value: Writable, context: Context) -> None:
        parsed = parse_flight(value.value)
        if parsed is not None:
            carrier, delay = parsed
            context.write(Text(carrier), SumCountWritable(total=delay, count=1))


class SumCountCombiner(Reducer):
    """Associative merge of partial (sum, count) pairs — a true monoid."""

    def reduce(self, key: Writable, values, context: Context) -> None:
        total = 0.0
        count = 0
        for value in values:
            total += value.total
            count += value.count
        context.write(key, SumCountWritable(total=total, count=count))


class SumCountAverageReducer(Reducer):
    def reduce(self, key: Writable, values, context: Context) -> None:
        total = 0.0
        count = 0
        for value in values:
            total += value.total
            count += value.count
        context.write(key, FloatWritable(total / count))


class AirlineDelayCombinerJob(Job):
    mapper = SumCountMapper
    combiner = SumCountCombiner
    reducer = SumCountAverageReducer


# --------------------------------------------------------------------------
# Variant 3: in-mapper combining via node-level "global memory".


class InMapperDelayMapper(Mapper):
    """Accumulate (sum, count) per carrier in node memory; flush at
    cleanup.  Memory traded for network: the per-task emission is one
    pair per carrier instead of one per flight."""

    CACHE_KEY = "airline-delay-accumulator"

    def setup(self, context: Context) -> None:
        # "Global memory on each node": the per-node cache survives
        # across tasks on the same TaskTracker, like a static field in a
        # reused JVM.  Each task flushes and clears what it accumulated.
        self._acc: dict[str, list[float]] = context.node_cache.setdefault(
            self.CACHE_KEY, {}
        )

    def map(self, key: Writable, value: Writable, context: Context) -> None:
        parsed = parse_flight(value.value)
        if parsed is None:
            return
        carrier, delay = parsed
        slot = self._acc.setdefault(carrier, [0.0, 0])
        slot[0] += delay
        slot[1] += 1

    def cleanup(self, context: Context) -> None:
        for carrier in sorted(self._acc):
            total, count = self._acc[carrier]
            context.write(
                Text(carrier), SumCountWritable(total=total, count=int(count))
            )
        self._acc.clear()


class AirlineDelayInMapperJob(Job):
    mapper = InMapperDelayMapper
    reducer = SumCountAverageReducer
    shares_node_state = True  # node-level "global memory" accumulator
