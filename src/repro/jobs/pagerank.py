"""Iterative PageRank on sparklite — the workload RDDs were built for.

The canonical Spark demo, runnable on either sparklite backend: the
link table is ``cache()``-ed once and every iteration joins it against
the current ranks, so under ``sparklite_backend="mapreduce"`` each
iteration compiles to a fresh join + reduce stage pair while the link
shuffle runs exactly once (per-iteration stage reuse).  Caching each
iteration's ranks also *prunes the lineage*: iteration *k*'s recompute
stops at the materialized iteration *k-1* instead of replaying the
whole chain — the property the ``pagerank_datanode_loss`` chaos drill
leans on when a DataNode dies mid-iteration.

Every transformation argument is a module-level function (or a
``functools.partial`` of one), so compiled stages stay picklable and
the pooled execution backends can ship them to worker processes.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass

from repro.util.rng import RngStream

#: The damping factor of the classic formulation.
DAMPING = 0.85


# --------------------------------------------------------------------------
# the per-element functions (module-level: picklable by reference)


def _as_link(edge: tuple) -> tuple:
    source, dest = edge
    return (source, dest)


def _zero_rank(kv: tuple) -> tuple:
    """Keep every page with outlinks present even when nothing links
    to it this iteration (the official Spark example silently drops
    such pages; a graded answer should not)."""
    return (kv[0], 0.0)


def _one_rank(kv: tuple) -> tuple:
    return (kv[0], 1.0)


def _contributions(kv: tuple) -> list[tuple]:
    page, (links, rank) = kv
    share = rank / len(links)
    return [(dest, share) for dest in links]


def _add(a: float, b: float) -> float:
    return a + b


def _dampen(total: float) -> float:
    return (1.0 - DAMPING) + DAMPING * total


# --------------------------------------------------------------------------
# the driver program


@dataclass
class PageRankResult:
    """Final ranks plus the observability the lesson is about."""

    #: ``(page, rank)`` sorted by page id — deterministic on both
    #: backends (compiled and in-memory runs are bit-identical).
    ranks: list[tuple[int, float]]
    iterations: int

    def top(self, k: int) -> list[tuple[int, float]]:
        return sorted(self.ranks, key=lambda kv: (-kv[1], kv[0]))[:k]


def pagerank(
    sc,
    edges: list[tuple[int, int]],
    iterations: int = 5,
    num_partitions: int = 3,
) -> PageRankResult:
    """Run ``iterations`` rounds of PageRank over ``edges``.

    ``sc`` is a :class:`~repro.sparklite.context.SparkLiteContext` on
    either backend.  The adjacency lists are grouped once and cached;
    each round caches its ranks before the old generation is evicted,
    so recomputation after a lost executor (or, compiled, a lost
    DataNode) replays only the newest stage.
    """
    links = (
        sc.parallelize(edges, num_partitions)
        .map(_as_link)
        .group_by_key(num_partitions)
        .cache()
    )
    ranks = links.map(_one_rank).cache()
    previous = None
    for _round in range(iterations):
        contributions = links.join(ranks, num_partitions).flat_map(
            _contributions
        )
        ranks = (
            contributions.union(links.map(_zero_rank))
            .reduce_by_key(_add, num_partitions)
            .map_values(_dampen)
            .cache()
        )
        # Materialize this generation, then retire the previous one —
        # the lineage now prunes at the freshly cached ranks.
        ranks.count()
        if previous is not None:
            previous.unpersist()
        previous = ranks
    final = sorted(ranks.collect())
    return PageRankResult(ranks=final, iterations=iterations)


def pagerank_reference(
    edges: list[tuple[int, int]], iterations: int = 5
) -> dict[int, float]:
    """Pure-Python ground truth (float-tolerant, not bit-identical:
    it sums contributions in sorted order, not shuffle order)."""
    links: dict[int, list[int]] = defaultdict(list)
    for source, dest in edges:
        links[source].append(dest)
    ranks = {page: 1.0 for page in links}
    for _round in range(iterations):
        totals: dict[int, float] = {page: 0.0 for page in links}
        for page in sorted(links):
            share = ranks.get(page, 0.0) / len(links[page])
            for dest in links[page]:
                totals[dest] = totals.get(dest, 0.0) + share
        ranks = {page: _dampen(total) for page, total in totals.items()}
    return ranks


# --------------------------------------------------------------------------
# a deterministic graph to run it on


@dataclass
class WebGraph:
    """A small scale-free-ish link graph with exact edge list."""

    edges: list[tuple[int, int]]
    num_pages: int


def generate_web_graph(
    seed: int = 0, num_pages: int = 60, avg_degree: int = 4
) -> WebGraph:
    """Preferential-attachment-flavoured graph: early pages accumulate
    in-links, so ranks separate cleanly after a few iterations."""
    rng = RngStream(seed=seed).child("jobs", "pagerank-graph")
    gen = rng.rng
    edges: set[tuple[int, int]] = set()
    for page in range(num_pages):
        degree = 1 + int(gen.integers(0, avg_degree * 2))
        for _ in range(degree):
            # Bias toward low page ids (the "old famous pages").
            dest = int(gen.integers(0, num_pages) * gen.random())
            if dest != page:
                edges.add((page, dest))
    return WebGraph(edges=sorted(edges), num_pages=num_pages)
