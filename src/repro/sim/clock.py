"""The simulated clock.

A thin mutable holder so that every component can share one notion of
"now" without holding a reference to the whole simulation engine.
Only the engine advances it.
"""

from __future__ import annotations


class SimClock:
    """Simulated time in seconds since simulation start."""

    __slots__ = ("_now",)

    def __init__(self, start: float = 0.0):
        self._now = float(start)

    @property
    def now(self) -> float:
        return self._now

    def _advance_to(self, t: float) -> None:
        """Engine-internal: move time forward (never backward)."""
        if t < self._now:
            raise ValueError(f"clock cannot move backward: {t} < {self._now}")
        self._now = t

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SimClock(now={self._now:.3f})"
