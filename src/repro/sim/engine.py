"""Event-queue simulation engine.

Callback style: components schedule ``fn(*args)`` to run at a simulated
time.  Events at equal times fire in scheduling order (a monotonically
increasing sequence number breaks ties), which keeps multi-daemon
simulations deterministic.
"""

from __future__ import annotations

import heapq
import itertools
import math
from typing import Any, Callable, Protocol

from repro.sim.clock import SimClock
from repro.util.events import EventBus


class WorkJoiner(Protocol):
    """Something holding real (wall-clock) work in flight on behalf of
    simulated events — e.g. a pooled task-execution backend.

    The contract that keeps parallel real work deterministic: work is
    submitted while the clock sits at some simulated time ``S``; its
    completion events land at ``S + duration`` with ``duration >= 0``.
    The engine therefore must *join* (resolve, in submission order) all
    in-flight work before processing any event with time strictly
    greater than ``S`` — but events at exactly ``S`` may run first,
    which is the window in which a whole wave of task launches overlaps
    on real CPUs.
    """

    def pending_since(self) -> float | None:
        """Earliest submit time of in-flight work, or None if idle."""

    def join_all(self) -> None:
        """Block until all in-flight work resolves; runs callbacks in
        submission order (callbacks may schedule new events)."""


class FaultSite:
    """Injection points consulted by simulated components.

    The default instance injects nothing, so components can call the
    hooks unconditionally — ``sim.faults.datanode_heartbeat_crash(dn)``
    is a no-op until a fault plan is installed (see ``repro.faults``).
    Hooks are keyed by stable names (node name, attempt id, retry
    number), never call order, so an armed injector draws identically
    across serial and pooled backends.
    """

    def datanode_heartbeat_crash(self, datanode) -> bool:
        """True → the DataNode crashes instead of heartbeating."""
        return False

    def tracker_heartbeat_crash(self, tracker) -> bool:
        """True → the TaskTracker dies instead of heartbeating."""
        return False

    def namenode_heartbeat_crash(self, namenode) -> bool:
        """True → the NameNode process dies while servicing this
        heartbeat (recovers only by replaying its journal)."""
        return False

    def task_attempt_fault(self, job_id: str, attempt_id: str) -> str | None:
        """An error message to raise for this attempt, or None."""
        return None

    def attempt_slowdown(self, job_id: str, attempt_id: str) -> float:
        """Multiplier (>= 1.0) applied to the attempt's simulated duration."""
        return 1.0

    def shuffle_fetch_fails(
        self, attempt_id: str, source: str, retry: int
    ) -> bool:
        """True → this shuffle fetch from ``source`` fails transiently."""
        return False


class ScheduledEvent:
    """Handle to a scheduled callback; supports cancellation."""

    __slots__ = ("time", "seq", "fn", "args", "cancelled")

    def __init__(self, time: float, seq: int, fn: Callable[..., Any], args: tuple):
        self.time = time
        self.seq = seq
        self.fn = fn
        self.args = args
        self.cancelled = False

    def cancel(self) -> None:
        self.cancelled = True

    def __lt__(self, other: "ScheduledEvent") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)


class Simulation:
    """A discrete-event simulation with a shared clock and event bus.

    >>> sim = Simulation()
    >>> fired = []
    >>> _ = sim.schedule(5.0, fired.append, "a")
    >>> _ = sim.schedule(1.0, fired.append, "b")
    >>> sim.run()
    >>> fired
    ['b', 'a']
    >>> sim.now
    5.0
    """

    def __init__(self, start: float = 0.0):
        self.clock = SimClock(start)
        self.bus = EventBus()
        self._queue: list[ScheduledEvent] = []
        self._seq = itertools.count()
        self._events_processed = 0
        self._work_joiners: list[WorkJoiner] = []
        self.faults: FaultSite = FaultSite()

    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        return self.clock.now

    @property
    def events_processed(self) -> int:
        return self._events_processed

    def pending(self) -> int:
        """Number of not-yet-cancelled events still queued."""
        return sum(1 for e in self._queue if not e.cancelled)

    # ------------------------------------------------------------------
    def schedule(
        self, delay: float, fn: Callable[..., Any], *args: Any
    ) -> ScheduledEvent:
        """Run ``fn(*args)`` after ``delay`` simulated seconds."""
        return self.schedule_at(self.now + delay, fn, *args)

    def schedule_at(
        self, time: float, fn: Callable[..., Any], *args: Any
    ) -> ScheduledEvent:
        """Run ``fn(*args)`` at absolute simulated time ``time``."""
        if time < self.now:
            raise ValueError(
                f"cannot schedule in the past: {time} < now={self.now}"
            )
        event = ScheduledEvent(time, next(self._seq), fn, args)
        heapq.heappush(self._queue, event)
        return event

    def every(
        self,
        interval: float,
        fn: Callable[..., Any],
        *args: Any,
        start_delay: float | None = None,
    ) -> Callable[[], None]:
        """Run ``fn(*args)`` every ``interval`` seconds until cancelled.

        Returns a cancel callable.  The callback may itself cancel the
        timer; re-arming happens after the call so cancellation from
        inside the callback is honoured.
        """
        if interval <= 0:
            raise ValueError("interval must be positive")
        state = {"stopped": False, "handle": None}

        def tick() -> None:
            if state["stopped"]:
                return
            fn(*args)
            if not state["stopped"]:
                state["handle"] = self.schedule(interval, tick)

        def cancel() -> None:
            state["stopped"] = True
            handle = state["handle"]
            if handle is not None:
                handle.cancel()

        first_delay = interval if start_delay is None else start_delay
        state["handle"] = self.schedule(first_delay, tick)
        return cancel

    # ------------------------------------------------------------------
    def install_faults(self, site: FaultSite) -> None:
        """Route injection hooks through ``site`` (see ``repro.faults``)."""
        self.faults = site

    def clear_faults(self) -> None:
        self.faults = FaultSite()

    # ------------------------------------------------------------------
    # real-work barrier
    def register_work_joiner(self, joiner: WorkJoiner) -> None:
        """Attach a joiner whose in-flight work gates clock advancement."""
        if joiner not in self._work_joiners:
            self._work_joiners.append(joiner)

    def _join_in_flight(self, horizon: float) -> bool:
        """Join work that must resolve before time reaches ``horizon``.

        Returns True if anything was joined (completion events may have
        been scheduled, so callers should re-examine the queue head).
        """
        joined = False
        for joiner in self._work_joiners:
            since = joiner.pending_since()
            if since is not None and horizon > since:
                joiner.join_all()
                joined = True
        return joined

    # ------------------------------------------------------------------
    def step(self) -> bool:
        """Process the next event; returns False if the queue is empty."""
        while True:
            while self._queue and self._queue[0].cancelled:
                heapq.heappop(self._queue)
            if not self._queue:
                if self._work_joiners and self._join_in_flight(math.inf):
                    continue  # joins may have scheduled new events
                return False
            if self._work_joiners and self._join_in_flight(
                self._queue[0].time
            ):
                continue  # completions may land before the old head
            event = heapq.heappop(self._queue)
            self.clock._advance_to(event.time)
            self._events_processed += 1
            event.fn(*event.args)
            return True

    def run(self, max_events: int = 10_000_000) -> None:
        """Run until the event queue drains."""
        for _ in range(max_events):
            if not self.step():
                return
        raise RuntimeError(
            f"simulation exceeded {max_events} events; likely a timer leak"
        )

    def run_until(self, time: float, max_events: int = 10_000_000) -> None:
        """Run all events with timestamp <= ``time``, then set now=time."""
        for _ in range(max_events):
            # Peek at the next live event.
            while self._queue and self._queue[0].cancelled:
                heapq.heappop(self._queue)
            if not self._queue or self._queue[0].time > time:
                # In-flight real work could still complete at <= time.
                if self._work_joiners and self._join_in_flight(
                    math.nextafter(time, math.inf)
                ):
                    continue
                self.clock._advance_to(max(self.now, time))
                return
            self.step()
        raise RuntimeError(
            f"simulation exceeded {max_events} events before t={time}"
        )

    def run_for(self, duration: float, max_events: int = 10_000_000) -> None:
        """Advance the simulation by ``duration`` seconds."""
        self.run_until(self.now + duration, max_events=max_events)
