"""Event-queue simulation engine.

Callback style: components schedule ``fn(*args)`` to run at a simulated
time.  Events at equal times fire in scheduling order (a monotonically
increasing sequence number breaks ties), which keeps multi-daemon
simulations deterministic.
"""

from __future__ import annotations

import heapq
import itertools
import math
from typing import Any, Callable, Protocol

from repro.sim.clock import SimClock
from repro.util.events import EventBus


class WorkJoiner(Protocol):
    """Something holding real (wall-clock) work in flight on behalf of
    simulated events — e.g. a pooled task-execution backend.

    The contract that keeps parallel real work deterministic: work is
    submitted while the clock sits at some simulated time ``S``; its
    completion events land at ``S + duration`` with ``duration >= 0``.
    The engine therefore must *join* (resolve, in submission order) all
    in-flight work before processing any event with time strictly
    greater than ``S`` — but events at exactly ``S`` may run first,
    which is the window in which a whole wave of task launches overlaps
    on real CPUs.
    """

    def pending_since(self) -> float | None:
        """Earliest submit time of in-flight work, or None if idle."""

    def join_all(self) -> None:
        """Block until all in-flight work resolves; runs callbacks in
        submission order (callbacks may schedule new events)."""


class FaultSite:
    """Injection points consulted by simulated components.

    The default instance injects nothing, so components can call the
    hooks unconditionally — ``sim.faults.datanode_heartbeat_crash(dn)``
    is a no-op until a fault plan is installed (see ``repro.faults``).
    Hooks are keyed by stable names (node name, attempt id, retry
    number), never call order, so an armed injector draws identically
    across serial and pooled backends.
    """

    def datanode_heartbeat_crash(self, datanode) -> bool:
        """True → the DataNode crashes instead of heartbeating."""
        return False

    def tracker_heartbeat_crash(self, tracker) -> bool:
        """True → the TaskTracker dies instead of heartbeating."""
        return False

    def namenode_heartbeat_crash(self, namenode) -> bool:
        """True → the NameNode process dies while servicing this
        heartbeat (recovers only by replaying its journal)."""
        return False

    def task_attempt_fault(self, job_id: str, attempt_id: str) -> str | None:
        """An error message to raise for this attempt, or None."""
        return None

    def attempt_slowdown(self, job_id: str, attempt_id: str) -> float:
        """Multiplier (>= 1.0) applied to the attempt's simulated duration."""
        return 1.0

    def shuffle_fetch_fails(
        self, attempt_id: str, source: str, retry: int
    ) -> bool:
        """True → this shuffle fetch from ``source`` fails transiently."""
        return False


class ScheduledEvent:
    """Handle to a scheduled callback; supports cancellation.

    Cancellation is O(1): the event is flagged and the owning engine's
    live-event counter is decremented; the heap entry itself rots in
    place until it reaches the head or a compaction sweeps it out.
    """

    __slots__ = ("time", "seq", "fn", "args", "cancelled", "_sim")

    def __init__(self, time: float, seq: int, fn: Callable[..., Any], args: tuple):
        self.time = time
        self.seq = seq
        self.fn = fn
        self.args = args
        self.cancelled = False
        self._sim: "Simulation | None" = None

    def cancel(self) -> None:
        if self.cancelled:
            return
        self.cancelled = True
        if self._sim is not None:
            self._sim._note_cancel()
            self._sim = None

    def __lt__(self, other: "ScheduledEvent") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)


class TimerWheel:
    """One engine event per tick shared by every fixed-interval timer.

    10k DataNode heartbeats at the same instant used to be 10k
    closure-per-tick :meth:`Simulation.every` timers — 10k heap pushes
    and pops per interval.  A wheel is *one* scheduled event per tick
    that fans out over a subscriber index, so the engine's per-tick
    work is O(1) heap traffic plus the fan-out itself.

    Determinism: subscribers fire in subscription order (a monotonic
    token), and a subscriber joining at time ``s`` first fires at the
    first tick strictly after ``s`` — mirroring ``every()``'s
    "first fire at s + interval" contract up to phase alignment (wheel
    ticks sit on multiples of ``interval`` from the wheel's creation
    time, so co-interval daemons share one event).
    """

    __slots__ = ("sim", "interval", "epoch", "_subs", "_tokens", "_pending")

    def __init__(self, sim: "Simulation", interval: float):
        if interval <= 0:
            raise ValueError("interval must be positive")
        self.sim = sim
        self.interval = interval
        self.epoch = sim.now
        #: token -> (fn, args, joined_at); insertion order == token order.
        self._subs: dict[int, tuple[Callable[..., Any], tuple, float]] = {}
        self._tokens = itertools.count()
        self._pending: ScheduledEvent | None = None

    def __len__(self) -> int:
        return len(self._subs)

    def _next_tick(self) -> float:
        """First tick time strictly after now, on the wheel's phase."""
        k = math.floor((self.sim.now - self.epoch) / self.interval) + 1
        t = self.epoch + k * self.interval
        while t <= self.sim.now:  # float guard at large k
            k += 1
            t = self.epoch + k * self.interval
        return t

    def _arm(self) -> None:
        if self._pending is None and self._subs:
            self._pending = self.sim.schedule_at(self._next_tick(), self._tick)

    def _tick(self) -> None:
        self._pending = None
        now = self.sim.now
        for token, (fn, args, joined_at) in sorted(self._subs.items()):
            if joined_at >= now:
                continue  # first fire is the next tick after joining
            if token in self._subs:  # not unsubscribed mid-fan-out
                fn(*args)
        self._arm()

    def subscribe(self, fn: Callable[..., Any], *args: Any) -> Callable[[], None]:
        """Fire ``fn(*args)`` every tick until cancelled; returns the
        cancel callable (same contract as :meth:`Simulation.every`)."""
        token = next(self._tokens)
        self._subs[token] = (fn, args, self.sim.now)
        self._arm()

        def cancel() -> None:
            self._subs.pop(token, None)
            if not self._subs and self._pending is not None:
                self._pending.cancel()
                self._pending = None

        return cancel


class Simulation:
    """A discrete-event simulation with a shared clock and event bus.

    >>> sim = Simulation()
    >>> fired = []
    >>> _ = sim.schedule(5.0, fired.append, "a")
    >>> _ = sim.schedule(1.0, fired.append, "b")
    >>> sim.run()
    >>> fired
    ['b', 'a']
    >>> sim.now
    5.0
    """

    #: Compact the heap once this many cancelled events rot in it (and
    #: they outnumber the live ones) — keeps ``len(queue)`` O(live).
    COMPACT_MIN_CANCELLED = 64

    def __init__(self, start: float = 0.0):
        self.clock = SimClock(start)
        self.bus = EventBus()
        self._queue: list[ScheduledEvent] = []
        self._seq = itertools.count()
        self._events_processed = 0
        self._cancelled_in_queue = 0
        self._wheels: dict[float, TimerWheel] = {}
        self._work_joiners: list[WorkJoiner] = []
        self.faults: FaultSite = FaultSite()

    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        return self.clock.now

    @property
    def events_processed(self) -> int:
        return self._events_processed

    def pending(self) -> int:
        """Number of not-yet-cancelled events still queued — O(1),
        maintained by a live-event counter instead of a queue scan."""
        return len(self._queue) - self._cancelled_in_queue

    def _note_cancel(self) -> None:
        """A queued event was cancelled; compact once rot dominates."""
        self._cancelled_in_queue += 1
        if (
            self._cancelled_in_queue >= self.COMPACT_MIN_CANCELLED
            and self._cancelled_in_queue * 2 >= len(self._queue)
        ):
            self._compact()

    def _compact(self) -> None:
        """Drop cancelled events and re-heapify (ordering unchanged:
        the heap invariant is on (time, seq), which filtering keeps)."""
        self._queue = [e for e in self._queue if not e.cancelled]
        heapq.heapify(self._queue)
        self._cancelled_in_queue = 0

    def _pop_event(self) -> ScheduledEvent:
        """Heap-pop one event, keeping the cancellation census exact."""
        event = heapq.heappop(self._queue)
        if event.cancelled:
            self._cancelled_in_queue -= 1
        else:
            event._sim = None  # no longer in the queue; cancel() is a no-op decrement-wise
        return event

    # ------------------------------------------------------------------
    def schedule(
        self, delay: float, fn: Callable[..., Any], *args: Any
    ) -> ScheduledEvent:
        """Run ``fn(*args)`` after ``delay`` simulated seconds."""
        return self.schedule_at(self.now + delay, fn, *args)

    def schedule_at(
        self, time: float, fn: Callable[..., Any], *args: Any
    ) -> ScheduledEvent:
        """Run ``fn(*args)`` at absolute simulated time ``time``."""
        if time < self.now:
            raise ValueError(
                f"cannot schedule in the past: {time} < now={self.now}"
            )
        event = ScheduledEvent(time, next(self._seq), fn, args)
        event._sim = self
        heapq.heappush(self._queue, event)
        return event

    def wheel(self, interval: float) -> TimerWheel:
        """The shared :class:`TimerWheel` for ``interval`` (created on
        first request).  All fixed-interval daemons with the same
        interval ride one wheel: one engine event per tick, fanning out
        over subscribers in subscription order."""
        wheel = self._wheels.get(interval)
        if wheel is None:
            wheel = TimerWheel(self, interval)
            self._wheels[interval] = wheel
        return wheel

    def every(
        self,
        interval: float,
        fn: Callable[..., Any],
        *args: Any,
        start_delay: float | None = None,
    ) -> Callable[[], None]:
        """Run ``fn(*args)`` every ``interval`` seconds until cancelled.

        Returns a cancel callable.  The callback may itself cancel the
        timer; re-arming happens after the call so cancellation from
        inside the callback is honoured.
        """
        if interval <= 0:
            raise ValueError("interval must be positive")
        state = {"stopped": False, "handle": None}

        def tick() -> None:
            if state["stopped"]:
                return
            fn(*args)
            if not state["stopped"]:
                state["handle"] = self.schedule(interval, tick)

        def cancel() -> None:
            state["stopped"] = True
            handle = state["handle"]
            if handle is not None:
                handle.cancel()

        first_delay = interval if start_delay is None else start_delay
        state["handle"] = self.schedule(first_delay, tick)
        return cancel

    # ------------------------------------------------------------------
    def snapshot(self, *roots: Any):
        """Checkpoint the simulation (and any ``roots`` — platform,
        cluster, scenario state) for bit-identical resume.  Returns a
        :class:`repro.sim.snapshot.SimSnapshot`; ``restore()`` yields an
        independent ``(sim, roots)`` copy whose continued run replays
        exactly the trace this one would have produced."""
        from repro.sim.snapshot import SimSnapshot

        return SimSnapshot(self, roots)

    # ------------------------------------------------------------------
    def install_faults(self, site: FaultSite) -> None:
        """Route injection hooks through ``site`` (see ``repro.faults``)."""
        self.faults = site

    def clear_faults(self) -> None:
        self.faults = FaultSite()

    # ------------------------------------------------------------------
    # real-work barrier
    def register_work_joiner(self, joiner: WorkJoiner) -> None:
        """Attach a joiner whose in-flight work gates clock advancement."""
        if joiner not in self._work_joiners:
            self._work_joiners.append(joiner)

    def _join_in_flight(self, horizon: float) -> bool:
        """Join work that must resolve before time reaches ``horizon``.

        Returns True if anything was joined (completion events may have
        been scheduled, so callers should re-examine the queue head).
        """
        joined = False
        for joiner in self._work_joiners:
            since = joiner.pending_since()
            if since is not None and horizon > since:
                joiner.join_all()
                joined = True
        return joined

    # ------------------------------------------------------------------
    def step(self) -> bool:
        """Process the next event; returns False if the queue is empty."""
        while True:
            while self._queue and self._queue[0].cancelled:
                self._pop_event()
            if not self._queue:
                if self._work_joiners and self._join_in_flight(math.inf):
                    continue  # joins may have scheduled new events
                return False
            if self._work_joiners and self._join_in_flight(
                self._queue[0].time
            ):
                continue  # completions may land before the old head
            event = self._pop_event()
            self.clock._advance_to(event.time)
            self._events_processed += 1
            event.fn(*event.args)
            return True

    def run(self, max_events: int = 10_000_000) -> None:
        """Run until the event queue drains."""
        for _ in range(max_events):
            if not self.step():
                return
        raise RuntimeError(
            f"simulation exceeded {max_events} events; likely a timer leak"
        )

    def run_until(self, time: float, max_events: int = 10_000_000) -> None:
        """Run all events with timestamp <= ``time``, then set now=time."""
        for _ in range(max_events):
            # Peek at the next live event.
            while self._queue and self._queue[0].cancelled:
                self._pop_event()
            if not self._queue or self._queue[0].time > time:
                # In-flight real work could still complete at <= time.
                if self._work_joiners and self._join_in_flight(
                    math.nextafter(time, math.inf)
                ):
                    continue
                self.clock._advance_to(max(self.now, time))
                return
            self.step()
        raise RuntimeError(
            f"simulation exceeded {max_events} events before t={time}"
        )

    def run_for(self, duration: float, max_events: int = 10_000_000) -> None:
        """Advance the simulation by ``duration`` seconds."""
        self.run_until(self.now + duration, max_events=max_events)
