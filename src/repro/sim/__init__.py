"""Discrete-event simulation kernel.

The whole stack runs on one :class:`~repro.sim.engine.Simulation`: daemons
schedule heartbeats, tasks schedule completions, the batch scheduler
schedules cleanup sweeps.  Determinism comes from strict
``(time, sequence)`` ordering of events.
"""

from repro.sim.clock import SimClock
from repro.sim.engine import Simulation, ScheduledEvent

__all__ = ["SimClock", "Simulation", "ScheduledEvent"]
