"""Bit-identical simulation checkpoints.

``Simulation.snapshot(*roots)`` captures the full simulation graph —
event queue, clock, RNG streams, timer wheels, and every component
reachable from the given roots — as one deep copy sharing a single
memo, so cross-references stay consistent.  ``SimSnapshot.restore()``
re-materialises an independent copy; running it produces *exactly* the
trace the original would have produced, event for event.

Two things make this non-trivial:

1.  ``copy.deepcopy`` treats function objects as atomic.  The engine's
    queue is full of closures (``every()`` ticks, classroom pollers,
    retry continuations) whose cells capture mutable state; sharing the
    function between original and copy would let the restored run
    mutate the original's state.  ``_copy_function`` rebuilds closures
    with deep-copied cells, registering the copy in the memo *before*
    filling cells so self-referential closures terminate.

2.  Work-joiner backends (process/thread pools) hold OS resources that
    cannot be copied.  They are pre-seeded into the memo so both runs
    share them by reference — safe because a snapshot is refused while
    any joiner has work in flight.
"""

from __future__ import annotations

import copy
import types
from typing import TYPE_CHECKING, Any

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.engine import Simulation


class SnapshotError(RuntimeError):
    """Raised when the simulation cannot be checkpointed right now."""


def _copy_function(fn: types.FunctionType, memo: dict) -> types.FunctionType:
    """Deep-copy a function, including its closure cells.

    Functions without closures carry no per-instance mutable state we
    care about, so they are shared (and memoised as themselves).
    """
    if fn.__closure__ is None:
        memo[id(fn)] = fn
        return fn
    new_fn = types.FunctionType(
        fn.__code__,
        fn.__globals__,
        fn.__name__,
        fn.__defaults__,
        tuple(types.CellType() for _ in fn.__closure__),
    )
    # Register before filling cells: a closure over itself (or over
    # something that reaches it) must resolve to the copy, not recurse.
    memo[id(fn)] = new_fn
    if fn.__defaults__ is not None:
        new_fn.__defaults__ = copy.deepcopy(fn.__defaults__, memo)
    if fn.__kwdefaults__ is not None:
        new_fn.__kwdefaults__ = copy.deepcopy(fn.__kwdefaults__, memo)
    if fn.__dict__:
        new_fn.__dict__.update(copy.deepcopy(fn.__dict__, memo))
    assert new_fn.__closure__ is not None
    for new_cell, old_cell in zip(new_fn.__closure__, fn.__closure__):
        try:
            contents = old_cell.cell_contents
        except ValueError:  # genuinely empty cell — leave the copy empty
            continue
        new_cell.cell_contents = copy.deepcopy(contents, memo)
    return new_fn


def _graph_copy(obj: Any, shared: tuple[Any, ...]) -> Any:
    """``copy.deepcopy`` with closure-copying functions and by-reference
    sharing of the ``shared`` objects (work-joiner backends)."""
    memo: dict = {id(s): s for s in shared}
    # Keep the shared originals alive for the duration of the copy so
    # their ids cannot be recycled (deepcopy's own keep-alive slot).
    memo[id(memo)] = list(shared)
    dispatch = copy._deepcopy_dispatch  # type: ignore[attr-defined]
    previous = dispatch.get(types.FunctionType)
    dispatch[types.FunctionType] = _copy_function
    try:
        return copy.deepcopy(obj, memo)
    finally:
        if previous is None:
            del dispatch[types.FunctionType]
        else:  # pragma: no cover - nested snapshot, not reachable today
            dispatch[types.FunctionType] = previous


class SimSnapshot:
    """A restorable checkpoint of a simulation and chosen root objects.

    Restoring is non-destructive and repeatable: each ``restore()``
    call re-copies the frozen payload, so one snapshot can seed many
    independent continuations (e.g. replay verification).
    """

    def __init__(self, sim: "Simulation", roots: tuple[Any, ...]):
        for joiner in sim._work_joiners:
            if joiner.pending_since() is not None:
                raise SnapshotError(
                    "cannot snapshot with work in flight; run to a "
                    "barrier (join) first"
                )
        self._shared = tuple(sim._work_joiners)
        self._payload = _graph_copy((sim, roots), self._shared)

    def restore(self) -> tuple["Simulation", tuple[Any, ...]]:
        """Materialise an independent (sim, roots) pair from the
        checkpoint.  Work-joiner backends are shared by reference."""
        sim, roots = _graph_copy(self._payload, self._shared)
        return sim, roots
