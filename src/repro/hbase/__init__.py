"""HBase-lite: the "distributed data store" of the Version-4 lecture.

Fall 2013 "spent one lecture introducing HBase/Hive to the students to
provide a more comprehensive view of the Hadoop ecosystem", and the
paper's conclusion names the "distributed data store [Apache HBase]" as
a component future course versions should cover.  This package is that
coverage, executable: a log-structured, region-sharded, column-family
store layered on this repository's HDFS.

The architecture follows HBase 0.94 (the release contemporary with the
course), simplified but honest:

- :class:`~repro.hbase.model.KeyValue` cells with timestamps and
  tombstones;
- a per-region :class:`~repro.hbase.memstore.MemStore` flushed into
  immutable, sorted :class:`~repro.hbase.hfile.HFile`\\ s stored *in
  HDFS* (you can watch the blocks appear with ``hadoop fs -ls``);
- :class:`~repro.hbase.region.Region`\\ s covering row-key ranges, with
  minor compaction and midpoint splits;
- :class:`~repro.hbase.server.RegionServer`\\ s with write-ahead logs on
  HDFS, so a crashed server's unflushed edits replay on reassignment;
- an :class:`~repro.hbase.master.HMaster` owning the table catalog,
  region assignment and failure recovery;
- a client :class:`~repro.hbase.client.Table` API: put / get / delete /
  scan.
"""

from repro.hbase.model import Cell, Delete, Get, Put, Scan
from repro.hbase.cluster import HBaseCluster

__all__ = ["Cell", "Put", "Get", "Delete", "Scan", "HBaseCluster"]
