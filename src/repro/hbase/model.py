"""HBase data model: cells, mutations, reads.

A cell is ``(row, family, qualifier, timestamp) -> value``; rows are
sorted lexicographically (the property region sharding relies on);
deletes are tombstone cells that win over older values until a
compaction drops both.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.util.errors import ConfigError

#: Field separator in serialized cells; forbidden in keys.
SEP = "\x01"
#: Tombstone marker value.
TOMBSTONE = "\x00__tombstone__"


def _check_key(part: str, what: str) -> str:
    if not part:
        raise ConfigError(f"{what} must be non-empty")
    if SEP in part or "\n" in part:
        raise ConfigError(f"{what} contains a reserved character")
    return part


@dataclass(frozen=True, order=True)
class CellKey:
    """Sort key: row, family, qualifier, then *newest first*."""

    row: str
    family: str
    qualifier: str
    #: Negated timestamp so higher (newer) timestamps sort first.
    neg_timestamp: int

    @property
    def timestamp(self) -> int:
        return -self.neg_timestamp


@dataclass(frozen=True)
class Cell:
    """One versioned cell."""

    row: str
    family: str
    qualifier: str
    timestamp: int
    value: str

    @property
    def key(self) -> CellKey:
        return CellKey(self.row, self.family, self.qualifier, -self.timestamp)

    @property
    def is_tombstone(self) -> bool:
        return self.value == TOMBSTONE

    def encode(self) -> str:
        return SEP.join(
            [self.row, self.family, self.qualifier, str(self.timestamp),
             self.value]
        )

    @classmethod
    def decode(cls, line: str) -> "Cell":
        row, family, qualifier, timestamp, value = line.split(SEP, 4)
        return cls(row, family, qualifier, int(timestamp), value)


@dataclass
class Put:
    """Insert/update one row's cells (one or more columns)."""

    row: str
    values: dict[tuple[str, str], str] = field(default_factory=dict)

    def add(self, family: str, qualifier: str, value: str) -> "Put":
        _check_key(self.row, "row key")
        _check_key(family, "column family")
        _check_key(qualifier, "qualifier")
        if SEP in value or "\n" in value:
            raise ConfigError("value contains a reserved character")
        self.values[(family, qualifier)] = value
        return self

    def cells(self, timestamp: int) -> list[Cell]:
        if not self.values:
            raise ConfigError("Put has no columns")
        return [
            Cell(self.row, family, qualifier, timestamp, value)
            for (family, qualifier), value in sorted(self.values.items())
        ]


@dataclass
class Delete:
    """Delete a whole row, or specific columns of it."""

    row: str
    columns: list[tuple[str, str]] = field(default_factory=list)

    def add_column(self, family: str, qualifier: str) -> "Delete":
        self.columns.append((family, qualifier))
        return self


@dataclass
class Get:
    """Read one row (optionally restricted to columns)."""

    row: str
    columns: list[tuple[str, str]] | None = None


@dataclass
class Scan:
    """Range scan over ``[start_row, stop_row)`` (None = open end)."""

    start_row: str | None = None
    stop_row: str | None = None
    columns: list[tuple[str, str]] | None = None
    limit: int | None = None


@dataclass
class RowResult:
    """A materialized row: latest visible value per column."""

    row: str
    cells: dict[tuple[str, str], str] = field(default_factory=dict)

    def value(self, family: str, qualifier: str) -> str | None:
        return self.cells.get((family, qualifier))

    @property
    def empty(self) -> bool:
        return not self.cells
