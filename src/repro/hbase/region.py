"""Regions: contiguous row-key ranges of a table.

A region owns a MemStore and a set of HFiles in HDFS.  Reads merge all
of them, newest timestamp wins, tombstones hide older values.  Flushes
turn the MemStore into a new HFile; compactions merge HFiles (dropping
shadowed versions and tombstones); a region past the split threshold
splits at its midpoint row.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.hbase.hfile import HFile, delete_hfile, read_hfile, write_hfile
from repro.hbase.memstore import MemStore
from repro.hbase.model import TOMBSTONE, Cell, RowResult
from repro.hdfs.client import DFSClient


@dataclass(frozen=True)
class RegionSpec:
    """Identity of a region: table + key range [start, stop)."""

    table: str
    start_row: str | None  # None = open start
    stop_row: str | None  # None = open end
    region_id: int

    @property
    def name(self) -> str:
        start = self.start_row or ""
        return f"{self.table},{start},{self.region_id}"

    def contains(self, row: str) -> bool:
        if self.start_row is not None and row < self.start_row:
            return False
        if self.stop_row is not None and row >= self.stop_row:
            return False
        return True


@dataclass
class RegionConfig:
    """Flush/compaction/split thresholds (hbase-site.xml, in spirit)."""

    memstore_flush_bytes: int = 8 * 1024
    compaction_min_hfiles: int = 4
    split_threshold_bytes: int = 64 * 1024


class Region:
    """One live region hosted by a RegionServer."""

    def __init__(
        self,
        spec: RegionSpec,
        client: DFSClient,
        config: RegionConfig,
        hfiles: list[HFile] | None = None,
    ):
        self.spec = spec
        self.client = client
        self.config = config
        self.memstore = MemStore()
        self.hfiles: list[HFile] = list(hfiles or [])
        self.flushes = 0
        self.compactions = 0

    # ------------------------------------------------------------------
    @property
    def directory(self) -> str:
        return f"/hbase/{self.spec.table}/region_{self.spec.region_id}"

    def total_bytes(self) -> int:
        return self.memstore.size_bytes + sum(h.size_bytes for h in self.hfiles)

    # -- writes ----------------------------------------------------------
    def apply(self, cell: Cell) -> None:
        """Apply one (already WAL-logged) cell edit."""
        assert self.spec.contains(cell.row), "routed to the wrong region"
        self.memstore.add(cell)
        if self.memstore.size_bytes >= self.config.memstore_flush_bytes:
            self.flush()

    def flush(self) -> HFile | None:
        """Persist the MemStore as a new HFile."""
        if self.memstore.empty:
            return None
        hfile = write_hfile(
            self.client, self.directory, self.memstore.sorted_cells()
        )
        self.hfiles.append(hfile)
        self.memstore.clear()
        self.flushes += 1
        if len(self.hfiles) >= self.config.compaction_min_hfiles:
            self.compact()
        return hfile

    def compact(self) -> None:
        """Merge all HFiles into one, dropping shadowed cells and
        tombstones (a major compaction)."""
        if len(self.hfiles) <= 1:
            return
        visible = self._visible_cells(None, None, include_memstore=False)
        merged: list[Cell] = [
            Cell(row, family, qualifier, ts, value)
            for (row, family, qualifier), (ts, value) in sorted(visible.items())
            if value != TOMBSTONE
        ]
        old = list(self.hfiles)
        new_hfile = write_hfile(self.client, self.directory, merged)
        self.hfiles = [new_hfile]
        for hfile in old:
            delete_hfile(self.client, hfile)
        self.compactions += 1

    # -- reads -----------------------------------------------------------
    def _visible_cells(
        self,
        start_row: str | None,
        stop_row: str | None,
        include_memstore: bool = True,
    ) -> dict[tuple[str, str, str], tuple[int, str]]:
        """(row, family, qualifier) -> (winning timestamp, value)."""
        winners: dict[tuple[str, str, str], tuple[int, str]] = {}

        def consider(cell: Cell) -> None:
            if start_row is not None and cell.row < start_row:
                return
            if stop_row is not None and cell.row >= stop_row:
                return
            key = (cell.row, cell.family, cell.qualifier)
            current = winners.get(key)
            if current is None or cell.timestamp > current[0]:
                winners[key] = (cell.timestamp, cell.value)

        for hfile in self.hfiles:
            if not hfile.overlaps(start_row, stop_row):
                continue
            for cell in read_hfile(self.client, hfile):
                consider(cell)
        if include_memstore:
            # Memstore last: at equal timestamps the newest write wins.
            for cell in self.memstore.scan(start_row, stop_row):
                key = (cell.row, cell.family, cell.qualifier)
                current = winners.get(key)
                if current is None or cell.timestamp >= current[0]:
                    winners[key] = (cell.timestamp, cell.value)
        return winners

    def get_row(
        self, row: str, columns: list[tuple[str, str]] | None = None
    ) -> RowResult:
        visible = self._visible_cells(row, row + "\x00")
        result = RowResult(row=row)
        for (r, family, qualifier), (_ts, value) in visible.items():
            if r != row or value == TOMBSTONE:
                continue
            if columns is not None and (family, qualifier) not in columns:
                continue
            result.cells[(family, qualifier)] = value
        return result

    def scan_rows(
        self,
        start_row: str | None,
        stop_row: str | None,
        columns: list[tuple[str, str]] | None = None,
    ) -> list[RowResult]:
        visible = self._visible_cells(start_row, stop_row)
        rows: dict[str, RowResult] = {}
        for (row, family, qualifier), (_ts, value) in sorted(visible.items()):
            if value == TOMBSTONE:
                continue
            if columns is not None and (family, qualifier) not in columns:
                continue
            rows.setdefault(row, RowResult(row=row)).cells[
                (family, qualifier)
            ] = value
        return [rows[row] for row in sorted(rows)]

    # -- split -----------------------------------------------------------
    def should_split(self) -> bool:
        return self.total_bytes() >= self.config.split_threshold_bytes

    def midpoint_row(self) -> str | None:
        """The median visible row — the split point."""
        rows = sorted(
            {key[0] for key in self._visible_cells(None, None)}
        )
        if len(rows) < 2:
            return None
        mid = rows[len(rows) // 2]
        if self.spec.start_row is not None and mid <= self.spec.start_row:
            return None
        return mid

    def all_cells(self) -> list[Cell]:
        """Every live cell (for split redistribution), newest versions."""
        visible = self._visible_cells(None, None)
        return [
            Cell(row, family, qualifier, ts, value)
            for (row, family, qualifier), (ts, value) in sorted(visible.items())
        ]

    def drop_storage(self) -> None:
        """Delete this region's HFiles (after a split or table drop)."""
        for hfile in self.hfiles:
            delete_hfile(self.client, hfile)
        self.hfiles.clear()
        self.memstore.clear()
