"""The HBase client API: Table handles routed through the master."""

from __future__ import annotations

import itertools

from repro.hbase.master import HMaster
from repro.hbase.model import (
    TOMBSTONE,
    Cell,
    Delete,
    Get,
    Put,
    RowResult,
    Scan,
)
from repro.util.errors import ConfigError


class Table:
    """A client handle to one table."""

    _ts = itertools.count(1)

    def __init__(self, master: HMaster, name: str):
        self.master = master
        self.name = name
        self.descriptor = master.describe(name)

    def _timestamp(self) -> int:
        return next(self._ts)

    def _check_families(self, pairs) -> None:
        for family, _qualifier in pairs:
            if family not in self.descriptor.families:
                raise ConfigError(
                    f"table {self.name!r} has no column family {family!r} "
                    f"(declared: {self.descriptor.families})"
                )

    # ------------------------------------------------------------------
    def put(self, put: Put) -> None:
        self._check_families(put.values.keys())
        entry = self.master.locate(self.name, put.row)
        server = self.master.servers[entry.server]
        timestamp = self._timestamp()
        for cell in put.cells(timestamp):
            server.apply_edit(entry.spec.name, cell)
        self.master.maybe_split(self.master.meta[entry.spec.name])

    def get(self, get: Get) -> RowResult:
        if get.columns:
            self._check_families(get.columns)
        entry = self.master.locate(self.name, get.row)
        region = self.master.region_handle(entry)
        return region.get_row(get.row, columns=get.columns)

    def delete(self, delete: Delete) -> None:
        entry = self.master.locate(self.name, delete.row)
        server = self.master.servers[entry.server]
        region = self.master.region_handle(entry)
        timestamp = self._timestamp()
        columns = list(delete.columns)
        if not columns:
            # Whole-row delete: tombstone every visible column.
            current = region.get_row(delete.row)
            columns = sorted(current.cells)
        for family, qualifier in columns:
            cell = Cell(delete.row, family, qualifier, timestamp, TOMBSTONE)
            server.apply_edit(entry.spec.name, cell)

    def scan(self, scan: Scan | None = None) -> list[RowResult]:
        scan = scan or Scan()
        if scan.columns:
            self._check_families(scan.columns)
        results: list[RowResult] = []
        for entry in self.master.regions_of(self.name):
            spec = entry.spec
            if scan.start_row is not None and spec.stop_row is not None:
                if spec.stop_row <= scan.start_row:
                    continue
            if scan.stop_row is not None and spec.start_row is not None:
                if spec.start_row >= scan.stop_row:
                    continue
            region = self.master.region_handle(entry)
            results.extend(
                region.scan_rows(
                    scan.start_row, scan.stop_row, columns=scan.columns
                )
            )
            if scan.limit is not None and len(results) >= scan.limit:
                return results[: scan.limit]
        return results

    # ------------------------------------------------------------------
    def count(self) -> int:
        return len(self.scan())

    def flush(self) -> None:
        """Flush every region of this table (visible in ``fs -ls``)."""
        for entry in self.master.regions_of(self.name):
            self.master.region_handle(entry).flush()
