"""The HMaster: catalog, assignment, splits, failure recovery."""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

from repro.hbase.model import Cell
from repro.hbase.region import Region, RegionConfig, RegionSpec
from repro.hbase.server import RegionServer, replay_wal
from repro.util.errors import ConfigError, ReproError


class TableNotFoundError(ReproError):
    pass


@dataclass
class TableDescriptor:
    """Catalog entry: table name + declared column families."""

    name: str
    families: tuple[str, ...]
    enabled: bool = True


@dataclass
class RegionEntry:
    """META-table entry: a region and where it lives."""

    spec: RegionSpec
    server: str


class HMaster:
    """Owns the catalog and the region -> server assignment."""

    def __init__(
        self,
        servers: dict[str, RegionServer],
        config: RegionConfig | None = None,
    ):
        if not servers:
            raise ConfigError("HBase needs at least one RegionServer")
        self.servers = servers
        self.config = config or RegionConfig()
        self.tables: dict[str, TableDescriptor] = {}
        #: region name -> entry, the META table.
        self.meta: dict[str, RegionEntry] = {}
        self._region_ids = itertools.count(1)
        self._assign_cursor = 0
        self.splits_performed = 0
        self.recoveries_performed = 0

    # ------------------------------------------------------------------
    # catalog
    def create_table(self, name: str, families: list[str]) -> TableDescriptor:
        if name in self.tables:
            raise ConfigError(f"table {name!r} already exists")
        if not families:
            raise ConfigError("a table needs at least one column family")
        descriptor = TableDescriptor(name=name, families=tuple(families))
        self.tables[name] = descriptor
        # One region covering the whole key space, to start.
        spec = RegionSpec(
            table=name, start_row=None, stop_row=None,
            region_id=next(self._region_ids),
        )
        self._assign(spec, hfiles=None)
        return descriptor

    def drop_table(self, name: str) -> None:
        descriptor = self.tables.pop(name, None)
        if descriptor is None:
            raise TableNotFoundError(name)
        for region_name in [
            rn for rn, e in self.meta.items() if e.spec.table == name
        ]:
            entry = self.meta.pop(region_name)
            server = self.servers[entry.server]
            if server.alive and region_name in server.regions:
                region = server.regions.pop(region_name)
                region.drop_storage()

    def describe(self, name: str) -> TableDescriptor:
        try:
            return self.tables[name]
        except KeyError:
            raise TableNotFoundError(name) from None

    # ------------------------------------------------------------------
    # assignment
    def _live_servers(self) -> list[str]:
        return sorted(n for n, s in self.servers.items() if s.alive)

    def _assign(self, spec: RegionSpec, hfiles) -> Region:
        live = self._live_servers()
        if not live:
            raise ReproError("no live RegionServers to assign to")
        server_name = live[self._assign_cursor % len(live)]
        self._assign_cursor += 1
        region = self.servers[server_name].open_region(spec, hfiles=hfiles)
        self.meta[spec.name] = RegionEntry(spec=spec, server=server_name)
        return region

    def regions_of(self, table: str) -> list[RegionEntry]:
        self.describe(table)
        entries = [e for e in self.meta.values() if e.spec.table == table]
        return sorted(entries, key=lambda e: (e.spec.start_row or ""))

    def locate(self, table: str, row: str) -> RegionEntry:
        for entry in self.regions_of(table):
            if entry.spec.contains(row):
                return entry
        raise ReproError(f"no region covers row {row!r} of {table!r}")

    def region_handle(self, entry: RegionEntry) -> Region:
        return self.servers[entry.server].region_for(entry.spec.name)

    # ------------------------------------------------------------------
    # splits
    def maybe_split(self, entry: RegionEntry) -> bool:
        """Split a region past the size threshold at its midpoint."""
        server = self.servers[entry.server]
        if not server.alive:
            return False
        region = server.region_for(entry.spec.name)
        if not region.should_split():
            return False
        midpoint = region.midpoint_row()
        if midpoint is None:
            return False
        cells = region.all_cells()
        # Retire the parent.
        server.regions.pop(entry.spec.name)
        region.drop_storage()
        del self.meta[entry.spec.name]
        # Two daughters covering the halves.
        left_spec = RegionSpec(
            table=entry.spec.table,
            start_row=entry.spec.start_row,
            stop_row=midpoint,
            region_id=next(self._region_ids),
        )
        right_spec = RegionSpec(
            table=entry.spec.table,
            start_row=midpoint,
            stop_row=entry.spec.stop_row,
            region_id=next(self._region_ids),
        )
        left = self._assign(left_spec, hfiles=None)
        right = self._assign(right_spec, hfiles=None)
        for cell in cells:
            (left if left_spec.contains(cell.row) else right).apply(cell)
        left.flush()
        right.flush()
        self.splits_performed += 1
        return True

    # ------------------------------------------------------------------
    # failure recovery
    def recover_server(self, server_name: str) -> int:
        """Reassign a dead server's regions and replay its WAL.

        Returns the number of WAL edits replayed.
        """
        dead = self.servers[server_name]
        if dead.alive:
            raise ConfigError(f"{server_name} is still alive")
        to_move = [
            entry
            for entry in self.meta.values()
            if entry.server == server_name
        ]
        moved: dict[str, Region] = {}
        for entry in to_move:
            # HFiles survive in HDFS; reopen elsewhere from them.
            old_region = dead.regions.pop(entry.spec.name, None)
            hfiles = list(old_region.hfiles) if old_region else []
            del self.meta[entry.spec.name]
            region = self._assign(entry.spec, hfiles=hfiles)
            moved[entry.spec.name] = region

        def route(cell: Cell) -> Region | None:
            for region in moved.values():
                if region.spec.contains(cell.row):
                    return region
            return None

        replayed = replay_wal(dead.client, dead.wal_segments, route)
        dead.wal_segments.clear()
        # Recovered edits live only in the new servers' MemStores and are
        # NOT in their WALs; flush them to HFiles immediately (HBase
        # flushes after replaying recovered.edits for the same reason —
        # otherwise a second crash would lose them).
        for region in moved.values():
            region.flush()
        self.recoveries_performed += 1
        return replayed
