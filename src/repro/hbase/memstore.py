"""The MemStore: a region's in-memory, sorted write buffer."""

from __future__ import annotations

from repro.hbase.model import Cell, CellKey


class MemStore:
    """Sorted in-memory cells awaiting a flush to an HFile."""

    def __init__(self) -> None:
        self._cells: dict[CellKey, Cell] = {}
        self._bytes = 0

    def add(self, cell: Cell) -> None:
        key = cell.key
        old = self._cells.get(key)
        if old is not None:
            self._bytes -= len(old.encode())
        self._cells[key] = cell
        self._bytes += len(cell.encode())

    @property
    def size_bytes(self) -> int:
        return self._bytes

    def __len__(self) -> int:
        return len(self._cells)

    @property
    def empty(self) -> bool:
        return not self._cells

    def sorted_cells(self) -> list[Cell]:
        return [self._cells[key] for key in sorted(self._cells)]

    def clear(self) -> None:
        self._cells.clear()
        self._bytes = 0

    def scan(self, start_row: str | None, stop_row: str | None) -> list[Cell]:
        """Cells with start_row <= row < stop_row, in key order."""
        out = []
        for key in sorted(self._cells):
            if start_row is not None and key.row < start_row:
                continue
            if stop_row is not None and key.row >= stop_row:
                continue
            out.append(self._cells[key])
        return out
