"""HFiles: immutable sorted cell files stored in HDFS.

Each flush writes one HFile; compaction merges several into one.  The
files live in the same HDFS this repository's MapReduce uses, so the
HBase lecture's punchline — "it's all files on HDFS underneath" — is
directly observable with ``hadoop fs -ls /hbase``.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

from repro.hbase.model import Cell
from repro.hdfs.client import DFSClient

_HFILE_SEQ = itertools.count(1)


@dataclass
class HFile:
    """A handle to one immutable HFile in HDFS."""

    path: str
    num_cells: int
    first_row: str | None
    last_row: str | None
    size_bytes: int

    def may_contain_row(self, row: str) -> bool:
        if self.first_row is None or self.last_row is None:
            return False
        return self.first_row <= row <= self.last_row

    def overlaps(self, start_row: str | None, stop_row: str | None) -> bool:
        if self.first_row is None:
            return False
        if start_row is not None and self.last_row < start_row:
            return False
        if stop_row is not None and self.first_row >= stop_row:
            return False
        return True


def write_hfile(
    client: DFSClient, directory: str, cells: list[Cell]
) -> HFile:
    """Persist sorted cells as a new HFile under ``directory``."""
    ordered = sorted(cells, key=lambda c: c.key)
    text = "\n".join(cell.encode() for cell in ordered)
    if text:
        text += "\n"
    path = f"{directory}/hfile_{next(_HFILE_SEQ):08d}"
    client.put_bytes(path, text.encode("utf-8"), overwrite=True)
    return HFile(
        path=path,
        num_cells=len(ordered),
        first_row=ordered[0].row if ordered else None,
        last_row=ordered[-1].row if ordered else None,
        size_bytes=len(text.encode("utf-8")),
    )


def read_hfile(client: DFSClient, hfile: HFile) -> list[Cell]:
    """Load an HFile's cells (sorted by construction)."""
    text = client.read_text(hfile.path)
    return [Cell.decode(line) for line in text.splitlines() if line]


def delete_hfile(client: DFSClient, hfile: HFile) -> None:
    if client.exists(hfile.path):
        client.delete(hfile.path)
