"""RegionServers: host regions, log edits, crash recoverably.

Every edit is appended to the server's write-ahead log before it
touches a MemStore.  The WAL is buffered and synced to HDFS in small
segments; a crash loses at most the unsynced tail (exactly HBase's
durability story with deferred log flush).  Recovery = reopen the
regions from their HFiles, then replay the dead server's WAL segments —
replay is idempotent because cell versions merge by timestamp.
"""

from __future__ import annotations

import itertools
from typing import Callable

from repro.hbase.hfile import HFile
from repro.hbase.model import Cell
from repro.hbase.region import Region, RegionConfig, RegionSpec
from repro.hdfs.client import DFSClient
from repro.util.errors import ReproError


class RegionServerDownError(ReproError):
    """An operation was routed to a dead RegionServer."""


class RegionServer:
    """One region-hosting daemon (conceptually on one cluster node)."""

    _wal_seq = itertools.count(1)

    def __init__(
        self,
        name: str,
        client: DFSClient,
        config: RegionConfig,
        wal_sync_every: int = 8,
    ):
        self.name = name
        self.client = client
        self.config = config
        self.wal_sync_every = max(1, wal_sync_every)
        self.regions: dict[str, Region] = {}
        self.alive = True
        self._wal_buffer: list[str] = []
        self.wal_segments: list[str] = []
        self.edits_applied = 0

    # ------------------------------------------------------------------
    def _check_alive(self) -> None:
        if not self.alive:
            raise RegionServerDownError(f"region server {self.name} is down")

    @property
    def wal_dir(self) -> str:
        return f"/hbase/.logs/{self.name}"

    # -- region lifecycle --------------------------------------------------
    def open_region(
        self, spec: RegionSpec, hfiles: list[HFile] | None = None
    ) -> Region:
        self._check_alive()
        region = Region(spec, self.client, self.config, hfiles=hfiles)
        self.regions[spec.name] = region
        return region

    def close_region(self, region_name: str) -> list[HFile]:
        """Graceful close: flush, return the HFiles for reassignment."""
        self._check_alive()
        region = self.regions.pop(region_name)
        region.flush()
        return list(region.hfiles)

    def region_for(self, region_name: str) -> Region:
        self._check_alive()
        return self.regions[region_name]

    # -- the write path ------------------------------------------------------
    def apply_edit(self, region_name: str, cell: Cell) -> None:
        """WAL first, MemStore second — the ordering that makes crash
        recovery possible."""
        self._check_alive()
        region = self.regions[region_name]
        self._wal_buffer.append(cell.encode())
        if len(self._wal_buffer) >= self.wal_sync_every:
            self.sync_wal()
        region.apply(cell)
        self.edits_applied += 1

    def sync_wal(self) -> None:
        """Persist buffered edits as a new WAL segment in HDFS."""
        if not self._wal_buffer:
            return
        path = f"{self.wal_dir}/wal_{next(self._wal_seq):08d}"
        text = "\n".join(self._wal_buffer) + "\n"
        self.client.put_bytes(path, text.encode("utf-8"), overwrite=True)
        self.wal_segments.append(path)
        self._wal_buffer.clear()

    def flush_all(self) -> None:
        """Flush every region and discard the now-redundant WAL."""
        self._check_alive()
        for region in self.regions.values():
            region.flush()
        for path in self.wal_segments:
            if self.client.exists(path):
                self.client.delete(path)
        self.wal_segments.clear()
        self._wal_buffer.clear()

    # -- failure ------------------------------------------------------------
    def crash(self) -> None:
        """Abrupt death: MemStores and the unsynced WAL tail are gone;
        HFiles and synced WAL segments survive in HDFS."""
        self.alive = False
        self._wal_buffer.clear()
        for region in self.regions.values():
            region.memstore.clear()

    def hosted_specs(self) -> list[RegionSpec]:
        return [region.spec for region in self.regions.values()]


def replay_wal(
    client: DFSClient,
    segments: list[str],
    route: Callable[[Cell], Region | None],
) -> int:
    """Replay WAL segments into (re-opened) regions; returns edit count.

    ``route`` maps a cell to its current region (regions may have split
    since the edit was logged).  Replay is idempotent: a cell that was
    already flushed into an HFile merges away by timestamp.
    """
    replayed = 0
    for path in segments:
        if not client.exists(path):
            continue
        for line in client.read_text(path).splitlines():
            if not line:
                continue
            cell = Cell.decode(line)
            region = route(cell)
            if region is not None:
                region.apply(cell)
                replayed += 1
    return replayed
