"""HBaseCluster: the whole store assembled over an HDFS cluster."""

from __future__ import annotations

from repro.hbase.client import Table
from repro.hbase.master import HMaster
from repro.hbase.region import RegionConfig
from repro.hbase.server import RegionServer
from repro.hdfs.cluster import HdfsCluster
from repro.hdfs.config import HdfsConfig


class HBaseCluster:
    """HMaster + one RegionServer per HDFS worker node."""

    def __init__(
        self,
        hdfs: HdfsCluster | None = None,
        num_servers: int = 3,
        region_config: RegionConfig | None = None,
        wal_sync_every: int = 8,
        seed: int = 0,
    ):
        self.hdfs = hdfs or HdfsCluster(
            num_datanodes=num_servers,
            config=HdfsConfig(block_size=4 * 1024, replication=2),
            seed=seed,
        )
        self.region_config = region_config or RegionConfig()
        self.servers: dict[str, RegionServer] = {}
        nodes = self.hdfs.topology.nodes()[:num_servers]
        for node in nodes:
            self.servers[node.name] = RegionServer(
                name=node.name,
                client=self.hdfs.client(node=node.name, charge_time=False),
                config=self.region_config,
                wal_sync_every=wal_sync_every,
            )
        self.master = HMaster(self.servers, config=self.region_config)

    # ------------------------------------------------------------------
    def create_table(self, name: str, families: list[str]) -> Table:
        self.master.create_table(name, families)
        return self.table(name)

    def table(self, name: str) -> Table:
        return Table(self.master, name)

    def drop_table(self, name: str) -> None:
        self.master.drop_table(name)

    # ------------------------------------------------------------------
    def crash_server(self, name: str) -> None:
        self.servers[name].crash()

    def recover(self, name: str) -> int:
        """Master-driven recovery of a crashed server's regions."""
        return self.master.recover_server(name)

    def hdfs_footprint(self) -> list[str]:
        """Every HBase file in HDFS — the lecture's 'it's all HDFS
        underneath' moment."""
        client = self.hdfs.client(charge_time=False)
        if not client.exists("/hbase"):
            return []
        paths = []
        for path, _inode in self.hdfs.namenode.namespace.walk_files("/hbase"):
            paths.append(path)
        return paths
