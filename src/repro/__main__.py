"""``python -m repro`` — a small CLI over the reproduction.

Subcommands:

- ``demo``        quickstart cluster + WordCount + the Figure-2 view
- ``tables``      regenerate the survey tables (Tables I-IV)
- ``curriculum``  Table V with implementing artifacts
- ``syllabus``    the four module versions + data sources
- ``handout``     the executable myHadoop tutorial handout
- ``classroom``   replay the Fall-2012 meltdown vs the Spring-2013 fix
- ``figure1``     the architecture scan sweep
- ``chaos``       run a fault-injection drill and print its timeline
- ``dfsadmin``    admin commands (-saveNamespace, -metasave) on a demo cluster
- ``lint``        mrlint: static-check job code (and the engine itself)

Exit codes: 0 success/clean, 1 failed drill or lint findings, 2 usage
and configuration errors — so CI can gate on them.
"""

from __future__ import annotations

import argparse
import sys


def _cmd_demo(_args) -> int:
    from repro.core.figures import figure2_integration_text

    print(figure2_integration_text(seed=7))
    return 0


def _cmd_tables(_args) -> int:
    from repro.survey.dataset import synthesize_responses
    from repro.survey.tables import (
        table1_proficiency,
        table2_time,
        table3_helpfulness,
        table4_level,
    )

    responses = synthesize_responses(seed=2013)
    for builder in (
        table1_proficiency,
        table2_time,
        table3_helpfulness,
        table4_level,
    ):
        table, _deviations = builder(responses)
        print(table.render())
        print()
    return 0


def _cmd_curriculum(_args) -> int:
    from repro.survey.curriculum import curriculum_table, validate_coverage

    print(curriculum_table().render())
    failures = validate_coverage()
    if failures:
        print("COVERAGE FAILURES:", failures)
        return 1
    print("\nall artifacts resolve")
    return 0


def _cmd_syllabus(_args) -> int:
    from repro.core.materials import syllabus

    print(syllabus())
    return 0


def _cmd_handout(args) -> int:
    from repro.core.materials import run_handout_walkthrough, tutorial_handout

    print(tutorial_handout())
    if args.execute:
        print("\nreplaying the handout on a simulated platform...")
        context = run_handout_walkthrough()
        print(f"job: {context['report'].state}; "
              f"fsck: {context['fsck'].status}; "
              f"results exported: "
              f"{context['home'].exists('/home/student/results.txt')}")
    return 0


def _cmd_classroom(args) -> int:
    from repro.core.classroom import ClassroomScenario, run_classroom
    from repro.util.units import HOUR, MINUTE

    for platform in ("dedicated", "myhadoop"):
        report = run_classroom(
            ClassroomScenario(
                name=f"cli-{platform}",
                platform=platform,
                num_students=args.students,
                window=args.hours * HOUR,
                buggy_probability=0.55,
                fix_probability=0.45,
                instructor_reaction_delay=45 * MINUTE,
                seed=args.seed,
            )
        )
        print(report.describe())
        print()
    return 0


def _cmd_figure1(_args) -> int:
    from repro.core.figures import figure1_scan_sweep
    from repro.util.units import format_duration

    for point in figure1_scan_sweep():
        print(
            f"nodes={point.num_nodes:4d}  "
            f"hpc={format_duration(point.hpc_seconds):>8}  "
            f"hadoop={format_duration(point.hadoop_seconds):>8}  "
            f"speedup={point.hadoop_speedup:.1f}x"
        )
    return 0


def _cmd_chaos(args) -> int:
    from repro.faults import list_scenarios, run_scenario
    from repro.util.errors import ConfigError

    if args.list or not args.scenario:
        print("chaos drills (run with: python -m repro chaos <name>):\n")
        for scenario in list_scenarios():
            print(f"  {scenario.name:22s} {scenario.title}")
            print(f"  {'':22s}   reenacts: {scenario.paper_incident}")
        return 0

    names = (
        [s.name for s in list_scenarios()]
        if args.scenario == "all"
        else [args.scenario]
    )
    exit_code = 0
    for name in names:
        try:
            result = run_scenario(
                name,
                seed=args.seed,
                backend=args.backend,
                sanitize=args.sanitize,
                transport=args.transport,
            )
        except ConfigError as exc:
            print(f"chaos: {exc}", file=sys.stderr)
            return 2
        print(f"=== chaos drill: {name} (seed={args.seed}) ===")
        print(result.plan.describe())
        print()
        if args.timeline:
            print("timeline (faults + recovery):")
            for line in result.timeline:
                print(f"  {line}")
        else:
            print("injected faults:")
            for line in result.fault_log or ["  (none)"]:
                print(f"  {line}")
        print()
        print("checks:")
        print(result.summary())
        verdict = "HEALED" if result.ok else "FAILED"
        print(f"\nverdict: {verdict}\n")
        if not result.ok:
            exit_code = 1
    return exit_code


def _cmd_dfsadmin(args) -> int:
    from repro.hdfs.cluster import HdfsCluster
    from repro.hdfs.config import HdfsConfig
    from repro.hdfs.dfsadmin import DfsAdmin
    from repro.util.errors import HdfsError

    if not (args.save_namespace or args.metasave):
        print(
            "dfsadmin: nothing to do (pass -saveNamespace and/or -metasave)",
            file=sys.stderr,
        )
        return 2
    hdfs = HdfsCluster(
        num_datanodes=3,
        config=HdfsConfig(
            block_size=2048, replication=2, journal=not args.no_journal
        ),
        seed=7,
    )
    client = hdfs.client()
    client.put_text(
        "/user/student/report.txt", "a small admin demo corpus\n" * 40
    )
    client.put_text("/user/student/notes.txt", "namenode durability\n" * 25)
    admin = DfsAdmin(hdfs.namenode)
    try:
        if args.save_namespace:
            print(admin.save_namespace())
        if args.metasave:
            print(admin.metasave())
    except HdfsError as exc:
        print(f"dfsadmin: {exc}", file=sys.stderr)
        return 2
    return 0


def _cmd_lint(args) -> int:
    from repro.analysis import (
        lint_jobs,
        lint_paths,
        lint_pipelines,
        lint_self,
        render_findings,
        render_json,
        render_sarif,
        sort_findings,
    )
    from repro.analysis.baseline import (
        filter_baseline,
        load_baseline,
        write_baseline,
    )
    from repro.util.errors import ConfigError

    if not (args.self_audit or args.jobs or args.pipelines or args.paths):
        print(
            "lint: nothing to lint "
            "(pass --self, --jobs, --pipelines, and/or paths)",
            file=sys.stderr,
        )
        return 2
    findings = []
    try:
        if args.self_audit:
            findings.extend(lint_self())
        if args.jobs:
            findings.extend(lint_jobs())
        if args.pipelines:
            findings.extend(lint_pipelines())
        if args.paths:
            families = tuple(args.families) if args.families else ("jobs",)
            findings.extend(lint_paths(args.paths, families=families))
        findings = sort_findings(findings)
        if args.write_baseline:
            count = write_baseline(findings, args.write_baseline)
            print(
                f"lint: wrote baseline with {count} finding(s) "
                f"to {args.write_baseline}"
            )
            return 0
        if args.baseline:
            findings = filter_baseline(findings, load_baseline(args.baseline))
    except ConfigError as exc:
        print(f"lint: {exc}", file=sys.stderr)
        return 2
    fmt = "json" if args.json else args.format
    if fmt == "json":
        print(render_json(findings))
    elif fmt == "sarif":
        print(render_sarif(findings))
    else:
        print(render_findings(findings))
    return 1 if findings else 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Educational Hadoop 1.x stack (paper reproduction)",
    )
    parser.add_argument(
        "--backend",
        choices=("serial", "pooled", "pooled-threads", "auto"),
        default=None,
        help="where task attempts' real work runs (default: serial); "
        "pooled backends parallelise share-nothing work while keeping "
        "simulated results bit-identical; 'auto' picks serial or "
        "pooled per job from the host's core count and the input size",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=0,
        metavar="N",
        help="pool size for pooled backends (0 = one per host CPU)",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("demo").set_defaults(fn=_cmd_demo)
    sub.add_parser("tables").set_defaults(fn=_cmd_tables)
    sub.add_parser("curriculum").set_defaults(fn=_cmd_curriculum)
    sub.add_parser("syllabus").set_defaults(fn=_cmd_syllabus)
    handout = sub.add_parser("handout")
    handout.add_argument(
        "--execute", action="store_true",
        help="replay the handout on a simulated platform",
    )
    handout.set_defaults(fn=_cmd_handout)
    classroom = sub.add_parser("classroom")
    classroom.add_argument("--students", type=int, default=20)
    classroom.add_argument("--hours", type=float, default=24.0)
    classroom.add_argument("--seed", type=int, default=2012)
    classroom.set_defaults(fn=_cmd_classroom)
    sub.add_parser("figure1").set_defaults(fn=_cmd_figure1)
    chaos = sub.add_parser(
        "chaos",
        help="run a deterministic fault-injection drill",
    )
    chaos.add_argument(
        "scenario",
        nargs="?",
        help="drill name, or 'all' (omit or use --list to enumerate)",
    )
    chaos.add_argument("--seed", type=int, default=0,
                       help="FaultPlan seed (same seed, same fault log)")
    chaos.add_argument("--list", action="store_true",
                       help="list available drills and exit")
    chaos.add_argument("--timeline", action="store_true",
                       help="print the full fault + recovery event "
                       "timeline instead of just injected faults")
    chaos.add_argument("--sanitize", action="store_true",
                       help="run the drill with the runtime sanitizer on "
                       "(MapReduceConfig.sanitize=True)")
    chaos.add_argument("--transport", default="framed",
                       choices=("framed", "object", "shm"),
                       help="shuffle transport for the drill (results are "
                       "bit-identical; default framed)")
    chaos.set_defaults(fn=_cmd_chaos)
    dfsadmin = sub.add_parser(
        "dfsadmin",
        help="hadoop-style admin commands over a small demo cluster",
    )
    dfsadmin.add_argument(
        "-saveNamespace",
        dest="save_namespace",
        action="store_true",
        help="roll a checkpoint: fresh fsimage, truncated edit log",
    )
    dfsadmin.add_argument(
        "-metasave",
        dest="metasave",
        action="store_true",
        help="dump NameNode metadata (block map + journal state)",
    )
    dfsadmin.add_argument(
        "--no-journal",
        action="store_true",
        help="build the demo cluster with journaling disabled "
        "(-saveNamespace then fails with exit code 2)",
    )
    dfsadmin.set_defaults(fn=_cmd_dfsadmin)
    lint = sub.add_parser(
        "lint",
        help="mrlint: static-check MapReduce job code (and the engine)",
    )
    lint.add_argument(
        "paths",
        nargs="*",
        help="files or directories to lint (student job code)",
    )
    lint.add_argument(
        "--self",
        dest="self_audit",
        action="store_true",
        help="audit the engine itself (repro.hdfs/mapreduce/faults/sim) "
        "with the MRE1xx determinism rules",
    )
    lint.add_argument(
        "--jobs",
        action="store_true",
        help="lint the reference jobs (repro.jobs) and examples/ with "
        "the MRJ0xx job rules",
    )
    lint.add_argument(
        "--pipelines",
        action="store_true",
        help="lint the examples/ RDD pipelines and HiveLite scripts "
        "with the MRS2xx/MRH3xx rules",
    )
    lint.add_argument(
        "--family",
        dest="families",
        action="append",
        choices=("jobs", "engine", "sparklite", "hive"),
        default=None,
        help="rule families for explicit paths (default: jobs; repeatable)",
    )
    lint.add_argument(
        "--format",
        choices=("text", "json", "sarif"),
        default="text",
        help="output format (sarif for GitHub code-scanning uploads)",
    )
    lint.add_argument(
        "--json",
        action="store_true",
        help="emit findings as JSON (alias for --format json)",
    )
    lint.add_argument(
        "--baseline",
        metavar="FILE",
        default=None,
        help="only report findings not recorded in this baseline file",
    )
    lint.add_argument(
        "--write-baseline",
        metavar="FILE",
        default=None,
        help="record current findings to FILE and exit 0 "
        "(adopt-a-rule workflow; see docs/ADOPTING_RULES.md)",
    )
    lint.set_defaults(fn=_cmd_lint)

    args = parser.parse_args(argv)
    if args.workers < 0:
        parser.error("--workers must be >= 0 (0 = one per host CPU)")
    if args.backend is not None:
        from repro.mapreduce.backend import set_default_backend

        set_default_backend(args.backend, args.workers)
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main())
