"""Network cost model with locality-class traffic accounting.

The model is intentionally simple and legible (per the optimization
guide: make it work and make it measurable before making it clever):

- node-local "transfers" are free and never touch the network;
- rack-local transfers run at the NIC rate;
- off-rack transfers run at the NIC rate divided by the rack uplink
  oversubscription factor.

Every transfer is tallied by locality class, which is exactly the
observable the course asks students to reason about ("observe how data
distribution/layout can affect an algorithm's communication costs",
Table V).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cluster.topology import ClusterTopology
from repro.util.units import MB


@dataclass
class TrafficCounters:
    """Cumulative bytes moved, bucketed by network distance."""

    node_local: int = 0
    rack_local: int = 0
    off_rack: int = 0

    @property
    def network_bytes(self) -> int:
        """Bytes that actually crossed a wire (excludes node-local)."""
        return self.rack_local + self.off_rack

    @property
    def total_bytes(self) -> int:
        return self.node_local + self.rack_local + self.off_rack

    def as_dict(self) -> dict[str, int]:
        return {
            "node_local": self.node_local,
            "rack_local": self.rack_local,
            "off_rack": self.off_rack,
        }

    def merged(self, other: "TrafficCounters") -> "TrafficCounters":
        return TrafficCounters(
            node_local=self.node_local + other.node_local,
            rack_local=self.rack_local + other.rack_local,
            off_rack=self.off_rack + other.off_rack,
        )


@dataclass
class NetworkModel:
    """Transfer-time and traffic accounting over a topology."""

    topology: ClusterTopology
    nic_bw: float = 125 * MB  # gigabit ethernet
    rack_oversubscription: float = 4.0  # uplink shares per paper-era DC design
    latency: float = 0.0005  # per-transfer setup cost, seconds
    counters: TrafficCounters = field(default_factory=TrafficCounters)

    def __post_init__(self) -> None:
        if self.nic_bw <= 0:
            raise ValueError("nic_bw must be positive")
        if self.rack_oversubscription < 1:
            raise ValueError("rack_oversubscription must be >= 1")

    def bandwidth_between(self, src: str, dst: str) -> float:
        """Effective streaming bandwidth between two nodes."""
        distance = self.topology.distance(src, dst)
        if distance == 0:
            return float("inf")
        if distance == 2:
            return self.nic_bw
        return self.nic_bw / self.rack_oversubscription

    def transfer_time(self, src: str, dst: str, nbytes: int) -> float:
        """Seconds to move ``nbytes`` from ``src`` to ``dst``.

        Also records the traffic in :attr:`counters`.
        """
        if nbytes < 0:
            raise ValueError("nbytes must be non-negative")
        distance = self.topology.distance(src, dst)
        if distance == 0:
            self.counters.node_local += nbytes
            return 0.0
        if distance == 2:
            self.counters.rack_local += nbytes
        else:
            self.counters.off_rack += nbytes
        return self.latency + nbytes / self.bandwidth_between(src, dst)

    def reset_counters(self) -> None:
        self.counters = TrafficCounters()
