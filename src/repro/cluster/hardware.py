"""Node hardware: specs, state and attached local disk.

The default spec matches the paper's dedicated teaching cluster: eight
nodes, each with dual 8-core CPUs, 64 GB RAM and an 850 GB HDD.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.cluster.storage import LocalDisk
from repro.util.units import GB, MB


@dataclass(frozen=True)
class NodeSpec:
    """Static hardware description of one node."""

    cores: int = 16
    ram_bytes: int = 64 * GB
    disk_bytes: int = 850 * GB
    disk_read_bw: float = 120 * MB  # bytes/second, a 2012-era HDD
    disk_write_bw: float = 100 * MB
    nic_bw: float = 125 * MB  # gigabit ethernet

    def __post_init__(self) -> None:
        if self.cores <= 0:
            raise ValueError("cores must be positive")
        for name in ("ram_bytes", "disk_bytes"):
            if getattr(self, name) <= 0:
                raise ValueError(f"{name} must be positive")
        for name in ("disk_read_bw", "disk_write_bw", "nic_bw"):
            if getattr(self, name) <= 0:
                raise ValueError(f"{name} must be positive")


#: The per-node hardware of the dedicated 8-node cluster in the paper
#: (Section II.A): dual 8-core CPUs, 64GB RAM, 850GB HDD.
CLEMSON_NODE_SPEC = NodeSpec()


class NodeState(enum.Enum):
    UP = "up"
    DOWN = "down"


@dataclass
class Node:
    """A physical node: spec + mutable runtime state + local disk."""

    name: str
    spec: NodeSpec = CLEMSON_NODE_SPEC
    rack_name: str = "default-rack"
    state: NodeState = NodeState.UP
    disk: LocalDisk = field(init=False)

    def __post_init__(self) -> None:
        self.disk = LocalDisk(
            capacity=self.spec.disk_bytes,
            read_bw=self.spec.disk_read_bw,
            write_bw=self.spec.disk_write_bw,
        )

    @property
    def is_up(self) -> bool:
        return self.state == NodeState.UP

    @property
    def network_location(self) -> str:
        """Hadoop-style topology path, e.g. ``/rack1/node3``."""
        return f"/{self.rack_name}/{self.name}"

    def mark_down(self) -> None:
        self.state = NodeState.DOWN

    def mark_up(self) -> None:
        self.state = NodeState.UP

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Node) and other.name == self.name

    def __hash__(self) -> int:
        return hash(self.name)

    def __repr__(self) -> str:
        return f"Node({self.name!r}, rack={self.rack_name!r}, {self.state.value})"
