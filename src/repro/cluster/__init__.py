"""Cluster hardware substrate.

Models the two architectures of the paper's Figure 1:

- a typical HPC cluster — compute nodes separated from a central parallel
  storage system (:func:`~repro.cluster.builder.build_hpc_cluster`), and
- a Hadoop cluster — storage co-located on the compute nodes for data
  locality (:func:`~repro.cluster.builder.build_hadoop_cluster`).
"""

from repro.cluster.hardware import NodeSpec, Node, NodeState, CLEMSON_NODE_SPEC
from repro.cluster.topology import Rack, ClusterTopology
from repro.cluster.network import NetworkModel, TrafficCounters
from repro.cluster.storage import LocalDisk, ParallelFileSystem
from repro.cluster.builder import (
    build_hadoop_cluster,
    build_hpc_cluster,
    HpcCluster,
    HadoopHardware,
)

__all__ = [
    "NodeSpec",
    "Node",
    "NodeState",
    "CLEMSON_NODE_SPEC",
    "Rack",
    "ClusterTopology",
    "NetworkModel",
    "TrafficCounters",
    "LocalDisk",
    "ParallelFileSystem",
    "build_hadoop_cluster",
    "build_hpc_cluster",
    "HpcCluster",
    "HadoopHardware",
]
