"""Rack-aware cluster topology.

Implements Hadoop's notion of network distance, which drives both HDFS
replica placement and the JobTracker's locality-aware task scheduling:

=====================  ========
relationship           distance
=====================  ========
same node              0
same rack              2
different rack         4
=====================  ========
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cluster.hardware import Node, NodeSpec, CLEMSON_NODE_SPEC
from repro.util.errors import ConfigError


@dataclass
class Rack:
    """A rack: a named group of nodes behind one top-of-rack switch."""

    name: str
    nodes: list[Node] = field(default_factory=list)

    def add_node(self, node: Node) -> None:
        node.rack_name = self.name
        self.nodes.append(node)


class ClusterTopology:
    """The set of racks and nodes, with distance queries.

    >>> topo = ClusterTopology.regular(num_nodes=4, nodes_per_rack=2)
    >>> topo.distance("node0", "node0")
    0
    >>> topo.distance("node0", "node1")
    2
    >>> topo.distance("node0", "node2")
    4
    """

    def __init__(self) -> None:
        self.racks: dict[str, Rack] = {}
        self._nodes: dict[str, Node] = {}

    # ------------------------------------------------------------------
    @classmethod
    def regular(
        cls,
        num_nodes: int,
        nodes_per_rack: int = 8,
        spec: NodeSpec = CLEMSON_NODE_SPEC,
        name_prefix: str = "node",
    ) -> "ClusterTopology":
        """Build ``num_nodes`` identical nodes packed into racks."""
        if num_nodes <= 0:
            raise ConfigError("num_nodes must be positive")
        if nodes_per_rack <= 0:
            raise ConfigError("nodes_per_rack must be positive")
        topo = cls()
        for i in range(num_nodes):
            rack_name = f"rack{i // nodes_per_rack}"
            node = Node(name=f"{name_prefix}{i}", spec=spec)
            topo.add_node(node, rack_name)
        return topo

    def add_node(self, node: Node, rack_name: str) -> None:
        if node.name in self._nodes:
            raise ConfigError(f"duplicate node name {node.name!r}")
        rack = self.racks.setdefault(rack_name, Rack(rack_name))
        rack.add_node(node)
        self._nodes[node.name] = node

    # ------------------------------------------------------------------
    def node(self, name: str) -> Node:
        try:
            return self._nodes[name]
        except KeyError:
            raise ConfigError(f"unknown node {name!r}") from None

    def __contains__(self, name: str) -> bool:
        return name in self._nodes

    def nodes(self) -> list[Node]:
        """All nodes in deterministic insertion order."""
        return list(self._nodes.values())

    def live_nodes(self) -> list[Node]:
        return [n for n in self._nodes.values() if n.is_up]

    def rack_of(self, node_name: str) -> str:
        return self.node(node_name).rack_name

    def nodes_in_rack(self, rack_name: str) -> list[Node]:
        rack = self.racks.get(rack_name)
        return list(rack.nodes) if rack else []

    def num_racks(self) -> int:
        return len(self.racks)

    def __len__(self) -> int:
        return len(self._nodes)

    # ------------------------------------------------------------------
    def distance(self, a: str, b: str) -> int:
        """Hadoop network distance between two nodes (0, 2 or 4)."""
        if a == b:
            return 0
        if self.rack_of(a) == self.rack_of(b):
            return 2
        return 4

    def locality_of(self, task_node: str, data_nodes: list[str]) -> str:
        """Classify the best achievable locality of a task placed on
        ``task_node`` reading data replicated on ``data_nodes``."""
        if not data_nodes:
            return "off_rack"
        best = min(self.distance(task_node, d) for d in data_nodes)
        if best == 0:
            return "node_local"
        if best == 2:
            return "rack_local"
        return "off_rack"
