"""Storage models: per-node local disks and a central parallel file system.

These two classes *are* the paper's Figure 1 in code: a Hadoop cluster
stores blocks on :class:`LocalDisk`\\ s next to the compute, while an HPC
cluster funnels all I/O through one :class:`ParallelFileSystem` whose
aggregate bandwidth is shared by every concurrent reader.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.util.errors import ConfigError


class LocalDisk:
    """A node-local HDD with capacity accounting and simple throughput."""

    def __init__(self, capacity: int, read_bw: float, write_bw: float):
        if capacity <= 0 or read_bw <= 0 or write_bw <= 0:
            raise ConfigError("disk capacity and bandwidths must be positive")
        self.capacity = int(capacity)
        self.read_bw = float(read_bw)
        self.write_bw = float(write_bw)
        self.used = 0
        self.bytes_read = 0
        self.bytes_written = 0

    @property
    def free(self) -> int:
        return self.capacity - self.used

    def allocate(self, nbytes: int) -> bool:
        """Reserve space; returns False (no partial write) if it won't fit."""
        if nbytes < 0:
            raise ValueError("cannot allocate negative bytes")
        if nbytes > self.free:
            return False
        self.used += nbytes
        return True

    def release(self, nbytes: int) -> None:
        if nbytes < 0:
            raise ValueError("cannot release negative bytes")
        self.used = max(0, self.used - nbytes)

    def read_time(self, nbytes: int) -> float:
        """Seconds to stream ``nbytes`` off this disk."""
        self.bytes_read += nbytes
        return nbytes / self.read_bw

    def write_time(self, nbytes: int) -> float:
        self.bytes_written += nbytes
        return nbytes / self.write_bw


@dataclass
class ParallelFileSystem:
    """A central parallel storage system (Lustre/GPFS-like).

    Aggregate bandwidth is fixed; when ``n`` clients stream concurrently
    each sees ``aggregate_bw / n`` (perfect fair sharing), floored by the
    per-client link.  This is the compute/storage-separated architecture
    of Figure 1(a), and the reason data-intensive scans stop scaling on a
    typical HPC cluster — the observation motivating the whole module.

    The paper also notes Clemson's parallel storage lacked file-locking
    support, which ruled out myHadoop's persistent mode; the
    ``supports_file_locking`` flag carries that constraint into
    :mod:`repro.myhadoop`.
    """

    aggregate_bw: float = 4_000 * 1024 * 1024  # 4 GB/s backbone
    per_client_bw: float = 125 * 1024 * 1024  # gigabit per compute node
    capacity: int = 2 * 1024**5  # effectively unbounded for coursework
    supports_file_locking: bool = False
    used: int = 0
    bytes_read: int = 0
    bytes_written: int = 0
    _concurrent_readers: int = field(default=0, repr=False)

    def effective_bw(self, concurrent_clients: int) -> float:
        """Per-client streaming bandwidth with ``concurrent_clients`` active."""
        if concurrent_clients < 1:
            raise ValueError("concurrent_clients must be >= 1")
        fair_share = self.aggregate_bw / concurrent_clients
        return min(self.per_client_bw, fair_share)

    def read_time(self, nbytes: int, concurrent_clients: int = 1) -> float:
        """Seconds for one client to read ``nbytes`` under contention."""
        self.bytes_read += nbytes
        return nbytes / self.effective_bw(concurrent_clients)

    def write_time(self, nbytes: int, concurrent_clients: int = 1) -> float:
        self.bytes_written += nbytes
        self.used += nbytes
        return nbytes / self.effective_bw(concurrent_clients)

    def saturation_point(self) -> int:
        """Number of clients beyond which the backbone, not the NIC, limits
        per-client bandwidth — where HPC scan scaling flattens."""
        return max(1, int(self.aggregate_bw // self.per_client_bw))
