"""Builders for the two Figure-1 cluster architectures.

:func:`build_hadoop_cluster` produces the co-located storage/compute
design of Figure 1(b); :func:`build_hpc_cluster` produces the separated
compute + central parallel-storage design of Figure 1(a).  The Figure 1
benchmark sweeps a scan workload across both and shows where and why
data locality wins.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cluster.hardware import NodeSpec, CLEMSON_NODE_SPEC
from repro.cluster.network import NetworkModel
from repro.cluster.storage import ParallelFileSystem
from repro.cluster.topology import ClusterTopology
from repro.util.units import GB, MB


@dataclass
class HadoopHardware:
    """A Hadoop-style cluster: topology of disk-bearing nodes + network."""

    topology: ClusterTopology
    network: NetworkModel

    def scan_time(self, total_bytes: int, overlap_compute: float = 0.0) -> float:
        """Time for all nodes to scan ``total_bytes`` split evenly, each
        from its own local disk (the ideal data-local layout).

        ``overlap_compute`` is seconds of per-node CPU work overlapped
        with I/O; the slower of the two dominates.
        """
        nodes = self.topology.live_nodes()
        if not nodes:
            raise ValueError("no live nodes")
        per_node = total_bytes / len(nodes)
        io_time = max(per_node / n.spec.disk_read_bw for n in nodes)
        return max(io_time, overlap_compute)


@dataclass
class HpcCluster:
    """An HPC-style cluster: diskless compute nodes + central storage."""

    topology: ClusterTopology
    network: NetworkModel
    storage: ParallelFileSystem

    def scan_time(self, total_bytes: int, overlap_compute: float = 0.0) -> float:
        """Time for all compute nodes to pull ``total_bytes`` (split
        evenly) from the central parallel file system concurrently."""
        nodes = self.topology.live_nodes()
        if not nodes:
            raise ValueError("no live nodes")
        per_node = total_bytes / len(nodes)
        io_time = per_node / self.storage.effective_bw(len(nodes))
        return max(io_time, overlap_compute)


def build_hadoop_cluster(
    num_workers: int = 8,
    nodes_per_rack: int = 8,
    spec: NodeSpec = CLEMSON_NODE_SPEC,
    rack_oversubscription: float = 4.0,
) -> HadoopHardware:
    """Figure 1(b): storage on the compute nodes for data locality.

    Defaults to the paper's dedicated teaching cluster: 8 nodes, each
    dual 8-core / 64 GB RAM / 850 GB HDD, one rack.
    """
    topology = ClusterTopology.regular(
        num_nodes=num_workers, nodes_per_rack=nodes_per_rack, spec=spec
    )
    network = NetworkModel(
        topology=topology,
        nic_bw=spec.nic_bw,
        rack_oversubscription=rack_oversubscription,
    )
    return HadoopHardware(topology=topology, network=network)


def build_hpc_cluster(
    num_compute: int = 64,
    nodes_per_rack: int = 16,
    spec: NodeSpec | None = None,
    storage_aggregate_bw: float = 4_000 * MB,
    storage_capacity: int = 500 * 1024 * GB,
) -> HpcCluster:
    """Figure 1(a): compute nodes separated from parallel storage.

    Compute nodes keep only a small scratch disk (the situation that
    forced myHadoop to use node-local scratch for HDFS in the paper).
    """
    if spec is None:
        spec = NodeSpec(disk_bytes=100 * GB)  # small local scratch only
    topology = ClusterTopology.regular(
        num_nodes=num_compute, nodes_per_rack=nodes_per_rack, spec=spec
    )
    network = NetworkModel(topology=topology, nic_bw=spec.nic_bw)
    storage = ParallelFileSystem(
        aggregate_bw=storage_aggregate_bw,
        per_client_bw=spec.nic_bw,
        capacity=storage_capacity,
        supports_file_locking=False,
    )
    return HpcCluster(topology=topology, network=network, storage=storage)
