"""``hadoop fs`` — the shell commands the assignments exercise.

The second assignment "requires students to execute and record the
output of a number of Hadoop shell commands to observe how HDFS
transforms, stores, replicates, and abstracts the actual data"; this
module provides those commands with Hadoop 1.x argument conventions.

Commands return a :class:`ShellResult` (exit code + captured output)
rather than printing, so graders and tests can assert on them.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hdfs.client import DFSClient
from repro.hdfs.localfs import LinuxFileSystem
from repro.util.errors import HdfsError, ReproError


@dataclass
class ShellResult:
    """Exit code and captured stdout of one shell command."""

    code: int
    output: str

    @property
    def ok(self) -> bool:
        return self.code == 0

    def lines(self) -> list[str]:
        return self.output.splitlines()


class FsShell:
    """Dispatcher for ``hadoop fs <command>`` invocations."""

    def __init__(self, client: DFSClient, localfs: LinuxFileSystem | None = None):
        self.client = client
        self.localfs = localfs or LinuxFileSystem()
        self._commands = {
            "-ls": self._ls,
            "-lsr": self._lsr,
            "-mkdir": self._mkdir,
            "-put": self._put,
            "-copyFromLocal": self._put,
            "-get": self._get,
            "-copyToLocal": self._get,
            "-cat": self._cat,
            "-text": self._cat,
            "-tail": self._tail,
            "-rm": self._rm,
            "-rmr": self._rmr,
            "-mv": self._mv,
            "-cp": self._cp,
            "-du": self._du,
            "-dus": self._dus,
            "-count": self._count,
            "-setrep": self._setrep,
            "-stat": self._stat,
            "-test": self._test,
            "-touchz": self._touchz,
        }

    def run(self, *args: str) -> ShellResult:
        """Run one command, e.g. ``shell.run("-put", local, hdfs)``."""
        if not args:
            return ShellResult(1, "Usage: hadoop fs <command> [args]")
        command, rest = args[0], list(args[1:])
        handler = self._commands.get(command)
        if handler is None:
            return ShellResult(
                1, f"{command}: Unknown command\n"
                f"Supported: {' '.join(sorted(self._commands))}"
            )
        try:
            return handler(rest)
        except ReproError as exc:
            return ShellResult(1, f"{command}: {exc}")

    # ------------------------------------------------------------------
    def _ls(self, args: list[str]) -> ShellResult:
        path = args[0] if args else "/"
        statuses = self.client.list_status(path)
        lines = [f"Found {len(statuses)} items"]
        lines += [s.ls_line() for s in statuses]
        return ShellResult(0, "\n".join(lines))

    def _lsr(self, args: list[str]) -> ShellResult:
        path = args[0] if args else "/"
        lines: list[str] = []

        def walk(p: str) -> None:
            for status in self.client.list_status(p):
                lines.append(status.ls_line())
                if status.is_dir:
                    walk(status.path)

        if self.client.status(path).is_dir:
            walk(path)
        else:
            lines.append(self.client.status(path).ls_line())
        return ShellResult(0, "\n".join(lines))

    def _mkdir(self, args: list[str]) -> ShellResult:
        if not args:
            return ShellResult(1, "-mkdir: missing path")
        self.client.mkdirs(args[0])
        return ShellResult(0, "")

    def _put(self, args: list[str]) -> ShellResult:
        if len(args) != 2:
            return ShellResult(1, "-put: expected <localsrc> <dst>")
        local, dst = args
        if self.client.exists(dst) and self.client.status(dst).is_dir:
            dst = dst.rstrip("/") + "/" + local.rsplit("/", 1)[-1]
        self.client.copy_from_local(self.localfs, local, dst)
        return ShellResult(0, "")

    def _get(self, args: list[str]) -> ShellResult:
        if len(args) != 2:
            return ShellResult(1, "-get: expected <src> <localdst>")
        src, local = args
        self.client.copy_to_local(self.localfs, src, local)
        return ShellResult(0, "")

    def _cat(self, args: list[str]) -> ShellResult:
        if not args:
            return ShellResult(1, "-cat: missing path")
        chunks = [self.client.read_text(path) for path in args]
        return ShellResult(0, "".join(chunks))

    def _tail(self, args: list[str]) -> ShellResult:
        if not args:
            return ShellResult(1, "-tail: missing path")
        data = self.client.read_bytes(args[0]).data
        return ShellResult(0, data[-1024:].decode("utf-8", errors="replace"))

    def _rm(self, args: list[str]) -> ShellResult:
        if not args:
            return ShellResult(1, "-rm: missing path")
        status = self.client.status(args[0])
        if status.is_dir:
            return ShellResult(1, f"-rm: {args[0]} is a directory (use -rmr)")
        self.client.delete(args[0])
        return ShellResult(0, f"Deleted {args[0]}")

    def _rmr(self, args: list[str]) -> ShellResult:
        if not args:
            return ShellResult(1, "-rmr: missing path")
        self.client.delete(args[0], recursive=True)
        return ShellResult(0, f"Deleted {args[0]}")

    def _mv(self, args: list[str]) -> ShellResult:
        if len(args) != 2:
            return ShellResult(1, "-mv: expected <src> <dst>")
        self.client.rename(args[0], args[1])
        return ShellResult(0, "")

    def _cp(self, args: list[str]) -> ShellResult:
        if len(args) != 2:
            return ShellResult(1, "-cp: expected <src> <dst>")
        data = self.client.read_bytes(args[0]).data
        self.client.put_bytes(args[1], data)
        return ShellResult(0, "")

    def _du(self, args: list[str]) -> ShellResult:
        path = args[0] if args else "/"
        lines = []
        for status in self.client.list_status(path):
            size = self.client.du(status.path)
            lines.append(f"{size:<14} {status.path}")
        return ShellResult(0, "\n".join(lines))

    def _dus(self, args: list[str]) -> ShellResult:
        path = args[0] if args else "/"
        return ShellResult(0, f"{path}\t{self.client.du(path)}")

    def _count(self, args: list[str]) -> ShellResult:
        path = args[0] if args else "/"
        dirs, files, nbytes = self.client.namenode.namespace.count(path)
        return ShellResult(0, f"{dirs:>12} {files:>12} {nbytes:>16} {path}")

    def _setrep(self, args: list[str]) -> ShellResult:
        args = [a for a in args if a != "-w"]  # -w (wait) is a no-op here
        if len(args) != 2:
            return ShellResult(1, "-setrep: expected [-w] <rep> <path>")
        rep, path = int(args[0]), args[1]
        self.client.set_replication(path, rep)
        return ShellResult(0, f"Replication {rep} set: {path}")

    def _stat(self, args: list[str]) -> ShellResult:
        if not args:
            return ShellResult(1, "-stat: missing path")
        s = self.client.status(args[0])
        kind = "directory" if s.is_dir else "regular file"
        return ShellResult(
            0,
            f"{s.path}: {kind}, length={s.length}, "
            f"replication={s.replication}, blocks={s.block_count}",
        )

    def _test(self, args: list[str]) -> ShellResult:
        if len(args) != 2 or args[0] not in ("-e", "-d", "-z"):
            return ShellResult(1, "-test: expected -e|-d|-z <path>")
        flag, path = args
        try:
            if flag == "-e":
                ok = self.client.exists(path)
            elif flag == "-d":
                ok = self.client.exists(path) and self.client.status(path).is_dir
            else:
                ok = self.client.exists(path) and self.client.status(path).length == 0
        except HdfsError:
            ok = False
        return ShellResult(0 if ok else 1, "")

    def _touchz(self, args: list[str]) -> ShellResult:
        if not args:
            return ShellResult(1, "-touchz: missing path")
        self.client.put_bytes(args[0], b"")
        return ShellResult(0, "")
