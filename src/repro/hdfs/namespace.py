"""The HDFS namespace: an in-memory inode tree of directories and files.

This is the "HDFS Abstractions: Directories/Files" layer of the paper's
Figure 2 — the part of HDFS that looks like a file system, kept entirely
in NameNode memory and mapped onto blocks below it.
"""

from __future__ import annotations

import posixpath
from dataclasses import dataclass, field
from typing import Iterator

from repro.hdfs.block import Block
from repro.util.errors import (
    DirectoryNotEmpty,
    FileAlreadyExists,
    FileNotFoundInHdfs,
    IsADirectory,
    NotADirectory,
)


def normalize(path: str) -> str:
    """Normalize an absolute HDFS path (``"/a//b/./c" -> "/a/b/c"``)."""
    if not path.startswith("/"):
        raise FileNotFoundInHdfs(f"HDFS paths must be absolute: {path!r}")
    norm = posixpath.normpath(path)
    return "/" if norm in ("", "/", ".") else norm


def split_path(path: str) -> tuple[str, str]:
    """Return ``(parent, basename)`` of a normalized path."""
    norm = normalize(path)
    if norm == "/":
        raise FileNotFoundInHdfs("the root directory has no parent")
    parent, base = posixpath.split(norm)
    return parent, base


@dataclass
class INodeFile:
    """A file: an ordered list of blocks plus attributes."""

    name: str
    replication: int
    blocks: list[Block] = field(default_factory=list)
    mtime: float = 0.0
    under_construction: bool = False

    @property
    def length(self) -> int:
        return sum(b.length for b in self.blocks)

    @property
    def is_dir(self) -> bool:
        return False


@dataclass
class INodeDirectory:
    """A directory: named children."""

    name: str
    children: dict[str, "INodeFile | INodeDirectory"] = field(default_factory=dict)
    mtime: float = 0.0

    @property
    def is_dir(self) -> bool:
        return True


INode = INodeFile | INodeDirectory


@dataclass(frozen=True)
class FileStatus:
    """What ``hadoop fs -ls`` shows for one entry."""

    path: str
    is_dir: bool
    length: int
    replication: int
    block_count: int
    mtime: float

    def ls_line(self) -> str:
        kind = "d" if self.is_dir else "-"
        rep = "-" if self.is_dir else str(self.replication)
        return f"{kind}rw-r--r--  {rep:>3}  {self.length:>12}  {self.path}"


class Namespace:
    """The inode tree with POSIX-ish operations.

    >>> ns = Namespace()
    >>> ns.mkdirs("/user/alice")
    True
    >>> ns.exists("/user/alice")
    True
    """

    def __init__(self) -> None:
        self.root = INodeDirectory(name="")

    # -- resolution ----------------------------------------------------
    def _resolve(self, path: str) -> INode:
        norm = normalize(path)
        node: INode = self.root
        if norm == "/":
            return node
        for part in norm.strip("/").split("/"):
            if not isinstance(node, INodeDirectory):
                raise NotADirectory(f"{part!r} reached through a file in {path!r}")
            try:
                node = node.children[part]
            except KeyError:
                raise FileNotFoundInHdfs(path) from None
        return node

    def exists(self, path: str) -> bool:
        try:
            self._resolve(path)
            return True
        except (FileNotFoundInHdfs, NotADirectory):
            return False

    def is_dir(self, path: str) -> bool:
        return self.exists(path) and self._resolve(path).is_dir

    def get_file(self, path: str) -> INodeFile:
        node = self._resolve(path)
        if node.is_dir:
            raise IsADirectory(path)
        return node  # type: ignore[return-value]

    def get_dir(self, path: str) -> INodeDirectory:
        node = self._resolve(path)
        if not node.is_dir:
            raise NotADirectory(path)
        return node  # type: ignore[return-value]

    # -- mutation ------------------------------------------------------
    def mkdirs(self, path: str, mtime: float = 0.0) -> bool:
        """Create a directory and any missing parents (``mkdir -p``)."""
        norm = normalize(path)
        node: INodeDirectory = self.root
        if norm == "/":
            return True
        for part in norm.strip("/").split("/"):
            child = node.children.get(part)
            if child is None:
                child = INodeDirectory(name=part, mtime=mtime)
                node.children[part] = child
            elif not child.is_dir:
                raise NotADirectory(f"{path!r}: {part!r} is a file")
            node = child  # type: ignore[assignment]
        return True

    def create_file(
        self, path: str, replication: int, mtime: float = 0.0, overwrite: bool = False
    ) -> INodeFile:
        parent_path, base = split_path(path)
        self.mkdirs(parent_path, mtime=mtime)
        parent = self.get_dir(parent_path)
        existing = parent.children.get(base)
        if existing is not None:
            if existing.is_dir:
                raise IsADirectory(path)
            if not overwrite:
                raise FileAlreadyExists(path)
        inode = INodeFile(
            name=base, replication=replication, mtime=mtime, under_construction=True
        )
        parent.children[base] = inode
        return inode

    def delete(self, path: str, recursive: bool = False) -> list[Block]:
        """Remove a path; returns the blocks freed for invalidation."""
        norm = normalize(path)
        if norm == "/":
            raise IsADirectory("cannot delete the root directory")
        parent_path, base = split_path(norm)
        parent = self.get_dir(parent_path)
        if base not in parent.children:
            raise FileNotFoundInHdfs(path)
        node = parent.children[base]
        if node.is_dir and node.children and not recursive:  # type: ignore[union-attr]
            raise DirectoryNotEmpty(path)
        freed: list[Block] = list(self._collect_blocks(node))
        del parent.children[base]
        return freed

    def rename(self, src: str, dst: str) -> None:
        src_norm, dst_norm = normalize(src), normalize(dst)
        if dst_norm == src_norm:
            return
        if dst_norm.startswith(src_norm + "/"):
            raise NotADirectory(f"cannot move {src!r} into itself")
        node = self._resolve(src_norm)
        # Moving onto an existing directory moves *into* it (fs -mv semantics).
        if self.exists(dst_norm) and self.is_dir(dst_norm):
            dst_norm = posixpath.join(dst_norm, node.name)
        if self.exists(dst_norm):
            raise FileAlreadyExists(dst)
        src_parent, src_base = split_path(src_norm)
        dst_parent, dst_base = split_path(dst_norm)
        if not self.exists(dst_parent) or not self.is_dir(dst_parent):
            raise FileNotFoundInHdfs(f"rename target parent missing: {dst_parent}")
        del self.get_dir(src_parent).children[src_base]
        node.name = dst_base
        self.get_dir(dst_parent).children[dst_base] = node

    # -- listing / traversal -------------------------------------------
    def _collect_blocks(self, node: INode) -> Iterator[Block]:
        if node.is_dir:
            for child in node.children.values():  # type: ignore[union-attr]
                yield from self._collect_blocks(child)
        else:
            yield from node.blocks  # type: ignore[union-attr]

    def status(self, path: str) -> FileStatus:
        node = self._resolve(path)
        norm = normalize(path)
        if node.is_dir:
            return FileStatus(norm, True, 0, 0, 0, node.mtime)
        return FileStatus(
            norm, False, node.length, node.replication, len(node.blocks), node.mtime
        )

    def list_status(self, path: str) -> list[FileStatus]:
        """Children of a directory (or the file itself), sorted by name."""
        node = self._resolve(path)
        norm = normalize(path)
        if not node.is_dir:
            return [self.status(norm)]
        out = []
        for name in sorted(node.children):
            child_path = posixpath.join(norm, name)
            out.append(self.status(child_path))
        return out

    def walk_all(self, path: str = "/") -> Iterator[tuple[str, INode]]:
        """Preorder walk of *every* inode under ``path`` — directories
        included, children sorted by name.  Parents always precede their
        children, which is what makes this the fsimage serialization
        order (the decoder can rebuild the tree in one forward pass).
        """
        node = self._resolve(path)
        norm = normalize(path)
        yield norm, node
        if node.is_dir:
            for name in sorted(node.children):  # type: ignore[union-attr]
                yield from self.walk_all(posixpath.join(norm, name))

    def dump(self) -> tuple:
        """A canonical, hashable snapshot of the whole tree.

        Used by the journal identity properties: two namespaces are
        equal iff their dumps are equal (paths, mtimes, replication,
        construction state, and exact block lists).
        """
        out = []
        for walked_path, inode in self.walk_all("/"):
            if inode.is_dir:
                out.append((walked_path, "dir", inode.mtime))
            else:
                out.append(
                    (
                        walked_path,
                        "file",
                        inode.replication,  # type: ignore[union-attr]
                        inode.mtime,
                        inode.under_construction,  # type: ignore[union-attr]
                        tuple(
                            (b.block_id, b.generation, b.length)
                            for b in inode.blocks  # type: ignore[union-attr]
                        ),
                    )
                )
        return tuple(out)

    def walk_files(self, path: str = "/") -> Iterator[tuple[str, INodeFile]]:
        """Yield ``(path, inode)`` for every file under ``path``."""
        node = self._resolve(path)
        norm = normalize(path)
        if not node.is_dir:
            yield norm, node  # type: ignore[misc]
            return
        for name in sorted(node.children):  # type: ignore[union-attr]
            yield from self.walk_files(posixpath.join(norm, name))

    def du(self, path: str) -> int:
        """Total bytes (pre-replication) under a path."""
        return sum(inode.length for _, inode in self.walk_files(path))

    def count(self, path: str) -> tuple[int, int, int]:
        """``(dirs, files, bytes)`` under a path — ``hadoop fs -count``."""
        node = self._resolve(path)
        if not node.is_dir:
            return (0, 1, node.length)  # type: ignore[union-attr]
        dirs, files, nbytes = 1, 0, 0
        for name in sorted(node.children):  # type: ignore[union-attr]
            d, f, b = self.count(posixpath.join(normalize(path), name))
            dirs, files, nbytes = dirs + d, files + f, nbytes + b
        return dirs, files, nbytes
