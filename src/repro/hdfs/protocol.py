"""The NameNode <-> DataNode wire protocol (as plain dataclasses).

In Hadoop, the NameNode never contacts DataNodes; it piggybacks
commands on heartbeat *responses*.  We preserve that direction of
control because it is exactly what the course's HDFS lecture diagrams
(Figure 2: "DataNodes report block information to NameNode").
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class InvalidateCommand:
    """Delete these block replicas from local storage."""

    block_ids: tuple[int, ...]


@dataclass(frozen=True)
class ReplicateCommand:
    """Push one block replica to another DataNode."""

    block_id: int
    target: str


Command = InvalidateCommand | ReplicateCommand


@dataclass(frozen=True)
class HeartbeatResponse:
    """What the NameNode returns to a heartbeating DataNode."""

    commands: tuple[Command, ...] = ()
    re_register: bool = False  # NameNode restarted and lost this node


@dataclass(frozen=True)
class BlockReport:
    """Full inventory of one DataNode's replicas."""

    datanode: str
    block_ids: tuple[int, ...]
    corrupt_ids: tuple[int, ...] = ()


@dataclass
class DatanodeInfo:
    """Registration/heartbeat payload: identity + storage stats."""

    name: str
    rack: str
    capacity: int
    used: int = 0

    @property
    def remaining(self) -> int:
        return self.capacity - self.used
