"""NameNode safe mode.

On startup (and after a restart) the NameNode refuses namespace
mutations until a configured fraction of its known blocks have been
reported by DataNodes.  This is the mechanism behind the paper's
war story: after the dedicated teaching cluster was restarted "it
typically took at least fifteen minutes for all the Data Nodes to check
for data integrity and report back to the Name Node" — i.e., for safe
mode to clear.
"""

from __future__ import annotations

from repro.util.errors import SafeModeException


class SafeMode:
    """Tracks block-report progress and the manual override."""

    def __init__(self, threshold: float, extension: float):
        self.threshold = threshold
        self.extension = extension
        self.active = True
        self.manual = False  # entered via dfsadmin -safemode enter
        self.blocks_total = 0
        self.blocks_safe = 0
        self._extension_deadline: float | None = None

    # ------------------------------------------------------------------
    def set_block_totals(self, total: int, safe: int) -> None:
        self.blocks_total = total
        self.blocks_safe = safe

    @property
    def ratio(self) -> float:
        if self.blocks_total == 0:
            return 1.0
        return self.blocks_safe / self.blocks_total

    def threshold_met(self) -> bool:
        return self.ratio >= self.threshold

    # ------------------------------------------------------------------
    def check(self, operation: str) -> None:
        """Raise if a mutating operation arrives while in safe mode."""
        if self.active:
            raise SafeModeException(
                f"cannot {operation}: NameNode is in safe mode "
                f"({self.blocks_safe}/{self.blocks_total} blocks reported, "
                f"threshold {self.threshold:.3f})"
            )

    def maybe_schedule_exit(self, now: float) -> float | None:
        """If the threshold is newly met, return the exit time (now +
        extension) for the NameNode to schedule; else None."""
        if not self.active or self.manual:
            return None
        if self.threshold_met() and self._extension_deadline is None:
            self._extension_deadline = now + self.extension
            return self._extension_deadline
        return None

    def try_exit(self, now: float) -> bool:
        """Attempt the scheduled exit; re-entry of the danger zone aborts."""
        if self.manual or not self.active:
            return not self.active
        if self.threshold_met() and self._extension_deadline is not None:
            if now >= self._extension_deadline:
                self.active = False
                return True
        self._extension_deadline = None
        return False

    # -- manual control (dfsadmin) --------------------------------------
    def enter_manual(self) -> None:
        self.active = True
        self.manual = True
        self._extension_deadline = None

    def leave_manual(self) -> None:
        self.active = False
        self.manual = False
        self._extension_deadline = None

    def describe(self) -> str:
        state = "ON" if self.active else "OFF"
        return (
            f"Safe mode is {state}. "
            f"{self.blocks_safe} of {self.blocks_total} blocks reported "
            f"({self.ratio:.1%}, threshold {self.threshold:.1%})."
        )
