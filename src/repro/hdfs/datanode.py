"""The DataNode daemon: block storage, heartbeats, reports, failures.

Everything the paper's HDFS lab has students observe lives here: the
``blk_xxx`` files on the Linux file system (:meth:`DataNode.physical_listing`),
the heartbeat/report traffic to the NameNode, the startup integrity scan
that delays cluster restarts, and the abrupt-crash failure mode that the
students' leaky jobs kept triggering.
"""

from __future__ import annotations

import enum
from typing import TYPE_CHECKING, Callable

from repro.cluster.hardware import Node
from repro.hdfs.block import Block, StoredBlock
from repro.hdfs.blockcache import BlockCache
from repro.hdfs.config import HdfsConfig
from repro.hdfs.protocol import (
    BlockReport,
    DatanodeInfo,
    HeartbeatResponse,
    InvalidateCommand,
    ReplicateCommand,
)
from repro.sim.engine import Simulation
from repro.util.errors import (
    BlockNotFoundError,
    CorruptBlockError,
    DataNodeDownError,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.hdfs.namenode import NameNode


class DataNodeState(enum.Enum):
    STOPPED = "stopped"
    STARTING = "starting"  # running the startup integrity scan
    UP = "up"
    CRASHED = "crashed"


class DataNode:
    """One DataNode daemon bound to a physical :class:`Node`."""

    def __init__(
        self,
        node: Node,
        namenode: "NameNode",
        sim: Simulation,
        config: HdfsConfig,
        peer_lookup: Callable[[str], "DataNode"],
    ):
        self.node = node
        self.namenode = namenode
        self.sim = sim
        self.config = config
        self.peer_lookup = peer_lookup
        self.state = DataNodeState.STOPPED
        self.blocks: dict[int, StoredBlock] = {}
        #: Running byte total of live replicas — kept in lock-step with
        #: ``blocks`` by write_block/drop_block so every heartbeat's
        #: ``info()`` is O(1) instead of an O(#blocks) sum.
        self._used_bytes = 0
        #: Host-side cache of fully-attested replicas (LRU, keyed by
        #: (block_id, generation)).  Hits skip the per-read memo walk;
        #: simulated time and counters are charged identically either way.
        self.cache = BlockCache(config.block_cache_bytes)
        #: Pre-existing on-disk data (other tenants' blocks, staged
        #: course datasets) that the startup integrity scan must verify
        #: but that is not modeled as live block objects.  This is what
        #: makes a near-full 850 GB HDD take ~15 minutes to rescan.
        self.ballast_bytes: int = 0
        self._cancel_heartbeat: Callable[[], None] | None = None
        #: Latency multiplier applied to simulated block reads (>= 1.0);
        #: the slow-disk fault injector raises it (see ``repro.faults``).
        self.disk_slow_factor: float = 1.0
        self.heartbeats_sent = 0
        self.blocks_served = 0
        self.restarts = 0

    # ------------------------------------------------------------------
    @property
    def name(self) -> str:
        return self.node.name

    @property
    def is_serving(self) -> bool:
        return self.state == DataNodeState.UP and self.node.is_up

    @property
    def used_bytes(self) -> int:
        return self._used_bytes

    def info(self) -> DatanodeInfo:
        return DatanodeInfo(
            name=self.name,
            rack=self.node.rack_name,
            capacity=self.node.spec.disk_bytes,
            used=self.used_bytes,
        )

    def has_space_for(self, nbytes: int) -> bool:
        # The whole disk counts, not just HDFS blocks: scratch data and
        # other tenants share the same spindle.
        limit = self.node.spec.disk_bytes * self.config.datanode_full_fraction
        return self.node.disk.used + nbytes <= limit

    # -- lifecycle -------------------------------------------------------
    def start(self) -> float:
        """Start the daemon.  Returns the startup-scan duration.

        A restarting DataNode first verifies every local replica (the
        integrity check the paper blames for 15-minute restarts); only
        then does it register and send its block report.
        """
        if self.state in (DataNodeState.UP, DataNodeState.STARTING):
            return 0.0
        self.restarts += 1
        self.state = DataNodeState.STARTING
        # The integrity scan only has to CRC bytes whose chunk memos
        # hold no verdict; attested replicas re-register at disk-walk
        # cost (modeled as free next to the CRC work).  Ballast is
        # never attested — it is other tenants' data.
        scan_bytes = self.ballast_bytes + sum(
            stored.unverified_bytes for stored in self.blocks.values()
        )
        scan_time = scan_bytes / self.config.startup_scan_bw
        self.sim.bus.publish(
            "hdfs.datanode.starting",
            self.sim.now,
            datanode=self.name,
            scan_seconds=scan_time,
            blocks=len(self.blocks),
        )
        self.sim.schedule(scan_time, self._finish_startup)
        return scan_time

    def _finish_startup(self) -> None:
        if self.state != DataNodeState.STARTING:
            return  # crashed or stopped mid-scan
        self.state = DataNodeState.UP
        self.namenode.register_datanode(self.info())
        self.send_block_report()
        # All DataNodes with the same interval share one timer wheel:
        # a 10k-node heartbeat instant is one engine event, not 10k.
        self._cancel_heartbeat = self.sim.wheel(
            self.config.heartbeat_interval
        ).subscribe(self._heartbeat)
        self.sim.bus.publish("hdfs.datanode.up", self.sim.now, datanode=self.name)

    def stop(self) -> None:
        """Graceful shutdown: stop heartbeating, keep data on disk."""
        self._halt(DataNodeState.STOPPED, "hdfs.datanode.stopped")

    def crash(self) -> None:
        """Abrupt death (the Java-heap-leak scenario): identical to a
        stop from the NameNode's point of view — silence."""
        self._halt(DataNodeState.CRASHED, "hdfs.datanode.crashed")

    def _halt(self, state: DataNodeState, topic: str) -> None:
        if self._cancel_heartbeat is not None:
            self._cancel_heartbeat()
            self._cancel_heartbeat = None
        self.state = state
        self.sim.bus.publish(topic, self.sim.now, datanode=self.name)

    # -- heartbeat & commands ---------------------------------------------
    def _heartbeat(self) -> None:
        if not self.is_serving:
            return
        if self.sim.faults.datanode_heartbeat_crash(self):
            self.crash()
            return
        self.heartbeats_sent += 1
        response = self.namenode.heartbeat(self.info())
        if response.re_register:
            self.namenode.register_datanode(self.info())
            self.send_block_report()
            return
        for command in response.commands:
            self._execute(command)

    def _execute(self, command) -> None:
        if isinstance(command, InvalidateCommand):
            for block_id in command.block_ids:
                self.drop_block(block_id)
            self.sim.bus.publish(
                "hdfs.datanode.invalidated",
                self.sim.now,
                datanode=self.name,
                block_ids=list(command.block_ids),
            )
        elif isinstance(command, ReplicateCommand):
            self._replicate(command.block_id, command.target)

    def _replicate(self, block_id: int, target_name: str) -> None:
        stored = self.blocks.get(block_id)
        if stored is None or not stored.verify():
            return  # source lost or corrupt; NameNode will retry elsewhere
        try:
            target = self.peer_lookup(target_name)
        except KeyError:
            return
        if not target.is_serving:
            return
        ok = target.write_block(stored.block, stored.data)
        if ok:
            self.namenode.block_received(target_name, stored.block)
            self.sim.bus.publish(
                "hdfs.block.replicated",
                self.sim.now,
                block_id=block_id,
                source=self.name,
                target=target_name,
            )

    def send_block_report(self) -> None:
        # verify() is memoised per chunk: a report over clean, already
        # attested replicas costs a memo walk, not a full re-CRC.
        good, corrupt = [], []
        for block_id, stored in self.blocks.items():
            (good if stored.verify() else corrupt).append(block_id)
        report = BlockReport(
            datanode=self.name,
            block_ids=tuple(sorted(good)),
            corrupt_ids=tuple(sorted(corrupt)),
        )
        self.namenode.process_block_report(report)

    # -- data path ---------------------------------------------------------
    def write_block(self, block: Block, data) -> bool:
        """Store one replica; False if down or out of space.

        ``data`` may be any bytes-like object (``memoryview`` slices
        from the client split loop land here); the ``StoredBlock``
        constructor is the single copy boundary.
        """
        if not self.is_serving:
            return False
        if block.block_id in self.blocks:
            return True  # idempotent re-write of the same replica
        if not self.has_space_for(block.length):
            return False
        if not self.node.disk.allocate(block.length):
            return False
        # A re-arriving id (re-replication after an earlier invalidate)
        # must not serve stale cached bytes for any generation.
        self.cache.invalidate(block.block_id)
        self.blocks[block.block_id] = StoredBlock(
            block,
            data,
            chunk_size=self.config.checksum_chunk_size,
            memo=self.config.checksum_memo,
        )
        self._used_bytes += block.length
        return True

    def drop_block(self, block_id: int) -> StoredBlock | None:
        """Remove a replica: blocks dict, disk, byte counter, cache.

        The one sanctioned removal path — invalidate commands and the
        balancer both use it so ``used_bytes`` and the cache can never
        drift from ``blocks``.
        """
        stored = self.blocks.pop(block_id, None)
        if stored is not None:
            self.node.disk.release(stored.length)
            self._used_bytes -= stored.length
        self.cache.invalidate(block_id)
        return stored

    def read_block(self, block_id: int) -> bytes:
        """Read and checksum-verify one replica.

        A cache hit returns the attested bytes without walking the
        chunk memos; entries are admitted only after a fully verified
        read and evicted on any mutation, so hits occur exactly when a
        cold read would have found every memo already OK — the memo
        trajectory is bit-identical cache-on vs cache-off.
        """
        if not self.is_serving:
            raise DataNodeDownError(f"{self.name} is {self.state.value}")
        stored = self.blocks.get(block_id)
        if stored is None:
            raise BlockNotFoundError(f"blk_{block_id} not on {self.name}")
        cached = self.cache.get(block_id, stored.generation)
        if cached is not None:
            self.blocks_served += 1
            return cached.data
        data = stored.read()  # raises CorruptBlockError on bad checksum
        self.blocks_served += 1
        if stored.memo_enabled:
            self.cache.put(stored)
        return data

    def read_block_range(self, block_id: int, offset: int, length: int | None) -> memoryview:
        """Ranged read: verify and return only the touched chunks.

        Zero-copy — the caller gets a ``memoryview`` into the replica.
        Ranged reads skip the cache: partial verification is already
        proportional to the range, and partially-read replicas are not
        admitted.
        """
        if not self.is_serving:
            raise DataNodeDownError(f"{self.name} is {self.state.value}")
        stored = self.blocks.get(block_id)
        if stored is None:
            raise BlockNotFoundError(f"blk_{block_id} not on {self.name}")
        view = stored.read_range(offset, length)  # raises CorruptBlockError
        self.blocks_served += 1
        return view

    def has_block(self, block_id: int) -> bool:
        return block_id in self.blocks

    def corrupt_block(self, block_id: int) -> None:
        """Fault injection: silently damage a replica on disk."""
        stored = self.blocks.get(block_id)
        if stored is None:
            raise BlockNotFoundError(f"blk_{block_id} not on {self.name}")
        stored.corrupt()
        self.cache.invalidate(block_id)

    def verify_all(self) -> list[int]:
        """Run the block scanner; returns ids of corrupt replicas.

        Memoised: only chunks with no remembered verdict are re-CRC'd.
        """
        bad = [bid for bid, stored in self.blocks.items() if not stored.verify()]
        for bid in bad:
            self.namenode.report_bad_block(bid, self.name)
        return sorted(bad)

    # -- observability -------------------------------------------------------
    def physical_listing(self) -> list[str]:
        """The Linux-FS view of this DataNode's storage directory —
        the ``blk_xxx`` files in the paper's Figure 2."""
        return sorted(f"blk_{bid}" for bid in self.blocks)

    def __repr__(self) -> str:
        return (
            f"DataNode({self.name}, {self.state.value}, "
            f"{len(self.blocks)} blocks, {self.used_bytes} bytes)"
        )
