"""Generation-keyed LRU cache of verified block bytes.

One :class:`BlockCache` hangs off each simulated DataNode.  A hit hands
back the same verified ``StoredBlock`` the DataNode holds, skipping the
memo walk and dictionary plumbing of a cold read — a *host-side*
shortcut only.  The determinism contract (PR 1/PR 4 convention):

* A hit is only taken when the replica is already fully attested
  (every chunk memo OK), so the memo-state trajectory — and with it the
  memo-driven restart-scan cost model — is bit-identical cache-on vs
  cache-off.
* The cache never touches the event bus, simulated clocks, Counters,
  or locality tallies.  Simulated disk/network time for a cached read
  is charged exactly as for an uncached one.
* Entries are keyed by ``(block_id, generation)`` and strictly evicted
  whenever the replica can change out from under the key:
  ``corrupt_block``, ``InvalidateCommand``, re-replication/balancer
  moves, and any ``write_block`` over an existing id.

Hit/miss/eviction tallies live on the cache object itself so callers
(benchmarks, PerfStats merges) can read them without the hdfs layer
importing ``repro.mapreduce``.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.hdfs.block import StoredBlock


class BlockCache:
    """Byte-bounded LRU over verified replicas, keyed by (id, generation).

    ``capacity_bytes == 0`` disables the cache: every lookup misses and
    ``put`` is a no-op, so a disabled cache is indistinguishable from
    no cache at all.
    """

    __slots__ = ("capacity_bytes", "_entries", "used_bytes", "hits", "misses", "evictions")

    def __init__(self, capacity_bytes: int):
        if capacity_bytes < 0:
            raise ValueError("capacity_bytes must be >= 0")
        self.capacity_bytes = capacity_bytes
        self._entries: OrderedDict[tuple[int, int], "StoredBlock"] = OrderedDict()
        self.used_bytes = 0
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: tuple[int, int]) -> bool:
        return key in self._entries

    def get(self, block_id: int, generation: int) -> "StoredBlock | None":
        """Return the cached replica, promoting it to most-recent."""
        entry = self._entries.get((block_id, generation))
        if entry is None:
            self.misses += 1
            return None
        self._entries.move_to_end((block_id, generation))
        self.hits += 1
        return entry

    def put(self, stored: "StoredBlock") -> None:
        """Admit a fully-verified replica, evicting LRU entries to fit.

        Oversized replicas (bigger than the whole cache) are refused
        rather than flushing everything for a single entry.
        """
        if self.capacity_bytes == 0 or stored.length > self.capacity_bytes:
            return
        key = (stored.block_id, stored.generation)
        old = self._entries.pop(key, None)
        if old is not None:
            self.used_bytes -= old.length
        self._entries[key] = stored
        self.used_bytes += stored.length
        while self.used_bytes > self.capacity_bytes:
            _, victim = self._entries.popitem(last=False)
            self.used_bytes -= victim.length
            self.evictions += 1

    def invalidate(self, block_id: int) -> None:
        """Drop every generation of ``block_id`` (corrupt/invalidate/move)."""
        stale = [key for key in self._entries if key[0] == block_id]
        for key in stale:
            victim = self._entries.pop(key)
            self.used_bytes -= victim.length
            self.evictions += 1

    def clear(self) -> None:
        self.evictions += len(self._entries)
        self._entries.clear()
        self.used_bytes = 0

    def stats(self) -> dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "entries": len(self._entries),
            "used_bytes": self.used_bytes,
        }
