"""Rack-aware replica placement (Hadoop's default policy).

The default policy the course teaches in the HDFS lecture:

1. first replica on the writer's node, when the writer runs on a
   DataNode (this is what makes MapReduce *output* node-local);
2. second replica on a node in a *different* rack (survives a rack
   failure);
3. third replica on a different node in the *same rack as the second*
   (cheap third copy — only one cross-rack transfer per block);
4. any further replicas on random nodes.

On a single-rack cluster — like the paper's dedicated 8-node teaching
cluster — the policy degrades gracefully to "distinct random nodes".
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.cluster.topology import ClusterTopology
from repro.util.rng import RngStream


class ReplicaPlacementPolicy:
    """Chooses DataNode targets for a new block or a re-replication."""

    def __init__(self, topology: ClusterTopology, rng: RngStream):
        self.topology = topology
        self.rng = rng

    def choose_targets(
        self,
        num_replicas: int,
        candidates: Sequence[str],
        writer: str | None = None,
        exclude: Iterable[str] = (),
    ) -> list[str]:
        """Pick up to ``num_replicas`` distinct DataNode names.

        ``candidates`` are the eligible nodes (live, with space), in the
        NameNode's deterministic order.  Returns fewer than requested if
        the cluster cannot satisfy the policy — the caller records the
        block as under-replicated, it does not fail the write.
        """
        excluded = set(exclude)
        available = [c for c in candidates if c not in excluded]
        targets: list[str] = []

        def take(name: str) -> None:
            targets.append(name)
            available.remove(name)

        # 1) writer-local replica.
        if writer is not None and writer in available:
            take(writer)
        elif available and len(targets) < num_replicas:
            take(self.rng.choice(available))

        # 2) a different rack from the first replica.
        if targets and len(targets) < num_replicas and available:
            first_rack = self.topology.rack_of(targets[0])
            off_rack = [
                c for c in available if self.topology.rack_of(c) != first_rack
            ]
            if off_rack:
                take(self.rng.choice(off_rack))
            else:  # single-rack cluster: any other node
                take(self.rng.choice(available))

        # 3) same rack as the second replica.
        if len(targets) >= 2 and len(targets) < num_replicas and available:
            second_rack = self.topology.rack_of(targets[1])
            same_rack = [
                c for c in available if self.topology.rack_of(c) == second_rack
            ]
            if same_rack:
                take(self.rng.choice(same_rack))
            elif available:
                take(self.rng.choice(available))

        # 4) the rest anywhere.
        while len(targets) < num_replicas and available:
            take(self.rng.choice(available))

        return targets
