"""``hadoop fsck`` — the file-system checker.

The paper's instructors "ended up with a corrupted Hadoop cluster that
stopped all the new jobs"; fsck is the tool that diagnoses that state.
It walks the namespace, cross-references every block against the
NameNode's location map, and reports missing, corrupt and
under-replicated blocks with an overall HEALTHY/CORRUPT verdict.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.hdfs.namenode import NameNode


@dataclass
class FsckReport:
    """The result of one fsck run."""

    path: str
    total_files: int = 0
    total_dirs: int = 0
    total_blocks: int = 0
    total_bytes: int = 0
    under_replicated: int = 0
    over_replicated: int = 0
    missing_blocks: int = 0
    corrupt_replicas: int = 0
    min_replication_found: int = 0
    problem_files: list[str] = field(default_factory=list)
    detail_lines: list[str] = field(default_factory=list)

    @property
    def status(self) -> str:
        return "CORRUPT" if self.missing_blocks else "HEALTHY"

    @property
    def healthy(self) -> bool:
        return self.status == "HEALTHY"

    def render(self) -> str:
        lines = [
            f"FSCK started for path {self.path}",
            *self.detail_lines,
            f" Total size:    {self.total_bytes} B",
            f" Total dirs:    {self.total_dirs}",
            f" Total files:   {self.total_files}",
            f" Total blocks:  {self.total_blocks}",
            f" Minimally replicated blocks: "
            f"{self.total_blocks - self.missing_blocks}",
            f" Under-replicated blocks:     {self.under_replicated}",
            f" Over-replicated blocks:      {self.over_replicated}",
            f" Missing blocks:              {self.missing_blocks}",
            f" Corrupt replicas:            {self.corrupt_replicas}",
            "",
            f"The filesystem under path '{self.path}' is {self.status}",
        ]
        return "\n".join(lines)


def fsck(
    namenode: NameNode, path: str = "/", list_blocks: bool = False
) -> FsckReport:
    """Check the subtree under ``path``."""
    report = FsckReport(path=path)
    node = namenode.namespace._resolve(path)
    if node.is_dir:
        # Count directories in the subtree (the root of the walk included).
        stack = [node]
        while stack:
            current = stack.pop()
            if current.is_dir:
                report.total_dirs += 1
                stack.extend(current.children.values())

    for file_path, inode in namenode.namespace.walk_files(path):
        report.total_files += 1
        report.total_bytes += inode.length
        file_missing = 0
        for block in inode.blocks:
            report.total_blocks += 1
            meta = namenode.block_map[block.block_id]
            live = sum(1 for d in meta.locations if namenode._is_live(d))
            report.corrupt_replicas += len(meta.corrupt_on)
            if live == 0:
                report.missing_blocks += 1
                file_missing += 1
            elif live < meta.expected_replication:
                report.under_replicated += 1
            elif live > meta.expected_replication:
                report.over_replicated += 1
            if list_blocks:
                locs = ",".join(sorted(meta.locations)) or "<none>"
                report.detail_lines.append(
                    f"{file_path}: blk_{block.block_id} len={block.length} "
                    f"repl={live}/{meta.expected_replication} [{locs}]"
                )
        if file_missing:
            report.problem_files.append(file_path)
            report.detail_lines.append(
                f"{file_path}: MISSING {file_missing} blocks of "
                f"{len(inode.blocks)} -- CORRUPT"
            )
    return report
