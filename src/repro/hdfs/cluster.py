"""One-call assembly of a complete HDFS cluster.

``HdfsCluster`` wires a NameNode and one DataNode per hardware node over
a :class:`~repro.cluster.builder.HadoopHardware`, starts the daemons on
the shared simulation, and hands out clients and shells.  This is the
object every higher layer (MapReduce, myHadoop, the course platforms)
builds on.
"""

from __future__ import annotations

from typing import Callable

from repro.cluster.builder import HadoopHardware, build_hadoop_cluster
from repro.hdfs.client import DFSClient
from repro.hdfs.config import HdfsConfig
from repro.hdfs.datanode import DataNode
from repro.hdfs.dfsadmin import DfsAdmin
from repro.hdfs.localfs import LinuxFileSystem
from repro.hdfs.namenode import NameNode
from repro.hdfs.shell import FsShell
from repro.sim.engine import Simulation
from repro.util.errors import ConfigError
from repro.util.rng import RngStream


class HdfsCluster:
    """A running HDFS: NameNode + DataNodes + shared simulation."""

    def __init__(
        self,
        hardware: HadoopHardware | None = None,
        num_datanodes: int = 8,
        config: HdfsConfig | None = None,
        sim: Simulation | None = None,
        seed: int = 0,
        autostart: bool = True,
    ):
        self.sim = sim or Simulation()
        self.hardware = hardware or build_hadoop_cluster(num_workers=num_datanodes)
        self.config = config or HdfsConfig()
        self.rng = RngStream(seed=seed).child("hdfs")
        self.namenode = NameNode(
            sim=self.sim,
            topology=self.hardware.topology,
            config=self.config,
            rng=self.rng.child("namenode"),
        )
        self.datanodes: dict[str, DataNode] = {}
        for node in self.hardware.topology.nodes():
            self.datanodes[node.name] = DataNode(
                node=node,
                namenode=self.namenode,
                sim=self.sim,
                config=self.config,
                peer_lookup=self.datanode,
            )
        if autostart:
            self.start()

    # ------------------------------------------------------------------
    @property
    def topology(self):
        return self.hardware.topology

    @property
    def network(self):
        return self.hardware.network

    def datanode(self, name: str) -> DataNode:
        try:
            return self.datanodes[name]
        except KeyError:
            raise KeyError(name) from None

    # ------------------------------------------------------------------
    def start(self, timeout: float = 3600.0) -> None:
        """Start every DataNode and wait for HDFS to become writable."""
        for datanode in self.datanodes.values():
            datanode.start()
        self.wait_until(self._ready, timeout=timeout)

    def _ready(self) -> bool:
        if self.namenode.safemode.active:
            return False
        live = sum(
            1 for d in self.namenode.datanodes.values() if d.alive
        )
        return live >= len(self.datanodes)

    def wait_until(
        self,
        predicate: Callable[[], bool],
        timeout: float = 3600.0,
        step: float | None = None,
    ) -> bool:
        """Advance the simulation until ``predicate()`` holds."""
        interval = step or self.config.heartbeat_interval
        deadline = self.sim.now + timeout
        while self.sim.now < deadline:
            if predicate():
                return True
            self.sim.run_for(min(interval, deadline - self.sim.now))
        return predicate()

    # ------------------------------------------------------------------
    def client(
        self, node: str | None = None, charge_time: bool = True
    ) -> DFSClient:
        """A DFSClient, optionally pinned to a cluster node for locality."""
        if node is not None and node not in self.hardware.topology:
            raise ConfigError(f"unknown node {node!r}")
        return DFSClient(
            namenode=self.namenode,
            dn_lookup=self.datanode,
            network=self.hardware.network,
            sim=self.sim,
            node=node,
            charge_time=charge_time,
        )

    def shell(self, localfs: LinuxFileSystem | None = None) -> FsShell:
        return FsShell(self.client(), localfs=localfs)

    def dfsadmin(self) -> DfsAdmin:
        return DfsAdmin(self.namenode)

    # ------------------------------------------------------------------
    # fault-injection conveniences (used by tests, labs and the
    # classroom simulator)
    def crash_datanode(self, name: str) -> None:
        self.datanode(name).crash()

    def stop_datanode(self, name: str) -> None:
        self.datanode(name).stop()

    def restart_datanode(self, name: str) -> float:
        """Restart one DataNode; returns its integrity-scan duration."""
        return self.datanode(name).start()

    def crash_namenode(self) -> None:
        """Kill the NameNode process (DataNodes keep running and keep
        heartbeating into the void)."""
        self.namenode.crash()

    def recover_namenode(self, timeout: float = 3600.0) -> None:
        """Replay the journal, then wait for DataNodes to re-register,
        re-report, and for safemode to lift."""
        self.namenode.recover()
        self.wait_until(self._ready, timeout=timeout)

    def restart_cluster(self) -> float:
        """The paper's recovery procedure: bounce everything.

        Returns the longest DataNode startup-scan time — the floor on
        how long the cluster is unavailable (the "fifteen minutes").
        """
        for datanode in self.datanodes.values():
            if datanode.is_serving:
                datanode.stop()
        self.namenode.restart()
        return max(dn.start() for dn in self.datanodes.values())

    def total_stored_bytes(self) -> int:
        return sum(dn.used_bytes for dn in self.datanodes.values())
