"""``hadoop balancer`` — even out DataNode disk utilization.

After a node joins (or a hot client writes everything locally — the
writer-local first replica makes this easy to trigger in class), block
distribution skews.  The balancer iteratively moves replicas from
over-utilized DataNodes to under-utilized ones until every node sits
within ``threshold`` of the cluster-average utilization, preserving the
replication invariant (never two replicas of a block on one node).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.hdfs.cluster import HdfsCluster


@dataclass
class BalancerReport:
    """What one balancer run did."""

    iterations: int = 0
    blocks_moved: int = 0
    bytes_moved: int = 0
    converged: bool = False
    utilization_before: dict[str, float] = field(default_factory=dict)
    utilization_after: dict[str, float] = field(default_factory=dict)

    def spread_after(self) -> float:
        if not self.utilization_after:
            return 0.0
        values = list(self.utilization_after.values())
        return max(values) - min(values)


class Balancer:
    """Iteratively move block replicas toward even utilization."""

    def __init__(self, cluster: HdfsCluster, threshold: float = 0.10):
        if not (0.0 < threshold < 1.0):
            raise ValueError("threshold must be in (0, 1)")
        self.cluster = cluster
        self.threshold = threshold

    # ------------------------------------------------------------------
    def utilization(self) -> dict[str, float]:
        """HDFS-bytes-used / capacity per live DataNode."""
        out = {}
        for name, datanode in self.cluster.datanodes.items():
            if datanode.is_serving:
                out[name] = datanode.used_bytes / datanode.node.spec.disk_bytes
        return out

    def _average(self) -> float:
        util = self.utilization()
        return sum(util.values()) / len(util) if util else 0.0

    def is_balanced(self) -> bool:
        average = self._average()
        return all(
            abs(value - average) <= self.threshold
            for value in self.utilization().values()
        )

    # ------------------------------------------------------------------
    def run(self, max_iterations: int = 1000) -> BalancerReport:
        """Move blocks until balanced (or out of moves/iterations)."""
        report = BalancerReport(utilization_before=self.utilization())
        namenode = self.cluster.namenode
        for _ in range(max_iterations):
            report.iterations += 1
            if self.is_balanced():
                report.converged = True
                break
            util = self.utilization()
            average = sum(util.values()) / len(util)
            sources = sorted(
                (n for n, u in util.items() if u > average),
                key=lambda n: -util[n],
            )
            targets = sorted(
                (n for n, u in util.items() if u < average),
                key=lambda n: util[n],
            )
            moved = self._move_one(namenode, sources, targets)
            if not moved:
                break  # no legal move exists
            report.blocks_moved += 1
            report.bytes_moved += moved
        report.utilization_after = self.utilization()
        if self.is_balanced():
            report.converged = True
        return report

    def _move_one(self, namenode, sources: list[str], targets: list[str]) -> int:
        """Move one replica from the fullest legal source to the
        emptiest legal target; returns the bytes moved (0 when stuck)."""
        for source_name in sources:
            source = self.cluster.datanode(source_name)
            for block_id, stored in sorted(source.blocks.items()):
                meta = namenode.block_map.get(block_id)
                if meta is None or source_name not in meta.locations:
                    continue
                for target_name in targets:
                    target = self.cluster.datanode(target_name)
                    if target.has_block(block_id):
                        continue  # would violate one-replica-per-node
                    if not target.has_space_for(stored.length):
                        continue
                    if not target.write_block(stored.block, stored.data):
                        continue
                    # Commit: target gains the replica, source loses it.
                    # drop_block keeps the source's byte counter and
                    # block cache consistent with the removal.
                    namenode.block_received(target_name, stored.block)
                    meta.locations.discard(source_name)
                    source.drop_block(block_id)
                    namenode._check_replication(meta)
                    # Charge the transfer to the network model.
                    self.cluster.network.transfer_time(
                        source_name, target_name, stored.length
                    )
                    return stored.length
        return 0
