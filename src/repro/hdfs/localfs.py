"""A minimal Linux-file-system stand-in.

Students' home directories, staged datasets and exported job output all
live on the "Linux file system" side of the paper's Figure 2.  This is
a deliberately small in-memory model: enough for ``-put``/``-get``
round-trips, myHadoop staging, and the serial no-HDFS runner.
"""

from __future__ import annotations

import posixpath

from repro.util.errors import FileNotFoundInHdfs, IsADirectory


class LinuxFileSystem:
    """Flat in-memory file store with directory-style listing."""

    def __init__(self) -> None:
        self._files: dict[str, bytes] = {}

    @staticmethod
    def _norm(path: str) -> str:
        if not path.startswith("/"):
            path = "/" + path
        return posixpath.normpath(path)

    # ------------------------------------------------------------------
    def write_file(self, path: str, data: bytes | str) -> None:
        if isinstance(data, str):
            data = data.encode("utf-8")
        self._files[self._norm(path)] = data

    def append_file(self, path: str, data: bytes | str) -> None:
        if isinstance(data, str):
            data = data.encode("utf-8")
        key = self._norm(path)
        self._files[key] = self._files.get(key, b"") + data

    def read_file(self, path: str) -> bytes:
        key = self._norm(path)
        try:
            return self._files[key]
        except KeyError:
            if self.is_dir(key):
                raise IsADirectory(path) from None
            raise FileNotFoundInHdfs(f"local path not found: {path}") from None

    def read_text(self, path: str) -> str:
        return self.read_file(path).decode("utf-8")

    def delete(self, path: str) -> bool:
        key = self._norm(path)
        if key in self._files:
            del self._files[key]
            return True
        removed = [p for p in self._files if p.startswith(key + "/")]
        for p in removed:
            del self._files[p]
        return bool(removed)

    # ------------------------------------------------------------------
    def exists(self, path: str) -> bool:
        key = self._norm(path)
        return key in self._files or self.is_dir(key)

    def is_dir(self, path: str) -> bool:
        key = self._norm(path)
        if key == "/":
            return True
        prefix = key + "/"
        return any(p.startswith(prefix) for p in self._files)

    def size(self, path: str) -> int:
        return len(self.read_file(path))

    def listdir(self, path: str) -> list[str]:
        """Immediate children (names, not paths) of a directory."""
        key = self._norm(path)
        prefix = "/" if key == "/" else key + "/"
        children = set()
        for p in self._files:
            if p.startswith(prefix):
                rest = p[len(prefix):]
                children.add(rest.split("/", 1)[0])
        return sorted(children)

    def walk(self, path: str = "/") -> list[str]:
        """All file paths under a directory."""
        key = self._norm(path)
        if key in self._files:
            return [key]
        prefix = "/" if key == "/" else key + "/"
        return sorted(p for p in self._files if p.startswith(prefix))

    def total_bytes(self, path: str = "/") -> int:
        return sum(len(self._files[p]) for p in self.walk(path))

    def __len__(self) -> int:
        return len(self._files)
