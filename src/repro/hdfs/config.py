"""HDFS configuration (the interesting subset of ``hdfs-site.xml``)."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.util.errors import ConfigError
from repro.util.units import MB, parse_size


@dataclass
class HdfsConfig:
    """Tunable HDFS parameters.

    Defaults follow Hadoop 1.2.1 — the release the course shipped to
    students — except where noted.  Teaching platforms typically shrink
    ``block_size`` so classroom-scale datasets still split into many
    blocks (the behaviour the HDFS lab observes).
    """

    #: dfs.block.size — Hadoop 1.x default 64 MB.
    block_size: int = 64 * MB
    #: dfs.replication.
    replication: int = 3
    #: dfs.heartbeat.interval, seconds.
    heartbeat_interval: float = 3.0
    #: Heartbeats a NameNode may miss before declaring a DataNode dead.
    #: Hadoop 1.x waits 10 minutes; we default to 10 intervals to keep
    #: simulations brisk while preserving the mechanism.
    heartbeat_miss_limit: int = 10
    #: dfs.safemode.threshold.pct — fraction of blocks that must be
    #: reported before the NameNode leaves safe mode.
    safemode_threshold: float = 0.999
    #: Extra seconds the NameNode lingers in safe mode after the
    #: threshold is met (dfs.safemode.extension).
    safemode_extension: float = 5.0
    #: Seconds between replication-monitor sweeps.
    replication_check_interval: float = 3.0
    #: DataNode startup integrity scan rate, bytes/second.  Scanning a
    #: near-full 850 GB HDD at ~1 GB/s of combined seek+verify work gives
    #: the paper's "at least fifteen minutes" restart.
    startup_scan_bw: float = 1024 * MB
    #: Maximum number of blocks a replication sweep re-replicates.
    max_replication_streams: int = 2
    #: Minimum replicas that must land for a pipeline write to succeed.
    min_replicas: int = 1
    #: Bytes of NameNode heap consumed per block record (block metadata
    #: lives in memory — Figure 2's caption).  ~150 bytes in Hadoop lore.
    namenode_bytes_per_block: int = 150
    #: Permitted percentage of disk used before a DataNode refuses writes.
    datanode_full_fraction: float = 0.95

    def __post_init__(self) -> None:
        self.block_size = parse_size(self.block_size)
        if self.block_size <= 0:
            raise ConfigError("block_size must be positive")
        if self.replication < 1:
            raise ConfigError("replication must be >= 1")
        if not (0.0 < self.safemode_threshold <= 1.0):
            raise ConfigError("safemode_threshold must be in (0, 1]")
        if self.heartbeat_interval <= 0:
            raise ConfigError("heartbeat_interval must be positive")
        if self.heartbeat_miss_limit < 1:
            raise ConfigError("heartbeat_miss_limit must be >= 1")
        if self.min_replicas < 1:
            raise ConfigError("min_replicas must be >= 1")
        if not (0.0 < self.datanode_full_fraction <= 1.0):
            raise ConfigError("datanode_full_fraction must be in (0, 1]")

    @property
    def dead_node_timeout(self) -> float:
        """Seconds of heartbeat silence before a node is declared dead."""
        return self.heartbeat_interval * self.heartbeat_miss_limit

    def for_teaching(self, block_size: int | str = 64 * 1024) -> "HdfsConfig":
        """A copy with a classroom-scale block size (default 64 KB)."""
        return HdfsConfig(
            block_size=parse_size(block_size),
            replication=self.replication,
            heartbeat_interval=self.heartbeat_interval,
            heartbeat_miss_limit=self.heartbeat_miss_limit,
            safemode_threshold=self.safemode_threshold,
            safemode_extension=self.safemode_extension,
            replication_check_interval=self.replication_check_interval,
            startup_scan_bw=self.startup_scan_bw,
            max_replication_streams=self.max_replication_streams,
            min_replicas=self.min_replicas,
            namenode_bytes_per_block=self.namenode_bytes_per_block,
            datanode_full_fraction=self.datanode_full_fraction,
        )
