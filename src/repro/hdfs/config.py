"""HDFS configuration (the interesting subset of ``hdfs-site.xml``)."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.util.errors import ConfigError
from repro.util.units import MB, parse_size


@dataclass
class HdfsConfig:
    """Tunable HDFS parameters.

    Defaults follow Hadoop 1.2.1 — the release the course shipped to
    students — except where noted.  Teaching platforms typically shrink
    ``block_size`` so classroom-scale datasets still split into many
    blocks (the behaviour the HDFS lab observes).
    """

    #: dfs.block.size — Hadoop 1.x default 64 MB.
    block_size: int = 64 * MB
    #: dfs.replication.
    replication: int = 3
    #: dfs.heartbeat.interval, seconds.
    heartbeat_interval: float = 3.0
    #: Heartbeats a NameNode may miss before declaring a DataNode dead.
    #: Hadoop 1.x waits 10 minutes; we default to 10 intervals to keep
    #: simulations brisk while preserving the mechanism.
    heartbeat_miss_limit: int = 10
    #: dfs.safemode.threshold.pct — fraction of blocks that must be
    #: reported before the NameNode leaves safe mode.
    safemode_threshold: float = 0.999
    #: Extra seconds the NameNode lingers in safe mode after the
    #: threshold is met (dfs.safemode.extension).
    safemode_extension: float = 5.0
    #: Seconds between replication-monitor sweeps.
    replication_check_interval: float = 3.0
    #: DataNode startup integrity scan rate, bytes/second.  Scanning a
    #: near-full 850 GB HDD at ~1 GB/s of combined seek+verify work gives
    #: the paper's "at least fifteen minutes" restart.
    startup_scan_bw: float = 1024 * MB
    #: Maximum number of blocks a replication sweep re-replicates.
    max_replication_streams: int = 2
    #: Minimum replicas that must land for a pipeline write to succeed.
    min_replicas: int = 1
    #: Bytes of NameNode heap consumed per block record (block metadata
    #: lives in memory — Figure 2's caption).  ~150 bytes in Hadoop lore.
    namenode_bytes_per_block: int = 150
    #: Permitted percentage of disk used before a DataNode refuses writes.
    datanode_full_fraction: float = 0.95
    #: io.bytes.per.checksum — bytes covered by one CRC32 entry.  Hadoop
    #: ships 512; we default to 64 KB so production-scale 64 MB blocks
    #: keep their CRC arrays small, and shrink it alongside ``block_size``
    #: in :meth:`for_teaching` so classroom blocks still span many chunks
    #: (ranged reads then verify only the chunks they touch).
    checksum_chunk_size: int = 64 * 1024
    #: Verified-read memo: once a chunk's CRC has been checked it is not
    #: re-checked until the replica mutates (``StoredBlock.corrupt``).
    #: ``False`` restores the pre-memo re-CRC-on-every-read behaviour
    #: (and the scan-everything restart model) — kept so benchmarks can
    #: price the old data path.
    checksum_memo: bool = True
    #: Capacity of each DataNode's verified-block cache (LRU, keyed by
    #: (block_id, generation)).  0 disables the cache.  Cache state is
    #: host-side only: hits and misses charge identical simulated time.
    block_cache_bytes: int = 64 * MB
    #: Write-ahead journaling of every namespace mutation (the fsimage +
    #: edit-log pair).  Costs nothing in simulated time or determinism —
    #: fault-free runs are bit-identical with it on or off.  ``False``
    #: restores the memory-only NameNode, where a crash loses the
    #: namespace forever (the paper's nightmare scenario).
    journal: bool = True
    #: Directory for on-disk journal files (``fsimage`` + ``edits``).
    #: ``None`` keeps the journal in process memory — still
    #: crash-recoverable in-simulation, without touching the host disk.
    journal_dir: str | None = None
    #: Roll a checkpoint automatically once this many edit records have
    #: accumulated (the SecondaryNameNode's job).  0 = roll only on an
    #: explicit ``dfsadmin -saveNamespace``.
    checkpoint_edit_limit: int = 0

    def __post_init__(self) -> None:
        self.block_size = parse_size(self.block_size)
        if self.block_size <= 0:
            raise ConfigError("block_size must be positive")
        if self.replication < 1:
            raise ConfigError("replication must be >= 1")
        if not (0.0 < self.safemode_threshold <= 1.0):
            raise ConfigError("safemode_threshold must be in (0, 1]")
        if self.heartbeat_interval <= 0:
            raise ConfigError("heartbeat_interval must be positive")
        if self.heartbeat_miss_limit < 1:
            raise ConfigError("heartbeat_miss_limit must be >= 1")
        if self.min_replicas < 1:
            raise ConfigError("min_replicas must be >= 1")
        if not (0.0 < self.datanode_full_fraction <= 1.0):
            raise ConfigError("datanode_full_fraction must be in (0, 1]")
        self.checksum_chunk_size = parse_size(self.checksum_chunk_size)
        if self.checksum_chunk_size <= 0:
            raise ConfigError("checksum_chunk_size must be positive")
        self.block_cache_bytes = parse_size(self.block_cache_bytes)
        if self.block_cache_bytes < 0:
            raise ConfigError("block_cache_bytes must be >= 0")
        if self.checkpoint_edit_limit < 0:
            raise ConfigError("checkpoint_edit_limit must be >= 0")
        if self.journal_dir is not None and not self.journal:
            raise ConfigError("journal_dir is set but journal=False")

    @property
    def dead_node_timeout(self) -> float:
        """Seconds of heartbeat silence before a node is declared dead."""
        return self.heartbeat_interval * self.heartbeat_miss_limit

    def for_teaching(self, block_size: int | str = 64 * 1024) -> "HdfsConfig":
        """A copy with a classroom-scale block size (default 64 KB).

        The checksum chunk shrinks with the block (1/16th, floor 512 —
        Hadoop's io.bytes.per.checksum) so classroom blocks still span
        many chunks and ranged reads exercise partial verification.
        """
        small_block = parse_size(block_size)
        return HdfsConfig(
            block_size=small_block,
            replication=self.replication,
            heartbeat_interval=self.heartbeat_interval,
            heartbeat_miss_limit=self.heartbeat_miss_limit,
            safemode_threshold=self.safemode_threshold,
            safemode_extension=self.safemode_extension,
            replication_check_interval=self.replication_check_interval,
            startup_scan_bw=self.startup_scan_bw,
            max_replication_streams=self.max_replication_streams,
            min_replicas=self.min_replicas,
            namenode_bytes_per_block=self.namenode_bytes_per_block,
            datanode_full_fraction=self.datanode_full_fraction,
            checksum_chunk_size=max(512, small_block // 16),
            checksum_memo=self.checksum_memo,
            block_cache_bytes=self.block_cache_bytes,
            journal=self.journal,
            journal_dir=self.journal_dir,
            checkpoint_edit_limit=self.checkpoint_edit_limit,
        )
