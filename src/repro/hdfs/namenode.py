"""The NameNode: namespace, block map, liveness, replication management.

Per the paper's Figure 2: *"Block metadata lives in memory"* — the
NameNode holds the directory tree (:class:`~repro.hdfs.namespace.Namespace`)
and a block map from block id to expected replication and current
locations.  DataNodes report in; the NameNode never calls them — all
control flows back through heartbeat responses
(:class:`~repro.hdfs.protocol.HeartbeatResponse`).
"""

from __future__ import annotations

import heapq
from collections import defaultdict
from dataclasses import dataclass, field

from repro.cluster.topology import ClusterTopology
from repro.hdfs.block import Block, BlockIdGenerator
from repro.hdfs.config import HdfsConfig
from repro.hdfs.journal import (
    CheckpointStats,
    DirJournalStorage,
    ImageState,
    MemoryJournalStorage,
    NameNodeJournal,
)
from repro.hdfs.namespace import FileStatus, Namespace, normalize
from repro.hdfs.placement import ReplicaPlacementPolicy
from repro.hdfs.protocol import (
    BlockReport,
    Command,
    DatanodeInfo,
    HeartbeatResponse,
    InvalidateCommand,
    ReplicateCommand,
)
from repro.hdfs.safemode import SafeMode
from repro.sim.engine import Simulation
from repro.util.errors import (
    BlockNotFoundError,
    FileNotFoundInHdfs,
    HdfsError,
    NameNodeDownError,
    QuotaExceededError,
    ReplicationError,
)
from repro.util.rng import RngStream


@dataclass
class BlockMeta:
    """NameNode-side record for one block."""

    block: Block
    expected_replication: int
    file_path: str
    locations: set[str] = field(default_factory=set)
    corrupt_on: set[str] = field(default_factory=set)
    #: Cached "counts toward safemode" bit (>= min_replicas live
    #: replicas); maintained by NameNode._refresh_safe so safemode
    #: updates are O(1) instead of an O(#blocks) rescan per event.
    safe: bool = False

    @property
    def live_replicas(self) -> int:
        return len(self.locations)


@dataclass
class LocatedBlock:
    """A block plus its replica locations, nearest-first for a reader."""

    block: Block
    locations: list[str]


@dataclass
class DataNodeDescriptor:
    """What the NameNode remembers about one DataNode."""

    info: DatanodeInfo
    last_heartbeat: float
    alive: bool = True


class NameNode:
    """The HDFS master."""

    def __init__(
        self,
        sim: Simulation,
        topology: ClusterTopology,
        config: HdfsConfig | None = None,
        rng: RngStream | None = None,
    ):
        self.sim = sim
        self.topology = topology
        self.config = config or HdfsConfig()
        self.rng = rng or RngStream(seed=0).child("namenode")
        self.namespace = Namespace()
        self.block_map: dict[int, BlockMeta] = {}
        self.datanodes: dict[str, DataNodeDescriptor] = {}
        self.safemode = SafeMode(
            threshold=self.config.safemode_threshold,
            extension=self.config.safemode_extension,
        )
        self.placement = ReplicaPlacementPolicy(topology, self.rng.child("placement"))
        self._block_ids = BlockIdGenerator()
        self._pending_commands: dict[str, list[Command]] = defaultdict(list)
        self._needs_reregister: set[str] = set()
        self.under_replicated: set[int] = set()
        self.over_replicated: set[int] = set()
        #: Reverse replica index: datanode -> block ids with a replica
        #: there.  Keeps node-scoped operations (death, decommission)
        #: O(blocks on that node) instead of O(all blocks).
        self._blocks_on: dict[str, set[int]] = defaultdict(set)
        #: Count of blocks whose ``safe`` bit is set (O(1) safemode).
        self._safe_blocks = 0
        #: Liveness expiry heap: (last_heartbeat + timeout, name), at
        #: most one entry per node (``_liveness_scheduled`` guards).
        #: Entries are revalidated lazily on pop, so a sweep touches
        #: only nodes whose previous deadline has passed — O(expired)
        #: amortized, never O(#datanodes).
        self._liveness_heap: list[tuple[float, str]] = []
        self._liveness_scheduled: set[str] = set()
        #: Directory quotas: path -> (namespace quota | None,
        #: space quota in bytes x replication | None).  Survives restart
        #: (it's namespace metadata, like the fsimage).
        self.quotas: dict[str, tuple[int | None, int | None]] = {}
        #: DataNodes being drained: no new replicas are placed on them.
        self.decommissioning: set[str] = set()
        #: True between crash() and recover(): the process is gone, every
        #: RPC is refused, and only the journal remembers the namespace.
        self.down = False
        # The fsimage + edit-log pair.  Disabled journaling keeps a no-op
        # journal object so mutators never branch on config.
        if self.config.journal:
            storage = (
                DirJournalStorage(self.config.journal_dir)
                if self.config.journal_dir
                else MemoryJournalStorage()
            )
            self.journal = NameNodeJournal(
                storage, checkpoint_edit_limit=self.config.checkpoint_edit_limit
            )
        else:
            self.journal = NameNodeJournal(None)
        self.journal.bind(self._image_state)
        self.journal.format()
        self.restarts = 0
        self.crashes = 0
        self.recoveries = 0
        self.heartbeats_processed = 0
        self._monitors_started = False
        self._start_monitors()
        # A freshly formatted NameNode has no blocks to wait for.
        self._update_safemode()

    # ------------------------------------------------------------------
    # monitors
    def _start_monitors(self) -> None:
        if self._monitors_started:
            return
        self._monitors_started = True
        self._cancel_liveness = self.sim.wheel(
            self.config.heartbeat_interval
        ).subscribe(self._check_liveness)
        self._cancel_replication = self.sim.wheel(
            self.config.replication_check_interval
        ).subscribe(self._replication_sweep)

    def _track_liveness(self, name: str, expiry: float) -> None:
        """Ensure ``name`` has exactly one expiry entry in the heap."""
        if name not in self._liveness_scheduled:
            self._liveness_scheduled.add(name)
            heapq.heappush(self._liveness_heap, (expiry, name))

    def _check_liveness(self) -> None:
        """Declare DataNodes dead after prolonged heartbeat silence.

        Driven by the expiry heap: only nodes whose recorded deadline
        has passed are examined; a node that heartbeated since is
        re-armed at its fresh deadline.  Equal-expiry nodes die in name
        order — deterministic regardless of registration history.
        """
        if self.down:
            return
        timeout = self.config.dead_node_timeout
        now = self.sim.now
        while self._liveness_heap and self._liveness_heap[0][0] < now:
            _expiry, name = heapq.heappop(self._liveness_heap)
            self._liveness_scheduled.discard(name)
            desc = self.datanodes.get(name)
            if desc is None or not desc.alive:
                continue  # unregistered or already declared dead
            if now - desc.last_heartbeat > timeout:
                desc.alive = False
                self._remove_location_everywhere(name)
                self.sim.bus.publish(
                    "hdfs.namenode.node_dead", self.sim.now, datanode=name
                )
            else:
                self._track_liveness(name, desc.last_heartbeat + timeout)

    def _remove_location_everywhere(self, datanode: str) -> None:
        for block_id in sorted(self._blocks_on.pop(datanode, set())):
            meta = self.block_map.get(block_id)
            if meta is None:
                continue
            meta.locations.discard(datanode)
            self._refresh_safe(meta)
            self._check_replication(meta)
        self._update_safemode()

    def _replication_sweep(self) -> None:
        """Queue re-replication / deletion work, a few blocks per sweep."""
        if self.down or self.safemode.active:
            return
        streams = 0
        for block_id in sorted(self.under_replicated):
            if streams >= self.config.max_replication_streams:
                break
            meta = self.block_map.get(block_id)
            if meta is None:
                self.under_replicated.discard(block_id)
                continue
            live_sources = [
                d
                for d in sorted(meta.locations)
                if self._is_live(d) and d not in meta.corrupt_on
            ]
            if not live_sources:
                continue  # missing block: nothing to copy from
            candidates = self._eligible_targets(meta.block.length)
            targets = self.placement.choose_targets(
                1, candidates, exclude=meta.locations
            )
            if not targets:
                continue
            source = live_sources[0]
            self._pending_commands[source].append(
                ReplicateCommand(block_id=block_id, target=targets[0])
            )
            streams += 1
        # Trim over-replicated blocks (e.g., a dead node came back).
        for block_id in sorted(self.over_replicated):
            meta = self.block_map.get(block_id)
            if meta is None or meta.live_replicas <= meta.expected_replication:
                self.over_replicated.discard(block_id)
                continue
            # Tie-break free space by name: set iteration order is hash-
            # randomized, and the stable sort would otherwise leak it into
            # which replica gets invalidated (run-to-run nondeterminism).
            extra = sorted(
                meta.locations, key=lambda d: (self._free_space_of(d), d)
            )[0]
            self._remove_replica(meta, extra)
            self._pending_commands[extra].append(
                InvalidateCommand(block_ids=(block_id,))
            )
            self._check_replication(meta)

    def _free_space_of(self, datanode: str) -> int:
        desc = self.datanodes.get(datanode)
        return desc.info.remaining if desc else 0

    def _is_live(self, datanode: str) -> bool:
        desc = self.datanodes.get(datanode)
        return desc is not None and desc.alive

    def _eligible_targets(self, block_length: int) -> list[str]:
        return [
            name
            for name, desc in self.datanodes.items()
            if desc.alive
            and name not in self.decommissioning
            and desc.info.remaining >= block_length
        ]

    # ------------------------------------------------------------------
    # quotas
    def set_quota(
        self,
        path: str,
        namespace_quota: int | None = None,
        space_quota: int | None = None,
    ) -> None:
        """Set (or clear, with None/None) quotas on a directory."""
        self._check_down("set a quota")
        directory = self.namespace.get_dir(path)  # must exist and be a dir
        norm = normalize(path)
        if namespace_quota is None and space_quota is None:
            self.quotas.pop(norm, None)
            self.journal.log_set_quota(norm, None, None)
            return
        if namespace_quota is not None and namespace_quota < 1:
            raise QuotaExceededError("namespace quota must be >= 1")
        if space_quota is not None and space_quota < 0:
            raise QuotaExceededError("space quota must be >= 0")
        self.quotas[norm] = (namespace_quota, space_quota)
        self.journal.log_set_quota(norm, namespace_quota, space_quota)

    def _quota_roots_for(self, path: str) -> list[str]:
        from repro.hdfs.namespace import normalize

        norm = normalize(path)
        return [
            root
            for root in self.quotas
            if norm == root or norm.startswith(root.rstrip("/") + "/")
        ]

    def _namespace_usage(self, root: str) -> int:
        dirs, files, _bytes = self.namespace.count(root)
        return dirs - 1 + files  # the quota root itself doesn't count

    def _space_usage(self, root: str) -> int:
        total = 0
        for _path, inode in self.namespace.walk_files(root):
            total += inode.length * inode.replication
        return total

    def _check_namespace_quota(self, new_path: str) -> None:
        for root in self._quota_roots_for(new_path):
            quota, _space = self.quotas[root]
            if quota is not None and self._namespace_usage(root) + 1 > quota:
                raise QuotaExceededError(
                    f"namespace quota of {root} exceeded: "
                    f"quota={quota}, trying to add {new_path}"
                )

    def _check_space_quota(self, path: str, added_bytes: int) -> None:
        for root in self._quota_roots_for(path):
            _ns, space = self.quotas[root]
            if space is not None and self._space_usage(root) + added_bytes > space:
                raise QuotaExceededError(
                    f"space quota of {root} exceeded: quota={space} bytes "
                    f"(with replication), adding {added_bytes}"
                )

    # ------------------------------------------------------------------
    # decommissioning
    def start_decommission(self, datanode: str) -> None:
        """Begin draining a DataNode: no new replicas land on it, and
        its existing replicas are copied elsewhere by the replication
        monitor.  Reads keep working throughout."""
        self._check_down("start decommissioning")
        if datanode not in self.datanodes:
            raise HdfsError(f"unknown DataNode {datanode!r}")
        self.decommissioning.add(datanode)
        self.journal.log_decommission_start(datanode)
        for block_id in sorted(self._blocks_on.get(datanode, set())):
            meta = self.block_map.get(block_id)
            if meta is not None:
                self._check_replication(meta)
        self.sim.bus.publish(
            "hdfs.namenode.decommission_started", self.sim.now,
            datanode=datanode,
        )

    def decommission_complete(self, datanode: str) -> bool:
        """True when every block on the node is safe without it."""
        if datanode not in self.decommissioning:
            return False
        for block_id in sorted(self._blocks_on.get(datanode, set())):
            meta = self.block_map.get(block_id)
            if meta is None:
                continue
            safe_replicas = sum(
                1
                for d in meta.locations
                if self._is_live(d)
                and d != datanode
                and d not in self.decommissioning
            )
            if safe_replicas < min(
                meta.expected_replication, len(self._eligible_targets(0)) or 1
            ):
                return False
        return True

    def stop_decommission(self, datanode: str) -> None:
        self._check_down("stop decommissioning")
        self.decommissioning.discard(datanode)
        self.journal.log_decommission_stop(datanode)
        for block_id in sorted(self._blocks_on.get(datanode, set())):
            meta = self.block_map.get(block_id)
            if meta is not None:
                self._check_replication(meta)

    # ------------------------------------------------------------------
    # namespace operations (client RPCs)
    def mkdirs(self, path: str) -> bool:
        self._check_down("mkdirs")
        self.safemode.check("mkdirs")
        if not self.namespace.exists(path):
            self._check_namespace_quota(path)
        created = self.namespace.mkdirs(path, mtime=self.sim.now)
        self.journal.log_mkdirs(normalize(path), self.sim.now)
        return created

    def create_file(
        self,
        path: str,
        replication: int | None = None,
        overwrite: bool = False,
    ) -> None:
        self._check_down("create a file")
        self.safemode.check("create")
        rep = replication if replication is not None else self.config.replication
        if rep < 1:
            raise ReplicationError(f"replication must be >= 1, got {rep}")
        if overwrite and self.namespace.exists(path) and not self.namespace.is_dir(path):
            self.delete(path)  # journals its own OP_DELETE record
        if not self.namespace.exists(path):
            self._check_namespace_quota(path)
        self.namespace.create_file(
            path, replication=rep, mtime=self.sim.now, overwrite=overwrite
        )
        self.journal.log_create(normalize(path), rep, self.sim.now)

    def add_block(
        self,
        path: str,
        length: int,
        writer: str | None = None,
        exclude: tuple[str, ...] = (),
    ) -> tuple[Block, list[str]]:
        """Allocate the next block of an under-construction file and
        choose pipeline targets for it."""
        self._check_down("add a block")
        self.safemode.check("add block")
        inode = self.namespace.get_file(path)
        if not inode.under_construction:
            raise HdfsError(f"{path} is not under construction")
        self._check_space_quota(path, length * inode.replication)
        candidates = self._eligible_targets(length)
        targets = self.placement.choose_targets(
            inode.replication, candidates, writer=writer, exclude=exclude
        )
        if len(targets) < self.config.min_replicas:
            raise ReplicationError(
                f"could only place {len(targets)} of {inode.replication} "
                f"replicas for a new block of {path} "
                f"({len(candidates)} eligible DataNodes)"
            )
        # Allocate the id only once placement has succeeded: a failed
        # allocation would burn an id no journal record explains, and a
        # replayed NameNode's id counter would drift from the live one.
        block = Block(
            block_id=self._block_ids.next_id(), generation=1, length=length
        )
        inode.blocks.append(block)
        self.block_map[block.block_id] = BlockMeta(
            block=block,
            expected_replication=inode.replication,
            file_path=path,
        )
        self.journal.log_add_block(
            normalize(path), block.block_id, block.generation, block.length
        )
        return block, targets

    def abandon_block(self, path: str, block: Block) -> None:
        """Roll back a block whose pipeline completely failed."""
        self._check_down("abandon a block")
        inode = self.namespace.get_file(path)
        inode.blocks = [b for b in inode.blocks if b.block_id != block.block_id]
        meta = self.block_map.pop(block.block_id, None)
        if meta:
            self._drop_block_index(meta)
            # sorted(): keep _pending_commands keyed in a deterministic
            # order regardless of set hash order (mrlint MRE101).
            for dn in sorted(meta.locations):
                self._pending_commands[dn].append(
                    InvalidateCommand(block_ids=(block.block_id,))
                )
        self.under_replicated.discard(block.block_id)
        self.journal.log_abandon_block(normalize(path), block.block_id)
        self._update_safemode()

    def complete_file(self, path: str) -> None:
        self._check_down("complete a file")
        inode = self.namespace.get_file(path)
        for block in inode.blocks:
            meta = self.block_map[block.block_id]
            if meta.live_replicas < self.config.min_replicas:
                raise ReplicationError(
                    f"block blk_{block.block_id} of {path} has only "
                    f"{meta.live_replicas} replicas at completion"
                )
            self._check_replication(meta)
        inode.under_construction = False
        inode.mtime = self.sim.now
        self.journal.log_complete(normalize(path), self.sim.now)
        self._update_safemode()
        self.sim.bus.publish(
            "hdfs.namenode.file_completed",
            self.sim.now,
            path=path,
            blocks=len(inode.blocks),
            length=inode.length,
        )

    def get_block_locations(
        self, path: str, client_node: str | None = None
    ) -> list[LocatedBlock]:
        """Blocks of a file with live replica locations, nearest-first."""
        self._check_down("locate blocks")
        inode = self.namespace.get_file(path)
        located = []
        for block in inode.blocks:
            meta = self.block_map[block.block_id]
            live = [
                d
                for d in sorted(meta.locations)
                if self._is_live(d) and d not in meta.corrupt_on
            ]
            if client_node is not None and client_node in self.topology:
                live.sort(key=lambda d: (self.topology.distance(client_node, d), d))
            located.append(LocatedBlock(block=block, locations=live))
        return located

    def delete(self, path: str, recursive: bool = False) -> bool:
        self._check_down("delete")
        self.safemode.check("delete")
        freed = self.namespace.delete(path, recursive=recursive)
        self.journal.log_delete(normalize(path), recursive)
        for block in freed:
            meta = self.block_map.pop(block.block_id, None)
            self.under_replicated.discard(block.block_id)
            self.over_replicated.discard(block.block_id)
            if meta:
                self._drop_block_index(meta)
                # sorted(): deterministic invalidate fan-out (MRE101).
                for dn in sorted(meta.locations):
                    self._pending_commands[dn].append(
                        InvalidateCommand(block_ids=(block.block_id,))
                    )
        self._update_safemode()
        return True

    def rename(self, src: str, dst: str) -> None:
        self._check_down("rename")
        self.safemode.check("rename")
        self.namespace.rename(src, dst)
        self.journal.log_rename(normalize(src), normalize(dst))
        # Keep fsck context accurate after moves.
        for file_path, inode in self.namespace.walk_files("/"):
            for block in inode.blocks:
                meta = self.block_map.get(block.block_id)
                if meta is not None:
                    meta.file_path = file_path

    def set_replication(self, path: str, replication: int) -> None:
        self._check_down("setrep")
        self.safemode.check("setrep")
        if replication < 1:
            raise ReplicationError("replication must be >= 1")
        inode = self.namespace.get_file(path)
        if replication > inode.replication:
            self._check_space_quota(
                path, inode.length * (replication - inode.replication)
            )
        inode.replication = replication
        self.journal.log_set_replication(normalize(path), replication)
        for block in inode.blocks:
            meta = self.block_map[block.block_id]
            meta.expected_replication = replication
            self._check_replication(meta)

    # read-only namespace passthroughs
    def exists(self, path: str) -> bool:
        self._check_down("stat")
        return self.namespace.exists(path)

    def status(self, path: str) -> FileStatus:
        self._check_down("stat")
        return self.namespace.status(path)

    def list_status(self, path: str) -> list[FileStatus]:
        self._check_down("list")
        return self.namespace.list_status(path)

    # ------------------------------------------------------------------
    # DataNode RPCs
    def register_datanode(self, info: DatanodeInfo) -> None:
        if self.down:
            return
        self.datanodes[info.name] = DataNodeDescriptor(
            info=info, last_heartbeat=self.sim.now, alive=True
        )
        self._track_liveness(
            info.name, self.sim.now + self.config.dead_node_timeout
        )
        self._needs_reregister.discard(info.name)
        self.sim.bus.publish(
            "hdfs.namenode.registered", self.sim.now, datanode=info.name
        )

    def heartbeat(self, info: DatanodeInfo) -> HeartbeatResponse:
        if self.down:
            # A dead process answers nothing; the DataNode simply retries
            # on its next interval and re-registers after recovery.
            return HeartbeatResponse()
        self.heartbeats_processed += 1
        if self.sim.faults.namenode_heartbeat_crash(self):
            self.crash()
            return HeartbeatResponse()
        desc = self.datanodes.get(info.name)
        if desc is None or info.name in self._needs_reregister:
            return HeartbeatResponse(re_register=True)
        was_dead = not desc.alive
        desc.info = info
        desc.last_heartbeat = self.sim.now
        desc.alive = True
        # Re-arm the expiry entry if it lapsed (dead node returning, or
        # the heap entry was consumed); no-op while one is queued.
        self._track_liveness(
            info.name, self.sim.now + self.config.dead_node_timeout
        )
        if was_dead:
            # A returning node must resend its block report.
            return HeartbeatResponse(re_register=True)
        commands = tuple(self._pending_commands.pop(info.name, ()))
        return HeartbeatResponse(commands=commands)

    def process_block_report(self, report: BlockReport) -> None:
        if self.down:
            return
        name = report.datanode
        orphans: list[int] = []
        for block_id in report.block_ids:
            meta = self.block_map.get(block_id)
            if meta is None:
                orphans.append(block_id)  # deleted while the node was away
                continue
            self._add_replica(meta, name)
            meta.corrupt_on.discard(name)
            self._check_replication(meta)
        for block_id in report.corrupt_ids:
            self.report_bad_block(block_id, name)
        if orphans:
            self._pending_commands[name].append(
                InvalidateCommand(block_ids=tuple(orphans))
            )
        self._update_safemode()

    def block_received(self, datanode: str, block: Block) -> None:
        """A DataNode confirms one replica landed (pipeline or copy)."""
        if self.down:
            # The confirmation is lost with the process; the replica is
            # re-announced by the node's block report after recovery.
            return
        meta = self.block_map.get(block.block_id)
        if meta is None:
            raise BlockNotFoundError(f"blk_{block.block_id} unknown to NameNode")
        self._add_replica(meta, datanode)
        meta.corrupt_on.discard(datanode)
        self._check_replication(meta)
        self._update_safemode()

    def report_bad_block(self, block_id: int, datanode: str) -> None:
        """A reader or scanner found a corrupt replica."""
        if self.down:
            return
        meta = self.block_map.get(block_id)
        if meta is None:
            return
        meta.corrupt_on.add(datanode)
        self._remove_replica(meta, datanode)
        self._pending_commands[datanode].append(
            InvalidateCommand(block_ids=(block_id,))
        )
        self._check_replication(meta)
        self.sim.bus.publish(
            "hdfs.namenode.corrupt_replica",
            self.sim.now,
            block_id=block_id,
            datanode=datanode,
        )

    # ------------------------------------------------------------------
    # replication bookkeeping
    def _add_replica(self, meta: BlockMeta, datanode: str) -> None:
        """Record a replica: the one mutation path for ``locations``
        adds, keeping the reverse index and safe-count exact."""
        if datanode not in meta.locations:
            meta.locations.add(datanode)
            self._blocks_on[datanode].add(meta.block.block_id)
        self._refresh_safe(meta)

    def _remove_replica(self, meta: BlockMeta, datanode: str) -> None:
        """Forget a replica (mirror of :meth:`_add_replica`)."""
        if datanode in meta.locations:
            meta.locations.discard(datanode)
            bucket = self._blocks_on.get(datanode)
            if bucket is not None:
                bucket.discard(meta.block.block_id)
        self._refresh_safe(meta)

    def _refresh_safe(self, meta: BlockMeta) -> None:
        """Recompute the block's safemode bit — O(replication), and the
        only place ``_safe_blocks`` moves."""
        safe = (
            sum(1 for d in meta.locations if self._is_live(d))
            >= self.config.min_replicas
        )
        if safe and not meta.safe:
            meta.safe = True
            self._safe_blocks += 1
        elif not safe and meta.safe:
            meta.safe = False
            self._safe_blocks -= 1

    def _drop_block_index(self, meta: BlockMeta) -> None:
        """Unhook a block leaving the block map (delete/abandon)."""
        for dn in sorted(meta.locations):
            bucket = self._blocks_on.get(dn)
            if bucket is not None:
                bucket.discard(meta.block.block_id)
        if meta.safe:
            meta.safe = False
            self._safe_blocks -= 1

    def _check_replication(self, meta: BlockMeta) -> None:
        # Replicas on decommissioning nodes still serve reads but do not
        # count toward the replication target: the block must become
        # safe without them before the node can leave.
        live = sum(
            1
            for d in meta.locations
            if self._is_live(d) and d not in self.decommissioning
        )
        if live < meta.expected_replication:
            self.under_replicated.add(meta.block.block_id)
            self.over_replicated.discard(meta.block.block_id)
        elif live > meta.expected_replication:
            self.over_replicated.add(meta.block.block_id)
            self.under_replicated.discard(meta.block.block_id)
        else:
            self.under_replicated.discard(meta.block.block_id)
            self.over_replicated.discard(meta.block.block_id)

    def missing_blocks(self) -> list[int]:
        """Blocks with zero live replicas — data loss until a node returns."""
        return sorted(
            block_id
            for block_id, meta in self.block_map.items()
            if not any(self._is_live(d) for d in meta.locations)
        )

    # ------------------------------------------------------------------
    # safe mode
    def _update_safemode(self) -> None:
        if self.down:
            return
        # O(1): the safe-block census is maintained incrementally by
        # _refresh_safe at every replica/liveness mutation.
        self.safemode.set_block_totals(len(self.block_map), self._safe_blocks)
        exit_time = self.safemode.maybe_schedule_exit(self.sim.now)
        if exit_time is not None:
            self.sim.schedule_at(exit_time, self._try_leave_safemode)

    def _try_leave_safemode(self) -> None:
        if self.down:
            return
        if self.safemode.try_exit(self.sim.now):
            self.sim.bus.publish("hdfs.namenode.safemode_off", self.sim.now)

    # ------------------------------------------------------------------
    # durability: crash, recovery, checkpoints (the war-story path)
    def _check_down(self, operation: str) -> None:
        if self.down:
            raise NameNodeDownError(
                f"cannot {operation}: the NameNode is down "
                "(crashed; awaiting journal recovery)"
            )

    def _image_state(self) -> ImageState:
        """Snapshot the durable half of this NameNode for the fsimage.

        Replica locations, registrations and pending commands are
        deliberately absent: they are runtime state, rebuilt from
        DataNode block reports while recovery waits out safemode.
        """
        return ImageState(
            namespace=self.namespace,
            quotas=dict(self.quotas),
            decommissioning=set(self.decommissioning),
            next_block_id=self._block_ids.peek(),
        )

    def _install_state(self, state: ImageState) -> None:
        """Adopt a recovered ImageState and rebuild the block map from
        the namespace walk (every block's expected replication is its
        file's replication — the map is fully derivable)."""
        self.namespace = state.namespace
        self.quotas = dict(state.quotas)
        self.decommissioning = set(state.decommissioning)
        self._block_ids.restore(state.next_block_id)
        self.block_map = {}
        for file_path, inode in self.namespace.walk_files("/"):
            for block in inode.blocks:
                self.block_map[block.block_id] = BlockMeta(
                    block=block,
                    expected_replication=inode.replication,
                    file_path=file_path,
                )
        self._pending_commands.clear()
        self.under_replicated.clear()
        self.over_replicated.clear()
        self._blocks_on.clear()
        self._safe_blocks = 0

    def crash(self) -> None:
        """Kill the NameNode process.  Every in-memory structure — the
        namespace, the block map, registrations, pending commands — is
        gone; only the journal (fsimage + edit log) survives.  With
        journaling disabled this is the paper's nightmare scenario: the
        cluster's metadata exists nowhere."""
        if self.down:
            return
        self.down = True
        self.crashes += 1
        self.namespace = Namespace()
        self.block_map = {}
        self.datanodes.clear()
        self._pending_commands.clear()
        self._needs_reregister.clear()
        self.under_replicated.clear()
        self.over_replicated.clear()
        self._blocks_on.clear()
        self._safe_blocks = 0
        self._liveness_heap.clear()
        self._liveness_scheduled.clear()
        self.quotas = {}
        self.decommissioning = set()
        self.safemode = SafeMode(
            threshold=self.config.safemode_threshold,
            extension=self.config.safemode_extension,
        )
        self.sim.bus.publish("hdfs.namenode.crashed", self.sim.now)

    def recover(self) -> None:
        """Bring a crashed NameNode back from its journal: load the
        fsimage, replay the edit log's valid prefix, enter safemode, and
        wait for DataNodes to re-register and re-report their blocks
        (their next heartbeat gets ``re_register=True`` because the
        descriptor table died with the process)."""
        if not self.down:
            return
        self._install_state(self.journal.recover())
        self.down = False
        self.recoveries += 1
        self._update_safemode()
        self.sim.bus.publish("hdfs.namenode.recovered", self.sim.now)

    def save_namespace(self) -> CheckpointStats:
        """``dfsadmin -saveNamespace``: roll a checkpoint — encode a new
        fsimage from live state, swap it in, truncate the edit log."""
        self._check_down("save the namespace")
        return self.journal.checkpoint()

    def namespace_digest(self) -> tuple:
        """Canonical durable-state snapshot: identical digests mean the
        journal reproduced the namespace exactly (identity tests)."""
        return (
            self.namespace.dump(),
            tuple(sorted(self.quotas.items())),
            tuple(sorted(self.decommissioning)),
            self._block_ids.peek(),
            tuple(
                (
                    block_id,
                    self.block_map[block_id].block,
                    self.block_map[block_id].expected_replication,
                )
                for block_id in sorted(self.block_map)
            ),
        )

    def restart(self) -> None:
        """Restart the NameNode: replica locations and DataNode
        registrations are runtime state and are always lost — the
        NameNode re-enters safe mode until DataNodes re-register and
        re-report, which is why the paper's cluster took 15+ minutes to
        come back.  With journaling on, the namespace itself is *also*
        dropped and rebuilt from fsimage + edits (restart IS recovery,
        proving the journal captures everything); with it off, the
        in-heap namespace survives the way the pre-journal repro
        pretended the fsimage worked."""
        self.restarts += 1
        if self.journal.enabled:
            # _install_state rebuilds the block map with empty location
            # sets, so there is nothing runtime-flavoured left to clear.
            self._install_state(self.journal.recover())
        else:
            for meta in self.block_map.values():
                meta.locations.clear()
                meta.corrupt_on.clear()
                meta.safe = False
            self._pending_commands.clear()
            self.under_replicated.clear()
            self.over_replicated.clear()
            self._blocks_on.clear()
            self._safe_blocks = 0
        self._needs_reregister = set(self.datanodes)
        self.datanodes.clear()
        self._liveness_heap.clear()
        self._liveness_scheduled.clear()
        self.safemode = SafeMode(
            threshold=self.config.safemode_threshold,
            extension=self.config.safemode_extension,
        )
        self._update_safemode()
        self.sim.bus.publish("hdfs.namenode.restarted", self.sim.now)

    # ------------------------------------------------------------------
    # metrics / observability
    def heap_used_bytes(self) -> int:
        """Estimated NameNode heap held by block metadata (Figure 2:
        'Block metadata lives in memory')."""
        return len(self.block_map) * self.config.namenode_bytes_per_block

    def capacity_report(self) -> dict[str, int]:
        # Audited for the per-heartbeat O(#blocks) pattern fixed in
        # DataNode.used_bytes: these sums are over per-node info records
        # already maintained by heartbeats (O(#datanodes)), and the
        # report is built on demand — nothing to precompute here.
        live = [d for d in self.datanodes.values() if d.alive]
        return {
            "capacity": sum(d.info.capacity for d in live),
            "used": sum(d.info.used for d in live),
            "remaining": sum(d.info.remaining for d in live),
            "live_datanodes": len(live),
            "dead_datanodes": sum(
                1 for d in self.datanodes.values() if not d.alive
            ),
            "under_replicated": len(self.under_replicated),
            "missing": len(self.missing_blocks()),
            "blocks": len(self.block_map),
        }
