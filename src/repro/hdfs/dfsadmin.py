"""``hadoop dfsadmin`` — the administrator's view of the cluster.

The second assignment has students run ``dfsadmin -report`` and
``-safemode get`` and record what they see; the Version-1 instructors
needed the same commands while their cluster melted down.
"""

from __future__ import annotations

from repro.hdfs.namenode import NameNode
from repro.util.errors import ConfigError
from repro.util.units import format_size


class DfsAdmin:
    """Administrative commands over a NameNode."""

    def __init__(self, namenode: NameNode):
        self.namenode = namenode

    # ------------------------------------------------------------------
    def report(self) -> str:
        """``dfsadmin -report``: capacity and per-DataNode status."""
        nn = self.namenode
        caps = nn.capacity_report()
        used_pct = (
            100.0 * caps["used"] / caps["capacity"] if caps["capacity"] else 0.0
        )
        lines = [
            f"Configured Capacity: {caps['capacity']} ({format_size(caps['capacity'])})",
            f"DFS Used: {caps['used']} ({format_size(caps['used'])})",
            f"DFS Remaining: {caps['remaining']} ({format_size(caps['remaining'])})",
            f"DFS Used%: {used_pct:.2f}%",
            f"Under replicated blocks: {caps['under_replicated']}",
            f"Missing blocks: {caps['missing']}",
            "",
            f"Datanodes available: {caps['live_datanodes']} "
            f"({caps['live_datanodes']} live, {caps['dead_datanodes']} dead)",
            "",
        ]
        for name in sorted(nn.datanodes):
            desc = nn.datanodes[name]
            state = "In Service" if desc.alive else "Dead"
            lines += [
                f"Name: {name} (rack {desc.info.rack})",
                f"State: {state}",
                f"Configured Capacity: {desc.info.capacity}",
                f"DFS Used: {desc.info.used}",
                f"DFS Remaining: {desc.info.remaining}",
                f"Last contact: t={desc.last_heartbeat:.1f}s",
                "",
            ]
        return "\n".join(lines).rstrip()

    # ------------------------------------------------------------------
    def safemode(self, action: str) -> str:
        """``dfsadmin -safemode get|enter|leave``."""
        sm = self.namenode.safemode
        if action == "get":
            return sm.describe()
        if action == "enter":
            sm.enter_manual()
            return "Safe mode is ON"
        if action == "leave":
            sm.leave_manual()
            return "Safe mode is OFF"
        raise ConfigError(f"unknown safemode action {action!r}")

    def set_quota(
        self,
        path: str,
        namespace_quota: int | None = None,
        space_quota: int | None = None,
    ) -> str:
        """``dfsadmin -setQuota`` / ``-setSpaceQuota`` (None/None clears)."""
        self.namenode.set_quota(path, namespace_quota, space_quota)
        if namespace_quota is None and space_quota is None:
            return f"Cleared quotas on {path}"
        return (
            f"Set quota on {path}: namespace={namespace_quota} "
            f"space={space_quota}"
        )

    def decommission(self, datanode: str) -> str:
        """Start draining a DataNode (the refreshNodes/exclude flow)."""
        self.namenode.start_decommission(datanode)
        return f"Decommission in progress: {datanode}"

    def decommission_status(self, datanode: str) -> str:
        if datanode not in self.namenode.decommissioning:
            return f"{datanode}: Normal"
        if self.namenode.decommission_complete(datanode):
            return f"{datanode}: Decommissioned"
        return f"{datanode}: Decommission in progress"

    def save_namespace(self) -> str:
        """``dfsadmin -saveNamespace``: roll a checkpoint (new fsimage,
        atomic swap, edit-log truncation)."""
        stats = self.namenode.save_namespace()
        return (
            f"Save namespace successful: fsimage holds "
            f"{stats.image_inodes} inodes / {stats.image_blocks} blocks; "
            f"truncated {stats.edits_truncated} edit records"
        )

    def metasave(self) -> str:
        """A compact dump of NameNode metadata (for Figure 2)."""
        nn = self.namenode
        lines = [
            f"Blocks in memory: {len(nn.block_map)} "
            f"(~{nn.heap_used_bytes()} bytes of NameNode heap)",
            nn.journal.describe(),
        ]
        for block_id in sorted(nn.block_map):
            meta = nn.block_map[block_id]
            locs = ",".join(sorted(meta.locations)) or "<none>"
            lines.append(
                f"blk_{block_id} len={meta.block.length} "
                f"repl={meta.live_replicas}/{meta.expected_replication} "
                f"file={meta.file_path} on=[{locs}]"
            )
        return "\n".join(lines)
