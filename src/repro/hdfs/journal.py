"""NameNode durability: the binary EditLog and FsImage pair.

Hadoop's answer to "block metadata lives in memory" (Figure 2) losing
everything on a NameNode crash is the ``fsimage`` + ``edits`` pair: a
periodic full snapshot of the namespace plus a write-ahead log of every
mutation since.  This module is that pair, in the struct-framed RWF1
style of :mod:`repro.mapreduce.wire`:

EditLog (``RWJ1``)::

    +-------+---------+   +---------+----------+-----------+
    | magic | version |   | payload | CRC32    | payload   |  ... records
    | RWJ1  |  u32    |   | len u32 | u32      | (framed)  |
    +-------+---------+   +---------+----------+-----------+

    payload = u8 opcode + typed fields (strings are u32 len + UTF-8,
    mtimes are exact big-endian f64, optional ints carry a presence
    byte).  Records are *logical redo*: they carry resolved results
    (the allocated block id, the normalized path), so replay never
    re-chooses anything.

FsImage (``RWI1``)::

    +-------+---------+---------+-------+------+
    | magic | version | body    | CRC32 | body |
    | RWI1  |  u32    | len u32 | u32   | ...  |
    +-------+---------+---------+-------+------+

    body = next block id, directory quotas, decommissioning set, then
    a sorted preorder walk of every inode (directories with mtime;
    files with replication, under-construction flag and block list).

Torn-tail tolerance: a crash mid-append leaves a short or CRC-broken
final record.  :func:`scan_edits` replays the longest valid prefix and
stops cleanly at the first bad frame — truncating the log at *any* byte
boundary recovers every fully-written record (property-tested).  The
fsimage, by contrast, is swapped atomically at checkpoint time, so any
corruption there is a hard :class:`~repro.util.errors.JournalFormatError`.

Replica locations, DataNode registrations and pending commands are
runtime state: recovery rebuilds them from DataNode block reports while
the NameNode waits out safemode, exactly like a real restart.
"""

from __future__ import annotations

import os
import struct
import zlib
from dataclasses import dataclass
from typing import Callable

from repro.hdfs.block import DEFAULT_FIRST_BLOCK_ID, Block
from repro.hdfs.namespace import Namespace
from repro.util.errors import HdfsError, JournalFormatError

EDITS_MAGIC = b"RWJ1"
IMAGE_MAGIC = b"RWI1"
VERSION = 1

_HEADER = struct.Struct(">4sI")  # magic + format version
_FRAME = struct.Struct(">II")  # payload length + CRC32(payload)
_U8 = struct.Struct(">B")
_U32 = struct.Struct(">I")
_U64 = struct.Struct(">Q")
_I64 = struct.Struct(">q")
_F64 = struct.Struct(">d")

# -- edit opcodes -----------------------------------------------------------

OP_MKDIRS = 1
OP_CREATE = 2
OP_ADD_BLOCK = 3
OP_ABANDON_BLOCK = 4
OP_COMPLETE = 5
OP_DELETE = 6
OP_RENAME = 7
OP_SET_REPLICATION = 8
OP_SET_QUOTA = 9
OP_DECOMM_START = 10
OP_DECOMM_STOP = 11

#: opcode -> field spec: the single source of truth for the edit codec
#: (the hypothesis round-trip tests generate one value per field kind).
EDIT_SPECS: dict[int, tuple[str, ...]] = {
    OP_MKDIRS: ("str", "f64"),  # path, mtime
    OP_CREATE: ("str", "u32", "f64"),  # path, replication, mtime
    OP_ADD_BLOCK: ("str", "u64", "u32", "u64"),  # path, id, generation, len
    OP_ABANDON_BLOCK: ("str", "u64"),  # path, block id
    OP_COMPLETE: ("str", "f64"),  # path, mtime
    OP_DELETE: ("str", "bool"),  # path, recursive
    OP_RENAME: ("str", "str"),  # src, dst
    OP_SET_REPLICATION: ("str", "u32"),  # path, replication
    OP_SET_QUOTA: ("str", "opt_i64", "opt_i64"),  # path, ns / space quota
    OP_DECOMM_START: ("str",),  # datanode
    OP_DECOMM_STOP: ("str",),  # datanode
}

OP_NAMES: dict[int, str] = {
    OP_MKDIRS: "MKDIRS",
    OP_CREATE: "CREATE",
    OP_ADD_BLOCK: "ADD_BLOCK",
    OP_ABANDON_BLOCK: "ABANDON_BLOCK",
    OP_COMPLETE: "COMPLETE",
    OP_DELETE: "DELETE",
    OP_RENAME: "RENAME",
    OP_SET_REPLICATION: "SET_REPLICATION",
    OP_SET_QUOTA: "SET_QUOTA",
    OP_DECOMM_START: "DECOMM_START",
    OP_DECOMM_STOP: "DECOMM_STOP",
}

_KIND_DIR, _KIND_FILE = 0, 1


# -- field primitives -------------------------------------------------------


def _pack_field(kind: str, value, out: bytearray) -> None:
    if kind == "str":
        data = value.encode("utf-8")
        out += _U32.pack(len(data))
        out += data
    elif kind == "u32":
        out += _U32.pack(value)
    elif kind == "u64":
        out += _U64.pack(value)
    elif kind == "i64":
        out += _I64.pack(value)
    elif kind == "f64":
        out += _F64.pack(value)
    elif kind == "bool":
        out += _U8.pack(1 if value else 0)
    elif kind == "opt_i64":
        if value is None:
            out += _U8.pack(0)
        else:
            out += _U8.pack(1)
            out += _I64.pack(value)
    else:  # pragma: no cover - spec typo guard
        raise AssertionError(f"unknown field kind {kind!r}")


class _Reader:
    """Bounds-checked decoding over a memoryview; truncation raises."""

    __slots__ = ("view", "pos")

    def __init__(self, data):
        self.view = memoryview(data)
        self.pos = 0

    def _take(self, n: int) -> memoryview:
        if self.pos + n > len(self.view):
            raise JournalFormatError("truncated journal record")
        chunk = self.view[self.pos : self.pos + n]
        self.pos += n
        return chunk

    def u8(self) -> int:
        return _U8.unpack(self._take(1))[0]

    def u32(self) -> int:
        return _U32.unpack(self._take(4))[0]

    def u64(self) -> int:
        return _U64.unpack(self._take(8))[0]

    def i64(self) -> int:
        return _I64.unpack(self._take(8))[0]

    def f64(self) -> float:
        return _F64.unpack(self._take(8))[0]

    def bool_(self) -> bool:
        flag = self.u8()
        if flag not in (0, 1):
            raise JournalFormatError(f"bad bool byte {flag}")
        return flag == 1

    def str_(self) -> str:
        length = self.u32()
        try:
            return bytes(self._take(length)).decode("utf-8")
        except UnicodeDecodeError as exc:
            raise JournalFormatError(f"bad UTF-8 in journal string: {exc}") from None

    def opt_i64(self) -> int | None:
        flag = self.u8()
        if flag == 0:
            return None
        if flag != 1:
            raise JournalFormatError(f"bad optional-presence byte {flag}")
        return self.i64()

    def field(self, kind: str):
        if kind == "str":
            return self.str_()
        if kind == "u32":
            return self.u32()
        if kind == "u64":
            return self.u64()
        if kind == "i64":
            return self.i64()
        if kind == "f64":
            return self.f64()
        if kind == "bool":
            return self.bool_()
        if kind == "opt_i64":
            return self.opt_i64()
        raise AssertionError(f"unknown field kind {kind!r}")  # pragma: no cover

    @property
    def exhausted(self) -> bool:
        return self.pos == len(self.view)


# -- edit record codec ------------------------------------------------------


def encode_edit(op: int, values: tuple) -> bytes:
    """Encode one edit record payload (opcode + typed fields)."""
    spec = EDIT_SPECS.get(op)
    if spec is None:
        raise JournalFormatError(f"unknown edit opcode {op}")
    if len(values) != len(spec):
        raise JournalFormatError(
            f"{OP_NAMES[op]} takes {len(spec)} fields, got {len(values)}"
        )
    out = bytearray(_U8.pack(op))
    for kind, value in zip(spec, values):
        _pack_field(kind, value, out)
    return bytes(out)


def decode_edit(payload) -> tuple[int, tuple]:
    """Decode one edit record payload back to ``(opcode, values)``."""
    reader = _Reader(payload)
    op = reader.u8()
    spec = EDIT_SPECS.get(op)
    if spec is None:
        raise JournalFormatError(f"unknown edit opcode {op}")
    values = tuple(reader.field(kind) for kind in spec)
    if not reader.exhausted:
        raise JournalFormatError("trailing bytes after edit record")
    return op, values


def frame_record(payload: bytes) -> bytes:
    """Wrap a payload in the length + CRC32 frame."""
    return _FRAME.pack(len(payload), zlib.crc32(payload) & 0xFFFFFFFF) + payload


def edits_header() -> bytes:
    return _HEADER.pack(EDITS_MAGIC, VERSION)


@dataclass(frozen=True)
class EditScan:
    """The valid prefix of one edit-log blob."""

    records: tuple[tuple[int, tuple], ...]
    #: Byte offset where each valid record's frame starts.
    offsets: tuple[int, ...]
    #: Header + every fully-valid frame; appends resume here after a tear.
    valid_bytes: int
    #: Bytes past the valid prefix (the torn tail), dropped on recovery.
    torn_bytes: int


def scan_edits(blob) -> EditScan:
    """Replay-scan an edit log, stopping cleanly at the first bad record.

    Tolerates any truncation (including mid-header): whatever survives
    as fully-written frames is returned; the rest is counted as torn.
    A *wrong* magic, however, means this is not an edit log at all —
    truncation cannot manufacture one — and raises.
    """
    view = memoryview(blob)
    total = len(view)
    if total < _HEADER.size:
        return EditScan((), (), 0, total)
    magic, version = _HEADER.unpack(view[: _HEADER.size])
    if magic != EDITS_MAGIC:
        raise JournalFormatError(f"bad edit-log magic {bytes(magic)!r}")
    if version != VERSION:
        raise JournalFormatError(f"unsupported edit-log version {version}")
    pos = _HEADER.size
    records: list[tuple[int, tuple]] = []
    offsets: list[int] = []
    while True:
        if total - pos < _FRAME.size:
            break
        length, crc = _FRAME.unpack(view[pos : pos + _FRAME.size])
        start = pos + _FRAME.size
        if total - start < length:
            break
        payload = view[start : start + length]
        if (zlib.crc32(payload) & 0xFFFFFFFF) != crc:
            break
        try:
            records.append(decode_edit(payload))
        except JournalFormatError:
            break
        offsets.append(pos)
        pos = start + length
    return EditScan(tuple(records), tuple(offsets), pos, total - pos)


# -- fsimage codec ----------------------------------------------------------


@dataclass
class ImageState:
    """The durable half of the NameNode, ready to encode or install.

    Everything else the NameNode holds (replica locations, DataNode
    descriptors, pending commands, under/over-replicated sets) is
    runtime state rebuilt from block reports after recovery.
    """

    namespace: Namespace
    quotas: dict[str, tuple[int | None, int | None]]
    decommissioning: set[str]
    next_block_id: int


def empty_image_state() -> ImageState:
    return ImageState(
        namespace=Namespace(),
        quotas={},
        decommissioning=set(),
        next_block_id=DEFAULT_FIRST_BLOCK_ID,
    )


def encode_image(state: ImageState) -> bytes:
    """Serialize a full namespace snapshot (the fsimage)."""
    body = bytearray()
    body += _U64.pack(state.next_block_id)
    quotas = sorted(state.quotas.items())
    body += _U32.pack(len(quotas))
    for path, (namespace_quota, space_quota) in quotas:
        _pack_field("str", path, body)
        _pack_field("opt_i64", namespace_quota, body)
        _pack_field("opt_i64", space_quota, body)
    decommissioning = sorted(state.decommissioning)
    body += _U32.pack(len(decommissioning))
    for name in decommissioning:
        _pack_field("str", name, body)
    entries = list(state.namespace.walk_all("/"))
    body += _U32.pack(len(entries))
    for path, inode in entries:
        if inode.is_dir:
            body += _U8.pack(_KIND_DIR)
            _pack_field("str", path, body)
            body += _F64.pack(inode.mtime)
        else:
            body += _U8.pack(_KIND_FILE)
            _pack_field("str", path, body)
            body += _F64.pack(inode.mtime)
            body += _U32.pack(inode.replication)
            body += _U8.pack(1 if inode.under_construction else 0)
            body += _U32.pack(len(inode.blocks))
            for block in inode.blocks:
                body += _U64.pack(block.block_id)
                body += _U32.pack(block.generation)
                body += _U64.pack(block.length)
    blob = bytes(body)
    return (
        _HEADER.pack(IMAGE_MAGIC, VERSION)
        + _FRAME.pack(len(blob), zlib.crc32(blob) & 0xFFFFFFFF)
        + blob
    )


def decode_image(blob) -> ImageState:
    """Deserialize an fsimage.  Corruption here is a hard error — the
    image is swapped atomically, so a bad one was never a torn write."""
    view = memoryview(blob)
    prefix = _HEADER.size + _FRAME.size
    if len(view) < prefix:
        raise JournalFormatError("fsimage truncated before the body")
    magic, version = _HEADER.unpack(view[: _HEADER.size])
    if magic != IMAGE_MAGIC:
        raise JournalFormatError(f"bad fsimage magic {bytes(magic)!r}")
    if version != VERSION:
        raise JournalFormatError(f"unsupported fsimage version {version}")
    length, crc = _FRAME.unpack(view[_HEADER.size : prefix])
    body = view[prefix : prefix + length]
    if len(body) != length:
        raise JournalFormatError("fsimage body shorter than its declared length")
    if (zlib.crc32(body) & 0xFFFFFFFF) != crc:
        raise JournalFormatError("fsimage body CRC mismatch")
    reader = _Reader(body)
    next_block_id = reader.u64()
    quotas: dict[str, tuple[int | None, int | None]] = {}
    for _ in range(reader.u32()):
        path = reader.str_()
        quotas[path] = (reader.opt_i64(), reader.opt_i64())
    decommissioning = {reader.str_() for _ in range(reader.u32())}
    ns = Namespace()
    for _ in range(reader.u32()):
        kind = reader.u8()
        path = reader.str_()
        mtime = reader.f64()
        if kind == _KIND_DIR:
            if path == "/":
                ns.root.mtime = mtime
            else:
                # Preorder serialization: parents always precede children.
                ns.mkdirs(path, mtime=mtime)
                ns.get_dir(path).mtime = mtime
        elif kind == _KIND_FILE:
            replication = reader.u32()
            under_construction = reader.u8() == 1
            blocks = [
                Block(
                    block_id=reader.u64(),
                    generation=reader.u32(),
                    length=reader.u64(),
                )
                for _ in range(reader.u32())
            ]
            inode = ns.create_file(path, replication=replication, mtime=mtime)
            inode.blocks = blocks
            inode.under_construction = under_construction
            inode.mtime = mtime
        else:
            raise JournalFormatError(f"unknown inode kind {kind}")
    if not reader.exhausted:
        raise JournalFormatError("trailing bytes in fsimage body")
    return ImageState(
        namespace=ns,
        quotas=quotas,
        decommissioning=decommissioning,
        next_block_id=next_block_id,
    )


# -- replay -----------------------------------------------------------------


def apply_edit(state: ImageState, op: int, values: tuple) -> None:
    """Apply one edit record onto an :class:`ImageState` (logical redo).

    Records carry resolved results (the allocated block id, normalized
    paths), so replay is pure application — nothing is re-decided.
    """
    ns = state.namespace
    if op == OP_MKDIRS:
        path, mtime = values
        ns.mkdirs(path, mtime=mtime)
    elif op == OP_CREATE:
        path, replication, mtime = values
        ns.create_file(path, replication=replication, mtime=mtime)
    elif op == OP_ADD_BLOCK:
        path, block_id, generation, length = values
        inode = ns.get_file(path)
        inode.blocks.append(
            Block(block_id=block_id, generation=generation, length=length)
        )
        state.next_block_id = max(state.next_block_id, block_id + 1)
    elif op == OP_ABANDON_BLOCK:
        path, block_id = values
        inode = ns.get_file(path)
        inode.blocks = [b for b in inode.blocks if b.block_id != block_id]
    elif op == OP_COMPLETE:
        path, mtime = values
        inode = ns.get_file(path)
        inode.under_construction = False
        inode.mtime = mtime
    elif op == OP_DELETE:
        path, recursive = values
        ns.delete(path, recursive=recursive)
    elif op == OP_RENAME:
        src, dst = values
        ns.rename(src, dst)
    elif op == OP_SET_REPLICATION:
        path, replication = values
        ns.get_file(path).replication = replication
    elif op == OP_SET_QUOTA:
        path, namespace_quota, space_quota = values
        if namespace_quota is None and space_quota is None:
            state.quotas.pop(path, None)
        else:
            state.quotas[path] = (namespace_quota, space_quota)
    elif op == OP_DECOMM_START:
        state.decommissioning.add(values[0])
    elif op == OP_DECOMM_STOP:
        state.decommissioning.discard(values[0])
    else:  # pragma: no cover - decode_edit rejects unknown opcodes
        raise JournalFormatError(f"unknown edit opcode {op}")


# -- storage backends -------------------------------------------------------


class MemoryJournalStorage:
    """Journal bytes held in process memory (the default).

    The *simulated* NameNode process crashes; the host process running
    the simulation does not — so in-memory storage is exactly as durable
    as the simulation needs, without touching the host filesystem.
    """

    def __init__(self) -> None:
        self._image: bytes | None = None
        self._edits = bytearray(edits_header())

    def read_image(self) -> bytes | None:
        return self._image

    def write_image(self, blob: bytes) -> None:
        self._image = bytes(blob)

    def append_edit(self, frame: bytes) -> None:
        self._edits += frame

    def edits_blob(self) -> bytes:
        return bytes(self._edits)

    def rewrite_edits(self, blob: bytes) -> None:
        self._edits = bytearray(blob)


class DirJournalStorage:
    """Journal as real files (``fsimage`` + ``edits``) under a directory.

    Image swaps are atomic (write ``.tmp``, fsync, ``os.replace``) so a
    host crash mid-checkpoint never leaves a half-written image — only
    the edit log can tear, which is exactly what replay tolerates.
    """

    def __init__(self, directory: str):
        self.directory = directory
        os.makedirs(directory, exist_ok=True)
        self.image_path = os.path.join(directory, "fsimage")
        self.edits_path = os.path.join(directory, "edits")
        if not os.path.exists(self.edits_path):
            self._replace(self.edits_path, edits_header())

    @staticmethod
    def _replace(path: str, blob: bytes) -> None:
        tmp = path + ".tmp"
        with open(tmp, "wb") as fh:
            fh.write(blob)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)

    def read_image(self) -> bytes | None:
        if not os.path.exists(self.image_path):
            return None
        with open(self.image_path, "rb") as fh:
            return fh.read()

    def write_image(self, blob: bytes) -> None:
        self._replace(self.image_path, blob)

    def append_edit(self, frame: bytes) -> None:
        with open(self.edits_path, "ab") as fh:
            fh.write(frame)

    def edits_blob(self) -> bytes:
        with open(self.edits_path, "rb") as fh:
            return fh.read()

    def rewrite_edits(self, blob: bytes) -> None:
        self._replace(self.edits_path, blob)


# -- the journal manager ----------------------------------------------------


@dataclass(frozen=True)
class CheckpointStats:
    """What one checkpoint roll produced."""

    edits_truncated: int
    image_inodes: int
    image_blocks: int


@dataclass(frozen=True)
class RecoveryStats:
    """What one recovery replayed."""

    replayed_edits: int
    torn_bytes: int
    image_inodes: int
    image_blocks: int


class NameNodeJournal:
    """The NameNode's durability manager.

    Owns the storage pair, appends framed edit records (``log_*``),
    rolls SecondaryNameNode-style checkpoints (new fsimage, atomic
    swap, edit-log truncation) and rebuilds an :class:`ImageState` on
    recovery.  A disabled journal (``storage=None``) keeps every
    ``log_*`` call a no-op so the NameNode's mutators never branch.
    """

    def __init__(self, storage=None, checkpoint_edit_limit: int = 0):
        self.storage = storage
        self.enabled = storage is not None
        self.checkpoint_edit_limit = checkpoint_edit_limit
        self._snapshot_source: Callable[[], ImageState] | None = None
        #: Edits appended since format (cumulative; checkpoints do not reset).
        self.edits_logged = 0
        self.edits_since_checkpoint = 0
        self.checkpoints = 0
        self.recoveries = 0
        self.last_checkpoint: CheckpointStats | None = None
        self.last_recovery: RecoveryStats | None = None

    def bind(self, snapshot_source: Callable[[], ImageState]) -> None:
        """Attach the NameNode's state snapshot (for checkpoint rolls)."""
        self._snapshot_source = snapshot_source

    def format(self) -> None:
        """Initialize storage: empty edit log + an image of current state."""
        if not self.enabled:
            return
        self.storage.rewrite_edits(edits_header())
        state = (
            self._snapshot_source()
            if self._snapshot_source is not None
            else empty_image_state()
        )
        self.storage.write_image(encode_image(state))

    # -- append (the log_* wrappers are what mrlint MRE105 looks for) ------
    def _append(self, op: int, *values) -> None:
        if not self.enabled:
            return
        self.storage.append_edit(frame_record(encode_edit(op, values)))
        self.edits_logged += 1
        self.edits_since_checkpoint += 1
        if (
            self.checkpoint_edit_limit > 0
            and self.edits_since_checkpoint >= self.checkpoint_edit_limit
            and self._snapshot_source is not None
        ):
            self.checkpoint()

    def log_mkdirs(self, path: str, mtime: float) -> None:
        self._append(OP_MKDIRS, path, mtime)

    def log_create(self, path: str, replication: int, mtime: float) -> None:
        self._append(OP_CREATE, path, replication, mtime)

    def log_add_block(
        self, path: str, block_id: int, generation: int, length: int
    ) -> None:
        self._append(OP_ADD_BLOCK, path, block_id, generation, length)

    def log_abandon_block(self, path: str, block_id: int) -> None:
        self._append(OP_ABANDON_BLOCK, path, block_id)

    def log_complete(self, path: str, mtime: float) -> None:
        self._append(OP_COMPLETE, path, mtime)

    def log_delete(self, path: str, recursive: bool) -> None:
        self._append(OP_DELETE, path, bool(recursive))

    def log_rename(self, src: str, dst: str) -> None:
        self._append(OP_RENAME, src, dst)

    def log_set_replication(self, path: str, replication: int) -> None:
        self._append(OP_SET_REPLICATION, path, replication)

    def log_set_quota(
        self,
        path: str,
        namespace_quota: int | None,
        space_quota: int | None,
    ) -> None:
        self._append(OP_SET_QUOTA, path, namespace_quota, space_quota)

    def log_decommission_start(self, datanode: str) -> None:
        self._append(OP_DECOMM_START, datanode)

    def log_decommission_stop(self, datanode: str) -> None:
        self._append(OP_DECOMM_STOP, datanode)

    # -- checkpoint / recover ---------------------------------------------
    def checkpoint(self) -> CheckpointStats:
        """SecondaryNameNode roll: new fsimage, atomic swap, truncate."""
        if not self.enabled:
            raise HdfsError(
                "journaling is disabled (HdfsConfig.journal=False); "
                "there is nothing to checkpoint"
            )
        if self._snapshot_source is None:
            raise HdfsError("journal has no snapshot source bound")
        state = self._snapshot_source()
        entries = list(state.namespace.walk_all("/"))
        self.storage.write_image(encode_image(state))
        self.storage.rewrite_edits(edits_header())
        stats = CheckpointStats(
            edits_truncated=self.edits_since_checkpoint,
            image_inodes=len(entries),
            image_blocks=sum(
                len(inode.blocks) for _, inode in entries if not inode.is_dir
            ),
        )
        self.edits_since_checkpoint = 0
        self.checkpoints += 1
        self.last_checkpoint = stats
        return stats

    def recover(self) -> ImageState:
        """Load the fsimage, replay the edit log's valid prefix, and
        truncate any torn tail so later appends land on clean frames."""
        if not self.enabled:
            raise HdfsError(
                "journaling is disabled (HdfsConfig.journal=False); "
                "a crashed NameNode cannot recover without a journal"
            )
        image_blob = self.storage.read_image()
        if image_blob is None:
            state = empty_image_state()
        else:
            state = decode_image(image_blob)
        entries = list(state.namespace.walk_all("/"))
        image_inodes = len(entries)
        image_blocks = sum(
            len(inode.blocks) for _, inode in entries if not inode.is_dir
        )
        blob = self.storage.edits_blob()
        scan = scan_edits(blob)
        for op, values in scan.records:
            apply_edit(state, op, values)
        if scan.torn_bytes:
            valid = blob[: scan.valid_bytes]
            self.storage.rewrite_edits(valid if valid else edits_header())
        self.edits_since_checkpoint = len(scan.records)
        self.recoveries += 1
        self.last_recovery = RecoveryStats(
            replayed_edits=len(scan.records),
            torn_bytes=scan.torn_bytes,
            image_inodes=image_inodes,
            image_blocks=image_blocks,
        )
        return state

    # -- fault hooks -------------------------------------------------------
    def tear_tail(self, drop_bytes: int | None = None) -> int:
        """Chop bytes off the edit-log tail (the ``journal.torn_tail``
        fault).  With no explicit count, tears halfway into the last
        fully-written record — deterministically."""
        if not self.enabled:
            return 0
        blob = self.storage.edits_blob()
        if drop_bytes is None:
            scan = scan_edits(blob)
            if not scan.offsets:
                return 0
            last_start = scan.offsets[-1]
            keep = last_start + (scan.valid_bytes - last_start) // 2
            drop = len(blob) - keep
        else:
            drop = min(max(0, int(drop_bytes)), len(blob))
        if drop:
            self.storage.rewrite_edits(blob[: len(blob) - drop])
        return drop

    def describe(self) -> str:
        if not self.enabled:
            return "Journal: disabled (HdfsConfig.journal=False)"
        storage_kind = type(self.storage).__name__
        return (
            f"Journal: {self.edits_logged} edits logged "
            f"({self.edits_since_checkpoint} since last checkpoint), "
            f"{self.checkpoints} checkpoints, "
            f"{self.recoveries} recoveries, storage={storage_kind}"
        )
