"""DFSClient: the file-level read/write path.

Writes split data into blocks, ask the NameNode for targets, and push
each block through the replica pipeline; reads fetch each block from the
nearest live, non-corrupt replica, reporting bad checksums back to the
NameNode exactly as Hadoop clients do.

Every operation returns an ``elapsed`` simulated duration computed from
the disk and network cost models; by default the client also advances
the shared simulation clock by that amount (interactive, shell-style
use).  The MapReduce engine constructs clients with
``charge_time=False`` and folds the elapsed time into task durations
instead.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field
from typing import Callable

from repro.cluster.network import NetworkModel
from repro.hdfs.config import HdfsConfig
from repro.hdfs.datanode import DataNode
from repro.hdfs.localfs import LinuxFileSystem
from repro.hdfs.namenode import NameNode
from repro.hdfs.pipeline import pipeline_write
from repro.sim.engine import Simulation
from repro.util.errors import (
    CorruptBlockError,
    DataNodeDownError,
    BlockNotFoundError,
    HdfsError,
    ReplicationError,
)


@dataclass
class WriteResult:
    """Outcome of one file write."""

    path: str
    length: int
    blocks: int
    elapsed: float
    locations: dict[int, list[str]] = field(default_factory=dict)


@dataclass
class ReadResult:
    """Outcome of one file read."""

    path: str
    data: bytes
    elapsed: float
    blocks: int
    node_local_blocks: int = 0
    rack_local_blocks: int = 0
    off_rack_blocks: int = 0
    corrupt_replicas_hit: int = 0

    def text(self) -> str:
        return self.data.decode("utf-8")


class DFSClient:
    """A client handle, optionally pinned to a cluster node."""

    #: Pipeline retries when every target of an allocation fails.
    MAX_BLOCK_RETRIES = 3

    def __init__(
        self,
        namenode: NameNode,
        dn_lookup: Callable[[str], DataNode],
        network: NetworkModel,
        sim: Simulation,
        node: str | None = None,
        charge_time: bool = True,
    ):
        self.namenode = namenode
        self.dn_lookup = dn_lookup
        self.network = network
        self.sim = sim
        self.node = node
        self.charge_time = charge_time
        self.config: HdfsConfig = namenode.config

    # ------------------------------------------------------------------
    def _charge(self, elapsed: float) -> None:
        if self.charge_time and elapsed > 0:
            self.sim.run_for(elapsed)

    def _transfer_in(self, source_dn: str, nbytes: int) -> float:
        """Network time to pull bytes from a DataNode to this client."""
        if self.node is not None and self.node in self.network.topology:
            return self.network.transfer_time(source_dn, self.node, nbytes)
        # Client outside the cluster (login node / laptop): off-rack rate.
        self.network.counters.off_rack += nbytes
        slowest = self.network.nic_bw / self.network.rack_oversubscription
        return self.network.latency + nbytes / slowest

    # ------------------------------------------------------------------
    # write path
    def put_bytes(
        self,
        path: str,
        data: bytes,
        replication: int | None = None,
        overwrite: bool = False,
    ) -> WriteResult:
        """Create ``path`` from ``data``, splitting into blocks."""
        self.namenode.create_file(path, replication=replication, overwrite=overwrite)
        block_size = self.config.block_size
        elapsed = 0.0
        locations: dict[int, list[str]] = {}
        # Zero-copy split: each block chunk is a memoryview slice of the
        # caller's buffer; bytes are only materialised once, inside the
        # replica pipeline (a zero-length file completes with no blocks).
        view = memoryview(data)
        for start in range(0, len(data), block_size):
            chunk = view[start : start + block_size]
            result = self._write_one_block(path, chunk)
            elapsed += result[1]
            locations[result[0]] = result[2]
        self.namenode.complete_file(path)
        self._charge(elapsed)
        return WriteResult(
            path=path,
            length=len(data),
            blocks=len(locations),
            elapsed=elapsed,
            locations=locations,
        )

    def _write_one_block(
        self, path: str, chunk
    ) -> tuple[int, float, list[str]]:
        exclude: tuple[str, ...] = ()
        last_error: Exception | None = None
        for _ in range(self.MAX_BLOCK_RETRIES):
            try:
                block, targets = self.namenode.add_block(
                    path, length=len(chunk), writer=self.node, exclude=exclude
                )
            except ReplicationError as exc:
                last_error = exc
                break
            result = pipeline_write(
                block,
                chunk,
                targets,
                self.dn_lookup,
                self.network,
                self.namenode,
                client_node=self.node,
            )
            if result.ok:
                return block.block_id, result.elapsed, result.locations
            self.namenode.abandon_block(path, block)
            exclude = exclude + tuple(result.failed)
            last_error = ReplicationError(
                f"pipeline failed on all targets {result.failed} for {path}"
            )
        raise last_error or ReplicationError(f"could not write a block of {path}")

    def put_text(self, path: str, text: str, **kwargs) -> WriteResult:
        return self.put_bytes(path, text.encode("utf-8"), **kwargs)

    # ------------------------------------------------------------------
    # read path
    def read_bytes(self, path: str) -> ReadResult:
        located = self.namenode.get_block_locations(path, client_node=self.node)
        pieces: list[bytes] = []
        elapsed = 0.0
        result = ReadResult(
            path=path, data=b"", elapsed=0.0, blocks=len(located)
        )
        for lb in located:
            data, block_elapsed = self._read_one_block(lb, result)
            pieces.append(data)
            elapsed += block_elapsed
        result.data = b"".join(pieces)
        result.elapsed = elapsed
        self._charge(elapsed)
        return result

    def _read_one_block(self, located_block, result: ReadResult) -> tuple[bytes, float]:
        block = located_block.block
        errors: list[str] = []
        for dn_name in located_block.locations:
            try:
                datanode = self.dn_lookup(dn_name)
            except KeyError:
                continue
            try:
                data = datanode.read_block(block.block_id)
            except CorruptBlockError:
                result.corrupt_replicas_hit += 1
                self.namenode.report_bad_block(block.block_id, dn_name)
                errors.append(f"{dn_name}: corrupt")
                continue
            except (DataNodeDownError, BlockNotFoundError) as exc:
                errors.append(f"{dn_name}: {exc}")
                continue
            elapsed = datanode.node.disk.read_time(block.length)
            elapsed += self._transfer_in(dn_name, block.length)
            self._tally_locality(dn_name, result)
            return data, elapsed
        raise HdfsError(
            f"could not read blk_{block.block_id} of {result.path}: "
            f"tried {located_block.locations or 'no replicas'} ({errors})"
        )

    def _tally_locality(self, dn_name: str, result: ReadResult) -> None:
        if self.node is None or self.node not in self.network.topology:
            result.off_rack_blocks += 1
            return
        distance = self.network.topology.distance(self.node, dn_name)
        if distance == 0:
            result.node_local_blocks += 1
        elif distance == 2:
            result.rack_local_blocks += 1
        else:
            result.off_rack_blocks += 1

    def read_text(self, path: str) -> str:
        return self.read_bytes(path).text()

    def open(self, path: str) -> "DFSInputStream":
        """Open a positional-read stream over ``path``.

        Block locations are fetched once (one NameNode round trip);
        every subsequent ``pread`` goes straight to DataNodes, with the
        usual replica failover if the snapshot has gone stale.
        """
        located = self.namenode.get_block_locations(path, client_node=self.node)
        return DFSInputStream(self, path, located)

    # ------------------------------------------------------------------
    # local <-> HDFS staging
    def copy_from_local(
        self, localfs: LinuxFileSystem, local_path: str, hdfs_path: str, **kwargs
    ) -> WriteResult:
        return self.put_bytes(hdfs_path, localfs.read_file(local_path), **kwargs)

    def copy_to_local(
        self, localfs: LinuxFileSystem, hdfs_path: str, local_path: str
    ) -> ReadResult:
        result = self.read_bytes(hdfs_path)
        localfs.write_file(local_path, result.data)
        return result

    # ------------------------------------------------------------------
    # namespace passthroughs
    def mkdirs(self, path: str) -> bool:
        return self.namenode.mkdirs(path)

    def exists(self, path: str) -> bool:
        return self.namenode.exists(path)

    def delete(self, path: str, recursive: bool = False) -> bool:
        return self.namenode.delete(path, recursive=recursive)

    def rename(self, src: str, dst: str) -> None:
        self.namenode.rename(src, dst)

    def list_status(self, path: str):
        return self.namenode.list_status(path)

    def status(self, path: str):
        return self.namenode.status(path)

    def du(self, path: str) -> int:
        return self.namenode.namespace.du(path)

    def set_replication(self, path: str, replication: int) -> None:
        self.namenode.set_replication(path, replication)


class DFSInputStream:
    """Positional reads against a cached block-location snapshot.

    ``pread(offset, length)`` touches only the blocks the range
    overlaps, and each DataNode verifies only the checksum chunks the
    range covers (``read_block_range``) — a continuation probe over the
    first kilobyte of a 64 MB block no longer CRCs 64 MB.  Failover,
    corrupt-replica reporting, locality tallies, and simulated time all
    behave exactly like whole-block reads, charged for the bytes
    actually moved.
    """

    def __init__(self, client: DFSClient, path: str, located):
        self.client = client
        self.path = path
        self.located = list(located)
        self._starts: list[int] = []
        offset = 0
        for lb in self.located:
            self._starts.append(offset)
            offset += lb.block.length
        #: Total file length, from the location snapshot.
        self.length = offset

    def block_length(self, index: int) -> int:
        return self.located[index].block.length

    def pread(self, offset: int, length: int | None = None) -> ReadResult:
        """Read ``length`` bytes starting at file offset ``offset``.

        ``length=None`` reads to end-of-file; ranges past EOF clamp.
        """
        if offset < 0:
            raise ValueError("offset must be >= 0")
        offset = min(offset, self.length)
        if length is None:
            length = self.length - offset
        if length < 0:
            raise ValueError("length must be >= 0")
        length = min(length, self.length - offset)
        result = ReadResult(path=self.path, data=b"", elapsed=0.0, blocks=0)
        pieces: list = []
        elapsed = 0.0
        index = bisect.bisect_right(self._starts, offset) - 1 if self._starts else 0
        remaining = length
        while remaining > 0 and index < len(self.located):
            lb = self.located[index]
            block_offset = offset - self._starts[index]
            take = min(remaining, lb.block.length - block_offset)
            if take > 0:
                view, block_elapsed = self._read_range(lb, block_offset, take, result)
                pieces.append(view)
                elapsed += block_elapsed
                result.blocks += 1
                offset += take
                remaining -= take
            index += 1
        result.data = b"".join(pieces)
        result.elapsed = elapsed
        self.client._charge(elapsed)
        return result

    def _read_range(
        self, located_block, offset: int, length: int, result: ReadResult
    ) -> tuple[memoryview, float]:
        block = located_block.block
        errors: list[str] = []
        for dn_name in located_block.locations:
            try:
                datanode = self.client.dn_lookup(dn_name)
            except KeyError:
                continue
            try:
                view = datanode.read_block_range(block.block_id, offset, length)
            except CorruptBlockError:
                result.corrupt_replicas_hit += 1
                self.client.namenode.report_bad_block(block.block_id, dn_name)
                errors.append(f"{dn_name}: corrupt")
                continue
            except (DataNodeDownError, BlockNotFoundError) as exc:
                errors.append(f"{dn_name}: {exc}")
                continue
            elapsed = datanode.node.disk.read_time(length)
            elapsed += self.client._transfer_in(dn_name, length)
            self.client._tally_locality(dn_name, result)
            return view, elapsed
        raise HdfsError(
            f"could not read blk_{block.block_id}[{offset}:{offset + length}] "
            f"of {self.path}: tried {located_block.locations or 'no replicas'} "
            f"({errors})"
        )
