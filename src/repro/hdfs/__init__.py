"""HDFS: a functional, instrumented Hadoop Distributed File System.

The pieces mirror Hadoop 1.x (the version the course taught, Apache
Hadoop 1.2.1):

- :class:`~repro.hdfs.namenode.NameNode` — namespace + block map + safe
  mode + dead-node detection + replication monitor.  Block metadata
  lives in (simulated) memory, exactly as the paper's Figure 2 stresses.
- :class:`~repro.hdfs.datanode.DataNode` — block storage with CRC32
  checksums on a node's local disk, heartbeats, block reports, and the
  startup integrity scan that made cluster restarts take "at least
  fifteen minutes" in the paper's war story.
- :class:`~repro.hdfs.client.DFSClient` — file create/read/delete with
  block splitting, rack-aware pipeline writes and closest-replica reads.
- :class:`~repro.hdfs.shell.FsShell` — the ``hadoop fs`` commands the
  assignments require students to run and record.
- :func:`~repro.hdfs.fsck.fsck` and :mod:`~repro.hdfs.dfsadmin` — the
  health tooling the course used to diagnose its corrupted cluster.
- :class:`~repro.hdfs.cluster.HdfsCluster` — one-call assembly of all of
  the above over a :class:`~repro.cluster.builder.HadoopHardware`.
"""

from repro.hdfs.config import HdfsConfig
from repro.hdfs.block import Block, StoredBlock
from repro.hdfs.blockcache import BlockCache
from repro.hdfs.journal import (
    DirJournalStorage,
    MemoryJournalStorage,
    NameNodeJournal,
)
from repro.hdfs.namenode import NameNode
from repro.hdfs.datanode import DataNode
from repro.hdfs.client import DFSClient, DFSInputStream
from repro.hdfs.shell import FsShell
from repro.hdfs.fsck import fsck
from repro.hdfs.cluster import HdfsCluster
from repro.hdfs.balancer import Balancer

__all__ = [
    "Balancer",
    "HdfsConfig",
    "Block",
    "BlockCache",
    "StoredBlock",
    "DirJournalStorage",
    "MemoryJournalStorage",
    "NameNodeJournal",
    "NameNode",
    "DataNode",
    "DFSClient",
    "DFSInputStream",
    "FsShell",
    "fsck",
    "HdfsCluster",
]
