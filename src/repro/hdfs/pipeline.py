"""The HDFS write pipeline.

A client writes a block once; the DataNodes forward it down a chain
(client → dn1 → dn2 → dn3).  Because the stages stream concurrently,
elapsed time is governed by the slowest hop, not the sum — the detail
that makes replication-3 writes affordable and that the HDFS lecture
uses to explain why the third replica goes in the same rack as the
second (only one cross-rack hop).

A failed or full DataNode is dropped from the pipeline and the write
continues with the survivors, as in Hadoop's pipeline recovery.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable

from repro.cluster.network import NetworkModel
from repro.hdfs.block import Block

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.hdfs.datanode import DataNode
    from repro.hdfs.namenode import NameNode


@dataclass
class PipelineResult:
    """Outcome of writing one block through the pipeline."""

    block: Block
    locations: list[str]
    failed: list[str]
    elapsed: float = 0.0

    @property
    def ok(self) -> bool:
        return bool(self.locations)


def pipeline_write(
    block: Block,
    data,
    targets: list[str],
    dn_lookup: Callable[[str], "DataNode"],
    network: NetworkModel,
    namenode: "NameNode",
    client_node: str | None = None,
) -> PipelineResult:
    """Write one block's bytes through the replica pipeline.

    ``data`` may be a ``memoryview`` slice of the client's buffer; it
    is materialised to ``bytes`` exactly once here, and every replica
    in the chain shares that one immutable object (``StoredBlock``
    keeps a reference; ``corrupt()`` copies-on-write per replica).

    Every replica that lands is confirmed to the NameNode via
    ``block_received`` (in Hadoop the receiving DataNode sends this).
    """
    if not isinstance(data, bytes):
        data = bytes(data)
    locations: list[str] = []
    failed: list[str] = []
    hop_times: list[float] = []
    prev = client_node

    for target_name in targets:
        try:
            datanode = dn_lookup(target_name)
        except KeyError:
            failed.append(target_name)
            continue
        if not datanode.write_block(block, data):
            failed.append(target_name)
            continue

        # Network hop from the previous pipeline stage.
        if prev is not None and prev in network.topology:
            hop_times.append(network.transfer_time(prev, target_name, block.length))
        else:
            # Client outside the cluster: charge an off-rack-rate ingest hop.
            network.counters.off_rack += block.length
            slowest = network.nic_bw / network.rack_oversubscription
            hop_times.append(network.latency + block.length / slowest)
        # Disk write at this stage (overlapped with forwarding).
        hop_times.append(datanode.node.disk.write_time(block.length))

        namenode.block_received(target_name, block)
        locations.append(target_name)
        prev = target_name

    elapsed = max(hop_times) if hop_times else 0.0
    return PipelineResult(
        block=block, locations=locations, failed=failed, elapsed=elapsed
    )
