"""Replication-health helpers.

The re-replication *mechanism* lives in the NameNode's replication sweep
(commands piggybacked on heartbeats); this module provides the analysis
view of it — the numbers the paper's second assignment asks students to
"execute and record" to see HDFS transform, store and replicate data.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hdfs.namenode import NameNode
from repro.sim.engine import Simulation


@dataclass(frozen=True)
class ReplicationHealth:
    """A point-in-time summary of replica state across the cluster."""

    total_blocks: int
    fully_replicated: int
    under_replicated: int
    over_replicated: int
    missing: int
    corrupt_replicas: int
    average_replication: float

    @property
    def healthy(self) -> bool:
        return self.missing == 0 and self.under_replicated == 0

    def describe(self) -> str:
        return (
            f"blocks={self.total_blocks} ok={self.fully_replicated} "
            f"under={self.under_replicated} over={self.over_replicated} "
            f"missing={self.missing} corrupt_replicas={self.corrupt_replicas} "
            f"avg_replication={self.average_replication:.2f}"
        )


def replication_health(namenode: NameNode) -> ReplicationHealth:
    """Compute replica health from the NameNode's block map."""
    total = len(namenode.block_map)
    under = over = missing = corrupt = 0
    live_replica_sum = 0
    for meta in namenode.block_map.values():
        live = sum(1 for d in meta.locations if namenode._is_live(d))
        live_replica_sum += live
        corrupt += len(meta.corrupt_on)
        if live == 0:
            missing += 1
        if live < meta.expected_replication:
            under += 1
        elif live > meta.expected_replication:
            over += 1
    fully = total - under - over
    return ReplicationHealth(
        total_blocks=total,
        fully_replicated=fully,
        under_replicated=under,
        over_replicated=over,
        missing=missing,
        corrupt_replicas=corrupt,
        average_replication=(live_replica_sum / total) if total else 0.0,
    )


def wait_for_full_replication(
    sim: Simulation,
    namenode: NameNode,
    timeout: float = 3600.0,
    poll: float | None = None,
) -> bool:
    """Advance the simulation until every block is fully replicated (or
    the timeout passes).  Returns True on success.

    This is how tests and benchmarks observe re-replication converging
    after a DataNode death — the recovery the paper's students
    inadvertently load-tested.
    """
    step = poll or namenode.config.replication_check_interval
    deadline = sim.now + timeout
    while sim.now < deadline:
        health = replication_health(namenode)
        if health.under_replicated == 0 and health.missing == 0:
            return True
        sim.run_for(min(step, deadline - sim.now))
    return replication_health(namenode).healthy
