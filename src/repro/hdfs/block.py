"""Blocks: the unit of HDFS storage and replication.

A :class:`Block` is the NameNode-side identity (id, generation stamp,
length); a :class:`StoredBlock` is the DataNode-side physical replica —
real bytes plus a per-chunk CRC32 array, so corruption is detectable
exactly the way Hadoop detects it (io.bytes.per.checksum chunks, CRC
checked on the read path).

The chunk CRCs carry a *verified memo*: each chunk is CRC-checked at
most once and the verdict is remembered until the replica's bytes
change (``corrupt()``), at which point only the touched chunk's memo is
invalidated.  Ranged reads (``read_range``) verify only the chunks the
range overlaps.  The memo is a host-side cost optimisation only — the
simulated cost model and every error path behave identically whether a
chunk's CRC was recomputed or remembered.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass

from repro.util.errors import CorruptBlockError

#: First block id a fresh NameNode hands out (and the ``next_block_id``
#: an empty fsimage records).
DEFAULT_FIRST_BLOCK_ID = 1001

#: Default io.bytes.per.checksum when a StoredBlock is built outside an
#: HdfsConfig (unit tests, ad-hoc replicas).  Hadoop ships 512 bytes;
#: 64 KB keeps CRC arrays small at production block sizes.
DEFAULT_CHUNK_SIZE = 64 * 1024

# Chunk memo states.  BAD is memoised too: bytes only change through
# corrupt(), which resets the touched chunk to UNKNOWN, so a remembered
# verdict (either way) stays true until the next mutation.
_UNKNOWN, _OK, _BAD = 0, 1, 2


@dataclass(frozen=True)
class Block:
    """NameNode-side block identity."""

    block_id: int
    generation: int
    length: int

    @property
    def name(self) -> str:
        """The on-disk file name, as in Figure 2's physical view."""
        return f"blk_{self.block_id}"

    def __repr__(self) -> str:
        return f"Block(blk_{self.block_id}, gen={self.generation}, len={self.length})"


class BlockIdGenerator:
    """Monotonic block-id source owned by the NameNode.

    A plain integer counter (not ``itertools.count``) so the fsimage
    can persist (:meth:`peek`) and reinstall (:meth:`restore`) the next
    id across crash recovery — replayed clusters must hand out exactly
    the ids the live cluster would have.
    """

    def __init__(self, start: int = DEFAULT_FIRST_BLOCK_ID):
        self._next = start

    def next_id(self) -> int:
        allocated = self._next
        self._next += 1
        return allocated

    def peek(self) -> int:
        """The id the next allocation will return (persisted in fsimage)."""
        return self._next

    def restore(self, next_id: int) -> None:
        """Reinstall a journaled counter; never moves backwards."""
        self._next = max(self._next, int(next_id))


def checksum(data) -> int:
    """CRC32 of a buffer (bytes or memoryview)."""
    return zlib.crc32(data) & 0xFFFFFFFF


class StoredBlock:
    """A physical replica on one DataNode: bytes + chunked checksums.

    ``data`` may be any bytes-like object; it is copied to ``bytes``
    here and nowhere else — this constructor is the single copy
    boundary of the write path.  Chunks are *born verified*: the CRCs
    are computed from the same bytes the replica stores, so a fresh
    replica has nothing left to prove until something mutates it.
    """

    __slots__ = ("block", "data", "chunk_size", "chunk_crcs", "_memo", "_use_memo")

    def __init__(
        self,
        block: Block,
        data,
        chunk_size: int = DEFAULT_CHUNK_SIZE,
        memo: bool = True,
    ):
        if len(data) != block.length:
            raise ValueError(
                f"data length {len(data)} != block length {block.length}"
            )
        if chunk_size <= 0:
            raise ValueError("chunk_size must be positive")
        self.block = block
        self.data = data if isinstance(data, bytes) else bytes(data)
        self.chunk_size = chunk_size
        self._use_memo = memo
        view = memoryview(self.data)
        self.chunk_crcs = [
            checksum(view[i : i + chunk_size])
            for i in range(0, block.length, chunk_size)
        ]
        self._memo = bytearray([_OK] * len(self.chunk_crcs)) if memo else None

    @property
    def block_id(self) -> int:
        return self.block.block_id

    @property
    def generation(self) -> int:
        return self.block.generation

    @property
    def length(self) -> int:
        return self.block.length

    @property
    def n_chunks(self) -> int:
        return len(self.chunk_crcs)

    @property
    def memo_enabled(self) -> bool:
        return self._memo is not None

    # Kept for callers/tests that knew the old whole-block field: the
    # CRC of all bytes, derived from the same data the chunk CRCs cover.
    @property
    def crc(self) -> int:
        return checksum(self.data)

    @property
    def unverified_bytes(self) -> int:
        """Bytes a startup scan would still have to CRC.

        Chunks whose memo already holds a verdict cost nothing to
        re-attest; with the memo disabled every byte needs scanning.
        """
        if self._memo is None:
            return self.length
        pending = self._memo.count(_UNKNOWN)
        if pending == 0:
            return 0
        size = 0
        for index, state in enumerate(self._memo):
            if state == _UNKNOWN:
                size += self._chunk_len(index)
        return size

    def _chunk_len(self, index: int) -> int:
        start = index * self.chunk_size
        return min(self.chunk_size, self.length - start)

    def _verify_chunk(self, index: int) -> bool:
        if self._memo is not None and self._memo[index] != _UNKNOWN:
            return self._memo[index] == _OK
        start = index * self.chunk_size
        view = memoryview(self.data)[start : start + self.chunk_size]
        ok = checksum(view) == self.chunk_crcs[index]
        if self._memo is not None:
            self._memo[index] = _OK if ok else _BAD
        return ok

    def verify(self) -> bool:
        """Check every chunk (memoised); False means the replica is corrupt."""
        return all(self._verify_chunk(i) for i in range(len(self.chunk_crcs)))

    def verify_range(self, offset: int, length: int) -> bool:
        """Check only the chunks [offset, offset+length) overlaps."""
        if length <= 0 or self.length == 0:
            return True
        first = offset // self.chunk_size
        last = (offset + length - 1) // self.chunk_size
        return all(self._verify_chunk(i) for i in range(first, last + 1))

    def read(self) -> bytes:
        """Return the bytes, raising if the replica fails verification."""
        if not self.verify():
            raise CorruptBlockError(
                f"checksum mismatch reading blk_{self.block.block_id}"
            )
        return self.data

    def read_range(self, offset: int, length: int | None = None) -> memoryview:
        """Zero-copy slice of the replica, verifying only touched chunks.

        ``offset`` past the end yields an empty view; ``length`` is
        clamped to the block tail.  ``None`` means "to the end".
        """
        if offset < 0:
            raise ValueError("offset must be >= 0")
        offset = min(offset, self.length)
        if length is None:
            length = self.length - offset
        if length < 0:
            raise ValueError("length must be >= 0")
        length = min(length, self.length - offset)
        if not self.verify_range(offset, length):
            raise CorruptBlockError(
                f"checksum mismatch reading blk_{self.block.block_id}"
                f" range [{offset}, {offset + length})"
            )
        return memoryview(self.data)[offset : offset + length]

    def corrupt(self, offset: int = 0) -> None:
        """Flip a byte (test/fault-injection hook) without updating CRCs.

        Only the touched chunk's memo is invalidated — the other chunks
        remain attested, exactly how Hadoop localises checksum damage.
        """
        if self.length == 0:
            return
        offset %= self.length
        mutated = bytearray(self.data)
        mutated[offset] ^= 0xFF
        self.data = bytes(mutated)
        if self._memo is not None:
            self._memo[offset // self.chunk_size] = _UNKNOWN
