"""Blocks: the unit of HDFS storage and replication.

A :class:`Block` is the NameNode-side identity (id, generation stamp,
length); a :class:`StoredBlock` is the DataNode-side physical replica —
real bytes plus a CRC32 checksum, so corruption is detectable exactly
the way Hadoop detects it.
"""

from __future__ import annotations

import itertools
import zlib
from dataclasses import dataclass

from repro.util.errors import CorruptBlockError


@dataclass(frozen=True)
class Block:
    """NameNode-side block identity."""

    block_id: int
    generation: int
    length: int

    @property
    def name(self) -> str:
        """The on-disk file name, as in Figure 2's physical view."""
        return f"blk_{self.block_id}"

    def __repr__(self) -> str:
        return f"Block(blk_{self.block_id}, gen={self.generation}, len={self.length})"


class BlockIdGenerator:
    """Monotonic block-id source owned by the NameNode."""

    def __init__(self, start: int = 1001):
        self._counter = itertools.count(start)

    def next_id(self) -> int:
        return next(self._counter)


def checksum(data: bytes) -> int:
    """CRC32 of a block's bytes (Hadoop checksums per 512-byte chunk;
    one CRC over the block preserves the detect-on-read behaviour)."""
    return zlib.crc32(data) & 0xFFFFFFFF


class StoredBlock:
    """A physical replica on one DataNode: bytes + checksum."""

    __slots__ = ("block", "data", "crc")

    def __init__(self, block: Block, data: bytes):
        if len(data) != block.length:
            raise ValueError(
                f"data length {len(data)} != block length {block.length}"
            )
        self.block = block
        self.data = data
        self.crc = checksum(data)

    @property
    def block_id(self) -> int:
        return self.block.block_id

    @property
    def length(self) -> int:
        return self.block.length

    def verify(self) -> bool:
        """Recompute the checksum; False means the replica is corrupt."""
        return checksum(self.data) == self.crc

    def read(self) -> bytes:
        """Return the bytes, raising if the replica fails verification."""
        if not self.verify():
            raise CorruptBlockError(
                f"checksum mismatch reading blk_{self.block.block_id}"
            )
        return self.data

    def corrupt(self, offset: int = 0) -> None:
        """Flip a byte (test/fault-injection hook) without updating crc."""
        if self.length == 0:
            return
        offset %= self.length
        mutated = bytearray(self.data)
        mutated[offset] ^= 0xFF
        self.data = bytes(mutated)
