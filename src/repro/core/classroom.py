"""Classroom simulation: students + deadline + shared cluster = cascade.

Section II.A, executable: "A large number of students waited until the
last day before starting on the assignment.  As a result, the Hadoop
cluster began to slow down significantly.  In addition, some of job
submissions contained run time errors that created memory leaks on the
Java heap memory and consequently crashed the task tracker and data
node daemons.  When the Hadoop cluster was restarted, it typically took
at least fifteen minutes for all the Data Nodes to check for data
integrity and report back to the Name Node.  However, as soon as the
cluster was up again, students continued to resubmit their jobs, hence
creating additional under-replicated data blocks. ... By the end of the
semester, only about one third of the students ... were able to
complete the second assignment."

Two scenarios share one student-behaviour model:

- ``platform="dedicated"`` — Version 1: everyone on one shared cluster;
  crashes and congestion are everyone's problem;
- ``platform="myhadoop"`` — Versions 2-4: per-student dynamic clusters;
  a crash costs only its owner a retry.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.core.platforms import build_dedicated_platform, build_myhadoop_platform
from repro.datasets.zipf_text import ZipfTextGenerator
from repro.hdfs.config import HdfsConfig
from repro.hdfs.replication import replication_health
from repro.mapreduce.config import JobConf, MapReduceConfig
from repro.mapreduce.streaming import streaming_job
from repro.myhadoop.provision import MyHadoopConfig
from repro.myhadoop.submission import BatchSubmission
from repro.util.errors import ReproError
from repro.util.rng import RngStream
from repro.util.units import HOUR, MINUTE


class StudentState(enum.Enum):
    WAITING = "waiting"  # hasn't started yet
    WORKING = "working"  # has a job in flight (or retrying)
    DONE = "done"
    OUT_OF_TIME = "out_of_time"


@dataclass
class Student:
    student_id: int
    start_time: float
    buggy: bool
    state: StudentState = StudentState.WAITING
    attempts: int = 0
    finished_at: float | None = None


@dataclass
class ClassroomScenario:
    """Knobs for one classroom run."""

    name: str = "version-1-deadline"
    platform: str = "dedicated"  # "dedicated" | "myhadoop"
    num_students: int = 39
    window: float = 48 * HOUR  # time from scenario start to deadline
    #: Mean head-start before the deadline (exponential): most students
    #: start within a day of the due date.
    mean_head_start: float = 10 * HOUR
    min_head_start: float = 30 * MINUTE
    buggy_probability: float = 0.4
    fix_probability: float = 0.6  # chance a resubmission has the bug fixed
    resubmit_delay: float = 10 * MINUTE
    poll_interval: float = 2 * MINUTE
    heap_leak_probability: float = 0.35  # per attempt, for buggy jobs
    #: Shared dataset size (dedicated) / per-student staged size (myhadoop).
    input_bytes: int = 160 * 1024
    block_size: int = 8 * 1024
    #: Instructor watchdog (dedicated only).
    instructor_check_interval: float = 15 * MINUTE
    instructor_reaction_delay: float = 30 * MINUTE
    dead_fraction_for_restart: float = 0.5
    #: myHadoop: probability a student logs out without stop-all.sh.
    abandon_probability: float = 0.15
    nodes_per_student: int = 4
    #: Daemon heartbeat/sweep interval.  Multi-day simulations don't
    #: need Hadoop's 3-second chatter to preserve the mechanisms under
    #: study, and 15s keeps the event count reasonable.
    daemon_interval: float = 15.0
    #: Pre-existing data on each DataNode's disk (the pre-loaded Google
    #: trace replicas): what the startup integrity scan must re-verify,
    #: making every restart cost the paper's ~15 minutes.
    preloaded_bytes_per_node: int = 70 * 1024**3
    #: Integrity-scan rate during DataNode startup (seek-heavy verify).
    startup_scan_bw: float = 75 * 1024**2
    seed: int = 0


@dataclass
class ClassroomReport:
    """What the instructors saw by the deadline."""

    scenario: str
    platform: str
    num_students: int
    completed: int = 0
    daemon_crashes: int = 0
    cluster_restarts: int = 0
    restart_downtime: float = 0.0
    max_under_replicated: int = 0
    missing_blocks_at_deadline: int = 0
    total_job_submissions: int = 0
    ghost_daemon_conflicts: int = 0
    timeline: list[tuple[float, str]] = field(default_factory=list)

    @property
    def completion_fraction(self) -> float:
        return self.completed / self.num_students if self.num_students else 0.0

    def describe(self) -> str:
        lines = [
            f"Classroom scenario {self.scenario!r} on {self.platform}:",
            f"  completed: {self.completed}/{self.num_students} "
            f"({self.completion_fraction:.0%})",
            f"  job submissions: {self.total_job_submissions}",
            f"  daemon crashes: {self.daemon_crashes}",
            f"  cluster restarts: {self.cluster_restarts} "
            f"(downtime {self.restart_downtime / 60:.0f} min)",
            f"  max under-replicated blocks: {self.max_under_replicated}",
            f"  missing blocks at deadline: {self.missing_blocks_at_deadline}",
            f"  ghost-daemon conflicts: {self.ghost_daemon_conflicts}",
        ]
        return "\n".join(lines)


def _student_job(scenario: ClassroomScenario, student: Student, attempt: int):
    """The job a student submits (wordcount-shaped, possibly leaky)."""
    leak = scenario.heap_leak_probability if student.buggy else 0.01
    conf = JobConf(
        name=f"s{student.student_id:02d}-a{attempt}",
        num_reduces=1,
        heap_leak_probability=leak,
        crash_daemons_on_heap_leak=True,
        max_attempts=4,
    )
    return streaming_job(
        name=conf.name,
        map_fn=lambda k, v: ((w, 1) for w in v.split()),
        reduce_fn=lambda k, vs: [(k, sum(vs))],
        conf=conf,
    )


def _draw_students(scenario: ClassroomScenario, rng: RngStream) -> list[Student]:
    students = []
    for i in range(scenario.num_students):
        head_start = max(
            scenario.min_head_start,
            rng.child("start", i).exponential(scenario.mean_head_start),
        )
        start = max(0.0, scenario.window - head_start)
        students.append(
            Student(
                student_id=i + 1,
                start_time=start,
                buggy=rng.child("buggy", i).bernoulli(scenario.buggy_probability),
            )
        )
    return students


# --------------------------------------------------------------------------
# Dedicated shared cluster (Version 1)


def _run_dedicated(scenario: ClassroomScenario) -> ClassroomReport:
    rng = RngStream(seed=scenario.seed).child("classroom", scenario.name)
    interval = scenario.daemon_interval
    hdfs_config = HdfsConfig(
        block_size=scenario.block_size,
        replication=3,
        heartbeat_interval=interval,
        replication_check_interval=interval,
        startup_scan_bw=scenario.startup_scan_bw,
    )
    mr_config = MapReduceConfig(tasktracker_heartbeat=interval)
    platform = build_dedicated_platform(
        seed=scenario.seed, hdfs_config=hdfs_config, mr_config=mr_config
    )
    mr = platform.mr
    sim = mr.sim
    report = ClassroomReport(
        scenario=scenario.name,
        platform="dedicated",
        num_students=scenario.num_students,
    )

    text = ZipfTextGenerator(rng.child("corpus")).text_of_bytes(
        scenario.input_bytes
    )
    mr.client().put_text("/class/input.txt", text)
    # The pre-loaded Google trace replicas: restart scans must re-verify
    # all of it, which is where the 15-minute recoveries come from.
    for datanode in mr.hdfs.datanodes.values():
        datanode.ballast_bytes = scenario.preloaded_bytes_per_node

    sim.bus.subscribe(
        "mr.tasktracker.crashed",
        lambda e: report.timeline.append((e.time, "tasktracker crashed"))
        or setattr(report, "daemon_crashes", report.daemon_crashes + 1),
    )

    students = _draw_students(scenario, rng)
    epoch = sim.now  # cluster-setup time precedes the working window
    deadline = epoch + scenario.window
    state = {"restart_pending": False}
    # All students poll their jobs off one shared timer wheel: one
    # engine event per poll tick for the whole class instead of one
    # self-rescheduling event chain per student — at campus scale
    # (10k students) that is the difference between O(active-jobs) and
    # O(students) queue pressure per interval.
    poll_wheel = sim.wheel(scenario.poll_interval)

    def submit(student: Student) -> None:
        if sim.now >= deadline or student.state == StudentState.DONE:
            return
        student.attempts += 1
        report.total_job_submissions += 1
        job = _student_job(scenario, student, student.attempts)
        output = f"/out/s{student.student_id:02d}/a{student.attempts}"
        try:
            running = mr.submit(job, "/class/input.txt", output)
        except ReproError as exc:
            report.timeline.append(
                (sim.now, f"student {student.student_id} submit failed: {exc}")
            )
            sim.schedule(scenario.resubmit_delay, submit, student)
            return
        student.state = StudentState.WORKING
        unsubscribe: list = []
        unsubscribe.append(
            poll_wheel.subscribe(poll, student, running, unsubscribe)
        )

    def poll(student: Student, running, unsubscribe: list) -> None:
        if student.state == StudentState.DONE:
            unsubscribe[0]()
            return
        if not running.finished:
            if sim.now >= deadline:
                unsubscribe[0]()
            return
        unsubscribe[0]()
        if running.succeeded:
            student.state = StudentState.DONE
            student.finished_at = sim.now
            report.timeline.append(
                (sim.now, f"student {student.student_id} finished")
            )
            return
        # Failed: maybe the fix works this time.
        if student.buggy and rng.child(
            "fix", student.student_id, student.attempts
        ).bernoulli(scenario.fix_probability):
            student.buggy = False
        sim.schedule(scenario.resubmit_delay, submit, student)

    for student in students:
        sim.schedule_at(epoch + student.start_time, submit, student)

    # The instructors' watchdog: restart the cluster when most of it is
    # dead — after a detection/reaction delay, and students immediately
    # pile back on.
    def instructor_check() -> None:
        health = replication_health(mr.hdfs.namenode)
        report.max_under_replicated = max(
            report.max_under_replicated, health.under_replicated
        )
        live = sum(1 for t in mr.tasktrackers.values() if t.is_serving)
        if (
            live <= len(mr.tasktrackers) * (1 - scenario.dead_fraction_for_restart)
            and not state["restart_pending"]
        ):
            state["restart_pending"] = True
            report.timeline.append((sim.now, "instructors notified"))
            sim.schedule(scenario.instructor_reaction_delay, do_restart)

    def do_restart() -> None:
        report.cluster_restarts += 1
        for tracker in mr.tasktrackers.values():
            if tracker.is_serving:
                tracker.stop()
        scan_time = mr.hdfs.restart_cluster()
        report.restart_downtime += scan_time
        report.timeline.append(
            (sim.now, f"cluster restart (scan {scan_time / 60:.1f} min)")
        )
        # Trackers come back once HDFS has rescanned and left safe mode.
        sim.schedule(scan_time, bring_back_trackers)

    def bring_back_trackers() -> None:
        for tracker in mr.tasktrackers.values():
            if not tracker.is_serving:
                tracker.start(mr.jobtracker)
        state["restart_pending"] = False
        report.timeline.append((sim.now, "trackers restarted"))

    sim.every(scenario.instructor_check_interval, instructor_check)
    sim.run_until(deadline)

    report.completed = sum(1 for s in students if s.state == StudentState.DONE)
    for student in students:
        if student.state != StudentState.DONE:
            student.state = StudentState.OUT_OF_TIME
    report.missing_blocks_at_deadline = len(mr.hdfs.namenode.missing_blocks())
    return report


# --------------------------------------------------------------------------
# Per-student myHadoop clusters (Versions 2-4)


def _run_myhadoop(scenario: ClassroomScenario) -> ClassroomReport:
    """Sequential replay of per-student myHadoop sessions.

    ``BatchSubmission.run`` drives the shared simulation itself, so
    students are replayed in start-time order rather than as interleaved
    events; isolation between their clusters is what the scenario is
    demonstrating, and the ghost-daemon handoffs between consecutive
    sessions are preserved.
    """
    rng = RngStream(seed=scenario.seed).child("classroom", scenario.name)
    env = build_myhadoop_platform(
        seed=scenario.seed,
        mr_config=MapReduceConfig(tasktracker_heartbeat=scenario.daemon_interval),
    )
    sim = env.sim
    report = ClassroomReport(
        scenario=scenario.name,
        platform="myhadoop",
        num_students=scenario.num_students,
    )
    sim.bus.subscribe(
        "mr.tasktracker.crashed",
        lambda e: setattr(report, "daemon_crashes", report.daemon_crashes + 1),
    )

    students = sorted(_draw_students(scenario, rng), key=lambda s: s.start_time)
    deadline = sim.now + scenario.window
    corpus = ZipfTextGenerator(rng.child("corpus")).text_of_bytes(
        scenario.input_bytes
    )

    def one_attempt(student: Student) -> bool:
        """Run one complete myHadoop session; True when done."""
        student.attempts += 1
        report.total_job_submissions += 1
        user = f"student{student.student_id:02d}"
        home = env.home_for(user)
        home.write_file(f"/home/{user}/input.txt", corpus)
        hdfs_config = HdfsConfig(
            block_size=scenario.block_size,
            replication=2,
            heartbeat_interval=scenario.daemon_interval,
            replication_check_interval=scenario.daemon_interval,
        )
        config = MyHadoopConfig(
            user=user, num_nodes=scenario.nodes_per_student, hdfs=hdfs_config
        )
        submission = BatchSubmission(
            env.scheduler, env.provisioner, config, home, walltime=4 * HOUR
        )
        submission.add_stage_in(
            f"/home/{user}/input.txt", f"/user/{user}/input.txt"
        )
        job = _student_job(scenario, student, student.attempts)
        submission.add_job(
            job,
            f"/user/{user}/input.txt",
            f"/user/{user}/out{student.attempts}",
            export_local=f"/home/{user}/results{student.attempts}.txt",
        )
        submission.stop_cluster_at_end = not rng.child(
            "abandon", student.student_id, student.attempts
        ).bernoulli(scenario.abandon_probability)
        result = submission.run()
        if not submission.stop_cluster_at_end:
            report.timeline.append((sim.now, f"{user} left ghost daemons behind"))
        if result.succeeded:
            student.state = StudentState.DONE
            student.finished_at = sim.now
            report.timeline.append((sim.now, f"{user} finished"))
            return True
        report.timeline.append(
            (sim.now, f"{user} attempt failed: {result.failure}")
        )
        if student.buggy and rng.child(
            "fix", student.student_id, student.attempts
        ).bernoulli(scenario.fix_probability):
            student.buggy = False
        return False

    for student in students:
        if student.start_time > sim.now:
            sim.run_until(student.start_time)
        while sim.now < deadline and student.state != StudentState.DONE:
            if one_attempt(student):
                break
            sim.run_for(min(scenario.resubmit_delay, max(0.0, deadline - sim.now)))
        if student.state != StudentState.DONE:
            student.state = StudentState.OUT_OF_TIME

    report.completed = sum(1 for s in students if s.state == StudentState.DONE)
    report.ghost_daemon_conflicts = env.provisioner.ghost_daemon_conflicts
    return report


def run_classroom(scenario: ClassroomScenario) -> ClassroomReport:
    """Run one classroom scenario to its deadline."""
    if scenario.platform == "dedicated":
        return _run_dedicated(scenario)
    if scenario.platform == "myhadoop":
        return _run_myhadoop(scenario)
    raise ValueError(f"unknown platform {scenario.platform!r}")
