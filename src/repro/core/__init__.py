"""The paper's primary contribution: the Hadoop MapReduce teaching module.

- :mod:`~repro.core.module` — the four course versions (Fall 2012,
  Spring 2013, Summer 2013 REU, Fall 2013) as structured lesson plans
  with the issues each iteration hit and the changes it made;
- :mod:`~repro.core.assignments` — the assignments as executable specs
  with reference solutions and graders over the synthetic datasets;
- :mod:`~repro.core.platforms` — the three computing-platform setups the
  course tried (pseudo-distributed VM, dedicated shared cluster,
  myHadoop dynamic clusters);
- :mod:`~repro.core.classroom` — the classroom simulator that replays
  the Version-1 deadline meltdown and the Version-2+ fix;
- :mod:`~repro.core.figures` — data/text generators for Figures 1 and 2.
"""

from repro.core.module import (
    MODULE_VERSIONS,
    ModuleVersion,
    Lecture,
    module_history_table,
)
from repro.core.platforms import (
    TeachingPlatform,
    build_teaching_cluster,
    build_vm_platform,
    build_dedicated_platform,
    build_myhadoop_platform,
)
from repro.core.assignments import ASSIGNMENTS, Assignment, GradeResult
from repro.core.classroom import ClassroomScenario, ClassroomReport, run_classroom
from repro.core.figures import figure1_scan_sweep, figure2_integration_text
from repro.core.materials import (
    lecture_outline,
    tutorial_handout,
    run_handout_walkthrough,
    syllabus,
)

__all__ = [
    "MODULE_VERSIONS",
    "ModuleVersion",
    "Lecture",
    "module_history_table",
    "TeachingPlatform",
    "build_teaching_cluster",
    "build_vm_platform",
    "build_dedicated_platform",
    "build_myhadoop_platform",
    "ASSIGNMENTS",
    "Assignment",
    "GradeResult",
    "ClassroomScenario",
    "ClassroomReport",
    "run_classroom",
    "figure1_scan_sweep",
    "figure2_integration_text",
    "lecture_outline",
    "tutorial_handout",
    "run_handout_walkthrough",
    "syllabus",
]
