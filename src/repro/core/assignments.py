"""The course assignments as executable specifications.

Each :class:`Assignment` carries the narrative spec from the paper and a
``run_reference`` that executes the reference solution on synthetic data
and grades it against the dataset's exact ground truth.  This is what a
downstream instructor adopts: assignments that can verify themselves.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.core.platforms import TeachingPlatform, build_teaching_cluster
from repro.datasets.google_trace import generate_google_trace
from repro.datasets.movielens import generate_movielens
from repro.datasets.shakespeare import generate_shakespeare
from repro.datasets.yahoo_music import generate_yahoo_music
from repro.hdfs.localfs import LinuxFileSystem
from repro.jobs.album_rating import AlbumRatingJob, best_album_from_output
from repro.jobs.movie_genres import GenreStatsJob, parse_stats_value
from repro.jobs.top_rater import RaterProfileWritable, TopRaterJob
from repro.jobs.top_word import find_top_word
from repro.jobs.trace_resubmissions import find_max_resubmission_job
from repro.mapreduce.local_runner import LocalJobRunner


@dataclass
class GradeResult:
    """One graded check inside an assignment."""

    assignment_id: str
    check: str
    expected: object
    actual: object
    detail: str = ""

    @property
    def correct(self) -> bool:
        return self.expected == self.actual

    def describe(self) -> str:
        status = "PASS" if self.correct else "FAIL"
        return (
            f"[{status}] {self.assignment_id}/{self.check}: "
            f"expected={self.expected!r} actual={self.actual!r} {self.detail}"
        )


@dataclass
class Assignment:
    """One assignment: spec + self-grading reference solution."""

    id: str
    version: int
    title: str
    weeks: int
    description: str
    datasets: tuple[str, ...]
    runner: Callable[[int], list[GradeResult]] = field(repr=False)

    def run_reference(self, seed: int = 0) -> list[GradeResult]:
        return self.runner(seed)


# --------------------------------------------------------------------------
# Version 1, assignment 1: top word in Shakespeare (on the cluster).


def _run_v1_top_word(seed: int) -> list[GradeResult]:
    corpus = generate_shakespeare(seed=seed, num_plays=3, words_per_play=900)
    platform = build_teaching_cluster(num_workers=4, seed=seed, block_size=4096)
    platform.put_text("/data/shakespeare.txt", corpus.text)
    word, count = find_top_word(platform.mr, "/data/shakespeare.txt", "/work/tw")
    return [
        GradeResult(
            assignment_id="v1-top-word",
            check="top-word",
            expected=corpus.top_word,
            actual=(word, count),
        )
    ]


# --------------------------------------------------------------------------
# Version 1, assignment 2: max task resubmissions in the Google trace.


def _run_v1_google_trace(seed: int) -> list[GradeResult]:
    trace = generate_google_trace(seed=seed, num_jobs=40)
    platform = build_teaching_cluster(num_workers=8, seed=seed, block_size=8192)
    platform.put_text("/data/google-trace.csv", trace.events_text)
    job_id, resubs = find_max_resubmission_job(
        platform.mr, "/data/google-trace.csv", "/work/trace"
    )
    return [
        GradeResult(
            assignment_id="v1-google-trace",
            check="max-resubmissions",
            expected=trace.max_resubmission_job(),
            actual=(job_id, resubs),
        )
    ]


# --------------------------------------------------------------------------
# Versions 2-4, assignment 1: MovieLens, serial (no HDFS).


def _run_v2_movielens(seed: int) -> list[GradeResult]:
    data = generate_movielens(
        seed=seed, num_ratings=3000, num_movies=100, num_users=150
    )
    localfs = LinuxFileSystem()
    localfs.write_file("/home/student/ratings.dat", data.ratings_text)
    localfs.write_file("/home/student/movies.dat", data.movies_text)
    runner = LocalJobRunner(localfs=localfs, split_size=32 * 1024)
    results: list[GradeResult] = []

    # Part 1: descriptive statistics per genre.
    stats_run = runner.run(
        GenreStatsJob(movies_path="/home/student/movies.dat", strategy="cached"),
        "/home/student/ratings.dat",
        "/home/student/out-genres",
    )
    produced = {k: parse_stats_value(v) for k, v in stats_run.pairs}
    mismatches = []
    for genre, stats in data.genre_stats.items():
        got = produced.get(genre)
        if (
            got is None
            or int(got["count"]) != stats.count
            or abs(got["mean"] - stats.mean) > 1e-3
            or got["min"] != stats.minimum
            or got["max"] != stats.maximum
        ):
            mismatches.append(genre)
    results.append(
        GradeResult(
            assignment_id="v2-movielens",
            check="genre-statistics",
            expected=[],
            actual=mismatches,
            detail=f"{len(produced)} genres emitted",
        )
    )

    # Part 2: top rater + favourite genre (custom output value class).
    top_run = runner.run(
        TopRaterJob(movies_path="/home/student/movies.dat"),
        "/home/student/ratings.dat",
        "/home/student/out-toprater",
    )
    user_text, profile_text = top_run.pairs[0]
    profile = RaterProfileWritable.decode(profile_text)
    expected_user = data.top_rater()
    results.append(
        GradeResult(
            assignment_id="v2-movielens",
            check="top-rater",
            expected=(
                expected_user,
                data.ratings_per_user[expected_user],
                data.favorite_genre_of(expected_user),
            ),
            actual=(int(user_text), profile.num_ratings, profile.favorite_genre),
        )
    )
    return results


# --------------------------------------------------------------------------
# Versions 2-4, assignment 2: same jars on HDFS + Yahoo albums.


def _run_v2_yahoo_hdfs(seed: int) -> list[GradeResult]:
    results: list[GradeResult] = []
    movie_data = generate_movielens(
        seed=seed, num_ratings=2000, num_movies=80, num_users=120
    )

    # Part 1: rerun the assignment-1 jar on HDFS; answers must agree
    # with the serial run ("demonstrate the ease in which Hadoop
    # MapReduce can immediately speed up the application").
    localfs = LinuxFileSystem()
    localfs.write_file("/home/student/ratings.dat", movie_data.ratings_text)
    localfs.write_file("/home/student/movies.dat", movie_data.movies_text)
    serial = LocalJobRunner(localfs=localfs, split_size=32 * 1024).run(
        GenreStatsJob(movies_path="/home/student/movies.dat", strategy="cached"),
        "/home/student/ratings.dat",
        "/home/student/out-serial",
    )

    platform = build_teaching_cluster(num_workers=4, seed=seed, block_size=8192)
    platform.put_text("/data/ratings.dat", movie_data.ratings_text)
    platform.put_text("/data/movies.dat", movie_data.movies_text)
    hdfs_run = platform.run_job(
        GenreStatsJob(movies_path="/data/movies.dat", strategy="cached"),
        "/data/ratings.dat",
        "/out/genres",
    )
    results.append(
        GradeResult(
            assignment_id="v2-yahoo-hdfs",
            check="serial-vs-hdfs-equivalence",
            expected=sorted(serial.pairs),
            actual=sorted(hdfs_run.pairs),
            detail="same jar, with and without HDFS",
        )
    )

    # Part 1 also asks students to record HDFS shell observations.
    shell = platform.shell()
    listing = shell.run("-ls", "/data")
    stat = shell.run("-stat", "/data/ratings.dat")
    results.append(
        GradeResult(
            assignment_id="v2-yahoo-hdfs",
            check="hdfs-shell-observations",
            expected=True,
            actual=listing.ok and stat.ok and "blocks=" in stat.output,
            detail=stat.output,
        )
    )

    # Part 2: the best-rated album on HDFS.
    music = generate_yahoo_music(seed=seed, num_ratings=2500, num_albums=40)
    platform.put_text("/data/yahoo/ratings.txt", music.ratings_text)
    platform.put_text("/data/yahoo/songs.txt", music.songs_text)
    album_run = platform.run_job(
        AlbumRatingJob(songs_path="/data/yahoo/songs.txt"),
        "/data/yahoo/ratings.txt",
        "/out/albums",
    )
    album, _avg = best_album_from_output(album_run.pairs, min_ratings=1)
    results.append(
        GradeResult(
            assignment_id="v2-yahoo-hdfs",
            check="best-album",
            expected=music.best_album(min_ratings=1),
            actual=album,
        )
    )
    return results


# --------------------------------------------------------------------------

ASSIGNMENTS: dict[str, Assignment] = {
    assignment.id: assignment
    for assignment in (
        Assignment(
            id="v1-top-word",
            version=1,
            title="Highest-count word in the complete Shakespeare collection",
            weeks=2,
            description=(
                "A slight modification of WordCount: find the word with "
                "the highest count in the complete Shakespeare collection."
            ),
            datasets=("shakespeare",),
            runner=_run_v1_top_word,
        ),
        Assignment(
            id="v1-google-trace",
            version=1,
            title="Google trace: job with most task resubmissions",
            weeks=3,
            description=(
                "Analyze the 171GB Google data-center system log and find "
                "the computing job with the largest number of task "
                "resubmissions."
            ),
            datasets=("google_trace",),
            runner=_run_v1_google_trace,
        ),
        Assignment(
            id="v2-movielens",
            version=2,
            title="MovieLens descriptive statistics + top rater (serial)",
            weeks=2,
            description=(
                "Descriptive statistics of ratings per movie genre "
                "(requires a side file join), then the user with the most "
                "ratings and their favourite genre (requires a customized "
                "output value class).  Run serially, without HDFS."
            ),
            datasets=("movielens",),
            runner=_run_v2_movielens,
        ),
        Assignment(
            id="v2-yahoo-hdfs",
            version=2,
            title="Rerun on HDFS + best-rated Yahoo! Music album",
            weeks=3,
            description=(
                "Rerun the assignment-1 jars on HDFS data, record HDFS "
                "shell observations, then find the album with the highest "
                "average rating in the Yahoo song database."
            ),
            datasets=("movielens", "yahoo_music"),
            runner=_run_v2_yahoo_hdfs,
        ),
    )
}


def grade_all(seed: int = 0) -> list[GradeResult]:
    """Run every assignment's reference solution and grade it."""
    results: list[GradeResult] = []
    for assignment in ASSIGNMENTS.values():
        results.extend(assignment.run_reference(seed))
    return results


def lint_reference_solutions() -> list[GradeResult]:
    """mrlint the reference jobs and fold the result into grading terms.

    The grader hook for the analysis subsystem: a submission (here, the
    reference solutions in ``repro.jobs``) is expected to lint *clean* —
    every unsuppressed MRJ0xx finding is one failed check.  Instructors
    grading student code get the same shape: one GradeResult per
    finding, plus a summary row asserting zero findings overall.
    """
    from repro.analysis import lint_jobs

    findings = lint_jobs()
    results = [
        GradeResult(
            assignment_id="mrlint",
            check=f"{finding.rule}@{finding.path.rsplit('/', 1)[-1]}:{finding.line}",
            expected="clean",
            actual=finding.rule,
            detail=finding.message,
        )
        for finding in findings
    ]
    results.append(
        GradeResult(
            assignment_id="mrlint",
            check="reference jobs lint clean",
            expected=0,
            actual=len(findings),
        )
    )
    return results
