"""The course's computing platforms (Section II's four approaches).

Three of the paper's platform generations are buildable here:

- :func:`build_vm_platform` — Version 1's pseudo-distributed Hadoop in a
  single VM, complete with its fatal quirk: GUI access through an SSH
  tunnel whose virtual network was "limited ... to roughly 1 MB/s";
- :func:`build_dedicated_platform` — Version 1's dedicated 8-node shared
  cluster (dual 8-core, 64 GB RAM, 850 GB HDD per node);
- :func:`build_myhadoop_platform` — Versions 2-4's dynamic per-student
  clusters on the shared supercomputer.

:func:`build_teaching_cluster` is the quickstart entry point: a small
ready-to-use cluster wrapped in a :class:`TeachingPlatform`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cluster.builder import build_hadoop_cluster
from repro.cluster.hardware import NodeSpec, CLEMSON_NODE_SPEC
from repro.cluster.storage import ParallelFileSystem
from repro.cluster.topology import ClusterTopology
from repro.hdfs.cluster import HdfsCluster
from repro.hdfs.config import HdfsConfig
from repro.hdfs.localfs import LinuxFileSystem
from repro.mapreduce.api import Job
from repro.mapreduce.cluster import MapReduceCluster
from repro.mapreduce.config import MapReduceConfig
from repro.mapreduce.job import JobReport
from repro.myhadoop.pbs import PbsScheduler
from repro.myhadoop.provision import MyHadoopProvisioner
from repro.sim.engine import Simulation
from repro.util.units import GB, MB


@dataclass
class PlatformJobResult:
    """A finished job plus parsed output, for teaching-friendly access."""

    report: JobReport
    pairs: list[tuple[str, str]]

    def output_pairs(self) -> list[tuple[str, str]]:
        return self.pairs

    def output_dict(self) -> dict[str, str]:
        return dict(self.pairs)

    @property
    def succeeded(self) -> bool:
        return self.report.succeeded


@dataclass
class TeachingPlatform:
    """A ready-to-use cluster with convenience wrappers for coursework."""

    name: str
    description: str
    mr: MapReduceCluster
    home: LinuxFileSystem = field(default_factory=LinuxFileSystem)
    quirks: tuple[str, ...] = ()

    @property
    def sim(self) -> Simulation:
        return self.mr.sim

    def put_text(self, hdfs_path: str, text: str) -> None:
        self.mr.client().put_text(hdfs_path, text)

    def run_job(
        self, job: Job, input_path: str, output_path: str
    ) -> PlatformJobResult:
        report = self.mr.run_job(job, input_path, output_path, require_success=True)
        return PlatformJobResult(
            report=report, pairs=self.mr.read_output(output_path)
        )

    def shell(self):
        return self.mr.shell(localfs=self.home)


#: The VM's virtual-network ceiling the paper measured (Section II.A).
VM_DISPLAY_BANDWIDTH = 1 * MB


def build_vm_platform(seed: int = 0) -> TeachingPlatform:
    """Version 1's pseudo-distributed single-VM Hadoop.

    One node runs every daemon; replication is 1 (there is nowhere else
    to put a replica).  The platform works — and the quirks list records
    why it failed in practice anyway.
    """
    spec = NodeSpec(
        cores=2,
        ram_bytes=4 * GB,
        disk_bytes=40 * GB,
        disk_read_bw=60 * MB,
        disk_write_bw=50 * MB,
        nic_bw=VM_DISPLAY_BANDWIDTH,  # everything rides the ssh tunnel
    )
    hardware = build_hadoop_cluster(num_workers=1, spec=spec)
    hdfs_config = HdfsConfig(block_size=64 * 1024, replication=1)
    mr = MapReduceCluster(
        hardware=hardware, hdfs_config=hdfs_config, seed=seed
    )
    return TeachingPlatform(
        name="pseudo-distributed VM",
        description=(
            "Hadoop in a single virtual machine on the supercomputer, "
            "reached through an SSH tunnel"
        ),
        mr=mr,
        quirks=(
            "virtual network limited to ~1 MB/s",
            "GUI-over-wireless made the web interfaces unusable",
            "significant student time lost getting VMs running",
        ),
    )


def vm_gui_transfer_seconds(nbytes: int) -> float:
    """How long a GUI payload takes over the Version-1 SSH tunnel."""
    return nbytes / VM_DISPLAY_BANDWIDTH


def build_dedicated_platform(
    seed: int = 0,
    num_nodes: int = 8,
    block_size: int = 64 * 1024,
    hdfs_config: HdfsConfig | None = None,
    mr_config: MapReduceConfig | None = None,
) -> TeachingPlatform:
    """Version 1's dedicated shared 8-node teaching cluster."""
    hardware = build_hadoop_cluster(num_workers=num_nodes, spec=CLEMSON_NODE_SPEC)
    hdfs_config = hdfs_config or HdfsConfig(block_size=block_size, replication=3)
    mr = MapReduceCluster(
        hardware=hardware, hdfs_config=hdfs_config, mr_config=mr_config, seed=seed
    )
    return TeachingPlatform(
        name="dedicated shared cluster",
        description=(
            "Eight nodes detached from the supercomputer: dual 8-core "
            "CPUs, 64GB RAM, 850GB HDD each, shared by the whole class"
        ),
        mr=mr,
        quirks=(
            "one class-wide JobTracker: deadline congestion is shared",
            "leaky jobs crash daemons for everyone",
            "no Hadoop admin experience on call",
        ),
    )


def build_teaching_cluster(
    num_workers: int = 4,
    seed: int = 0,
    block_size: int = 64 * 1024,
) -> TeachingPlatform:
    """The quickstart platform: a small, fast, fully-featured cluster."""
    hdfs_config = HdfsConfig(block_size=block_size, replication=min(3, num_workers))
    mr = MapReduceCluster(
        num_workers=num_workers, hdfs_config=hdfs_config, seed=seed
    )
    return TeachingPlatform(
        name="teaching cluster",
        description=f"{num_workers}-worker classroom cluster",
        mr=mr,
    )


@dataclass
class MyHadoopEnvironment:
    """Versions 2-4's platform: the shared supercomputer + myHadoop."""

    sim: Simulation
    topology: ClusterTopology
    scheduler: PbsScheduler
    provisioner: MyHadoopProvisioner
    pfs: ParallelFileSystem
    description: str = (
        "per-student dynamic Hadoop clusters on the shared supercomputer "
        "via modified myHadoop scripts"
    )

    def home_for(self, user: str) -> LinuxFileSystem:
        """A fresh home directory on the parallel file system."""
        return LinuxFileSystem()


def build_myhadoop_platform(
    seed: int = 0,
    supercomputer_nodes: int = 64,
    nodes_per_rack: int = 16,
    mr_config: MapReduceConfig | None = None,
) -> MyHadoopEnvironment:
    """Build the shared machine, scheduler and provisioner."""
    sim = Simulation()
    topology = ClusterTopology.regular(
        num_nodes=supercomputer_nodes,
        nodes_per_rack=nodes_per_rack,
        spec=CLEMSON_NODE_SPEC,
    )
    pfs = ParallelFileSystem(supports_file_locking=False)
    scheduler = PbsScheduler(sim, topology)
    provisioner = MyHadoopProvisioner(
        sim, scheduler, pfs=pfs, mr_config=mr_config
    )
    return MyHadoopEnvironment(
        sim=sim,
        topology=topology,
        scheduler=scheduler,
        provisioner=provisioner,
        pfs=pfs,
    )
