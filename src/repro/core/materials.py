"""Teaching materials (Section III), generated from the live system.

The paper groups its materials into "lecture notes and example codes,
assignments, data sources, and tools to set up Hadoop platforms", and
the strongest student feedback asked for "more detailed tutorials and
guidance along with explanations on the purpose of each command".

This module renders those materials *from the implementation*, and the
tutorial handout is executable: every step carries the action it
documents, so :func:`run_handout_walkthrough` can replay the whole
handout against a simulated platform and fail loudly if the docs rot.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.core.assignments import ASSIGNMENTS
from repro.core.module import MODULE_VERSIONS, ModuleVersion, version_by_number
from repro.datasets.catalog import DATASET_CATALOG
from repro.util.textable import TextTable
from repro.util.units import format_size

#: Topic -> the bullet points a lecture on it covers (each traceable to
#: a module in this repository).
LECTURE_POINTS: dict[str, tuple[str, ...]] = {
    "mapreduce": (
        "decompose a problem into map and reduce over key/value pairs "
        "(repro.mapreduce.api)",
        "combiners and the monoid requirement (repro.mapreduce.shuffle, "
        "Lin's 'Monoidify!')",
        "counters and the job report: what to read after a run "
        "(repro.mapreduce.counters)",
        "serial development first: no cluster needed to test logic "
        "(repro.mapreduce.local_runner)",
    ),
    "hdfs": (
        "files become blocks; blocks become replicated blk_xxx files on "
        "the Linux FS (repro.hdfs.block, Figure 2)",
        "the NameNode keeps all block metadata in memory "
        "(repro.hdfs.namenode)",
        "rack-aware placement and why the third replica is cheap "
        "(repro.hdfs.placement)",
        "data locality: the JobTracker schedules maps onto the data "
        "(repro.mapreduce.jobtracker)",
        "observing it all: fs shell, fsck, dfsadmin (repro.hdfs.shell)",
    ),
    "ecosystem": (
        "HBase: random access on an append-only file system "
        "(repro.hbase)",
        "Hive: SQL that compiles to the MapReduce you already know "
        "(repro.hive)",
        "beyond MapReduce: resource managers and in-memory computing "
        "(repro.yarn, repro.sparklite)",
    ),
}


def lecture_outline(version_number: int) -> str:
    """The lecture-by-lecture outline for one module version."""
    version = version_by_number(version_number)
    lines = [
        f"Hadoop MapReduce module, version {version.version} "
        f"({version.term})",
        f"Format: {version.format}",
        "",
    ]
    for i, lecture in enumerate(version.lectures, 1):
        kind = "LAB" if lecture.kind == "lab" else "LECTURE"
        lines.append(f"Session {i} [{kind}]: {lecture.title}")
        for point in LECTURE_POINTS.get(lecture.topic, ()):
            lines.append(f"  - {point}")
    if version.assignment_ids:
        lines.append("")
        lines.append("Assignments:")
        for assignment_id in version.assignment_ids:
            assignment = ASSIGNMENTS[assignment_id]
            lines.append(
                f"  {assignment.id} ({assignment.weeks} weeks): "
                f"{assignment.title}"
            )
    return "\n".join(lines)


def data_sources_table() -> TextTable:
    """Section III.C's data-source catalogue."""
    table = TextTable(
        ["Dataset", "Size", "Used for"],
        title="Data sources (Section III.C)",
    )
    for info in DATASET_CATALOG.values():
        table.add_row(
            [info.name, format_size(info.real_size_bytes), info.role]
        )
    return table


# --------------------------------------------------------------------------
# the executable tutorial handout


@dataclass
class HandoutStep:
    """One step: the command as typed, why, and the action it performs."""

    command: str
    purpose: str
    action: Callable[[dict], None] | None = field(default=None, repr=False)

    def render(self, index: int) -> str:
        return f"  {index}. $ {self.command}\n     # {self.purpose}"


def _step_qsub(ctx: dict) -> None:
    ctx["reservation"] = ctx["env"].scheduler.qsub(
        user=ctx["user"], num_nodes=4, walltime=2 * 3600
    )
    assert ctx["reservation"].active


def _step_configure(ctx: dict) -> None:
    from repro.hdfs.config import HdfsConfig
    from repro.myhadoop.provision import MyHadoopConfig

    ctx["config"] = MyHadoopConfig(
        user=ctx["user"],
        num_nodes=4,
        hdfs=HdfsConfig(block_size=4096, replication=2),
    )
    ctx["config"].validate(ctx["env"].pfs)


def _step_start(ctx: dict) -> None:
    ctx["cluster"] = ctx["env"].provisioner.start_cluster(
        ctx["reservation"], ctx["config"]
    )


def _step_put(ctx: dict) -> None:
    ctx["home"].write_file(f"/home/{ctx['user']}/input.txt", "to be or not\n" * 50)
    client = ctx["cluster"].mr.client()
    client.copy_from_local(
        ctx["home"], f"/home/{ctx['user']}/input.txt",
        f"/user/{ctx['user']}/input.txt",
    )
    assert client.exists(f"/user/{ctx['user']}/input.txt")


def _step_fsck(ctx: dict) -> None:
    from repro.hdfs.fsck import fsck

    report = fsck(ctx["cluster"].hdfs.namenode)
    assert report.healthy
    ctx["fsck"] = report


def _step_jar(ctx: dict) -> None:
    from repro.jobs.wordcount import WordCountWithCombinerJob

    ctx["report"] = ctx["cluster"].mr.run_job(
        WordCountWithCombinerJob(),
        f"/user/{ctx['user']}/input.txt",
        f"/user/{ctx['user']}/out",
        require_success=True,
    )


def _step_get(ctx: dict) -> None:
    pairs = ctx["cluster"].mr.read_output(f"/user/{ctx['user']}/out")
    text = "\n".join(f"{k}\t{v}" for k, v in pairs) + "\n"
    ctx["home"].write_file(f"/home/{ctx['user']}/results.txt", text)
    assert ctx["home"].exists(f"/home/{ctx['user']}/results.txt")


def _step_stop(ctx: dict) -> None:
    ctx["env"].provisioner.stop_cluster(ctx["cluster"])
    ctx["env"].scheduler.release(ctx["reservation"])


HANDOUT_STEPS: tuple[HandoutStep, ...] = (
    HandoutStep(
        "source ~/hadoop-env.sh",
        "sets JAVA_HOME and HADOOP_HOME so every later command finds the "
        "packaged Hadoop 1.2.1 (the course ships the exact directory "
        "layout; do not rearrange it)",
    ),
    HandoutStep(
        "qsub -l nodes=4,walltime=02:00:00 myhadoop-job.sh",
        "asks the scheduler for four nodes for two hours; your cluster "
        "exists only inside this reservation",
        _step_qsub,
    ),
    HandoutStep(
        "myhadoop-configure.sh -n 4",
        "writes a Hadoop configuration for *your* nodes and *your* "
        "scratch directories; wrong paths here are the #1 failure mode",
        _step_configure,
    ),
    HandoutStep(
        "start-all.sh",
        "starts the NameNode, DataNodes, JobTracker and TaskTrackers and "
        "binds their ports; if a port is already bound, a previous "
        "student's ghost daemons are squatting on your node",
        _step_start,
    ),
    HandoutStep(
        "hadoop fs -put ~/input.txt /user/$USER/input.txt",
        "copies data from the Linux file system into HDFS, where it is "
        "split into blocks and replicated across your DataNodes",
        _step_put,
    ),
    HandoutStep(
        "hadoop fsck /",
        "verifies every block has its replicas before you compute on it",
        _step_fsck,
    ),
    HandoutStep(
        "hadoop jar wordcount.jar /user/$USER/input.txt /user/$USER/out",
        "submits the MapReduce job; the JobTracker schedules map tasks "
        "onto the nodes that hold the blocks (watch the data-local "
        "counter in the report)",
        _step_jar,
    ),
    HandoutStep(
        "hadoop fs -copyToLocal /user/$USER/out ~/results",
        "exports the output back to the Linux file system -- HDFS "
        "disappears with your reservation, your home directory does not",
        _step_get,
    ),
    HandoutStep(
        "stop-all.sh",
        "stops your daemons and releases their ports; skipping this is "
        "how ghost daemons are born",
        _step_stop,
    ),
)


def tutorial_handout() -> str:
    """The Version-3/4 step-by-step handout, with per-command purpose."""
    lines = [
        "myHadoop tutorial handout (Versions 3-4)",
        "Every command, and why you are typing it:",
        "",
    ]
    for i, step in enumerate(HANDOUT_STEPS, 1):
        lines.append(step.render(i))
    lines.append("")
    lines.append(
        "If start-all.sh fails with 'port in use': your own ghost daemons "
        "can be killed by hand; another student's will be scrubbed by the "
        "scheduler's cleanup sweep within 15 minutes."
    )
    return "\n".join(lines)


def run_handout_walkthrough(env=None, user: str = "student") -> dict:
    """Execute the handout end-to-end on a simulated platform.

    Returns the walkthrough context (reservation, cluster, job report),
    so tests can assert the handout still describes reality.
    """
    from repro.core.platforms import build_myhadoop_platform
    from repro.hdfs.localfs import LinuxFileSystem

    context: dict = {
        "env": env or build_myhadoop_platform(seed=12),
        "user": user,
        "home": LinuxFileSystem(),
    }
    for step in HANDOUT_STEPS:
        if step.action is not None:
            step.action(context)
    return context


def syllabus() -> str:
    """All four versions' outlines plus the data-source catalogue."""
    pieces = [lecture_outline(v.version) for v in MODULE_VERSIONS]
    pieces.append(data_sources_table().render())
    return "\n\n".join(pieces)
