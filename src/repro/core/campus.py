"""Campus-scale simulation: many course sections, one busy semester hour.

Where :mod:`repro.core.classroom` replays the paper's single 39-student
section in mechanistic detail (daemon crashes, restarts, integrity
scans), this module scales the *operational* question up: what does the
teaching infrastructure look like when an entire campus — thousands of
students across several shared course clusters — hits a deadline at
once?  It is the workload the O(active) engine work exists for:

- every poller and daemon rides a shared timer wheel, so 10k students
  polling at one instant is one engine event, not 10k;
- the JobTracker's indexed scheduler keeps each heartbeat O(jobs that
  can actually be scheduled), not O(every job ever submitted);
- the whole run snapshots and restores bit-identically mid-chaos
  (:meth:`CampusClusterRun.digest` is the equality witness).

The model is deliberately lean: each student submits a fixed number of
small wordcount jobs at random times in a submission window; jobs carry
a per-course ``user`` so the fair scheduler and per-user quotas have
tenants to arbitrate between.  A chaos agent can crash/restart workers
on a fixed cadence to keep recovery machinery in the loop.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

from repro.hdfs.config import HdfsConfig
from repro.hdfs.fsck import fsck
from repro.mapreduce.cluster import MapReduceCluster
from repro.mapreduce.config import JobConf, MapReduceConfig
from repro.mapreduce.streaming import streaming_job
from repro.util.errors import ReproError
from repro.util.rng import RngStream
from repro.util.units import HOUR, MINUTE

#: The campus's course sections — the fair scheduler's tenants.
DEFAULT_USERS = ("cs1060", "cs4060", "cs6060", "research")


@dataclass
class CampusScenario:
    """Knobs for one campus-scale run."""

    name: str = "campus"
    #: Total students across the campus.
    num_students: int = 1_000
    #: Shared course clusters; students are dealt round-robin.
    num_clusters: int = 2
    #: Jobs each student submits (resubmission binges included).
    jobs_per_student: int = 1
    #: Submission window: jobs land uniformly at random inside it.
    window: float = 2 * HOUR
    workers_per_cluster: int = 8
    #: Course accounts, dealt to students round-robin; optionally
    #: weighted so one tenant can flood the cluster (see
    #: ``user_weights``).
    users: tuple[str, ...] = DEFAULT_USERS
    #: Relative share of students per user (defaults to uniform).
    user_weights: tuple[float, ...] | None = None
    #: "fifo" (historical, bit-identical) or "fair" (equal shares).
    scheduler: str = "fifo"
    #: Per-user running-attempt caps, fair scheduler only.
    user_quotas: dict[str, int] | None = None
    #: Starvation drill: this user's students submit inside
    #: ``flood_window`` instead of ``window`` — a deadline binge that
    #: front-loads the queue with one tenant's jobs.
    flood_user: str | None = None
    flood_window: float | None = None
    input_bytes: int = 2 * 1024
    block_size: int = 4 * 1024
    #: Heartbeat/poll cadence.  Campus runs use a coarser tick than
    #: Hadoop's 3s chatter: the mechanisms are preserved, the event
    #: count is ~5x smaller.
    daemon_interval: float = 15.0
    poll_interval: float = 1 * MINUTE
    #: Chaos agent: crash one worker every ``chaos_interval`` and
    #: restart it ``chaos_downtime`` later (0 disables).
    chaos_interval: float = 0.0
    chaos_downtime: float = 2 * MINUTE
    #: Hard ceiling on simulated time after the window closes.
    drain_horizon: float = 24 * HOUR
    seed: int = 0

    def jobs_total(self) -> int:
        return self.num_students * self.jobs_per_student

    def students_of_cluster(self, cluster_index: int) -> int:
        base, extra = divmod(self.num_students, self.num_clusters)
        return base + (1 if cluster_index < extra else 0)


@dataclass
class ClusterStats:
    """What one course cluster did during the run."""

    cluster: int
    jobs_submitted: int = 0
    jobs_succeeded: int = 0
    jobs_failed: int = 0
    submit_errors: int = 0
    sim_seconds: float = 0.0
    events_processed: int = 0
    chaos_crashes: int = 0
    missing_blocks: int = 0
    under_replicated: int = 0
    per_user_completed: dict[str, int] = field(default_factory=dict)
    per_user_wait_sum: dict[str, float] = field(default_factory=dict)
    per_user_wait_max: dict[str, float] = field(default_factory=dict)
    digest: str = ""

    @property
    def events_per_job(self) -> float:
        return self.events_processed / max(1, self.jobs_submitted)

    def mean_wait(self, user: str) -> float:
        done = self.per_user_completed.get(user, 0)
        return self.per_user_wait_sum.get(user, 0.0) / done if done else 0.0


@dataclass
class CampusReport:
    """Campus-wide aggregate of every cluster's stats."""

    scenario: str
    num_students: int
    num_clusters: int
    clusters: list[ClusterStats] = field(default_factory=list)

    @property
    def jobs_submitted(self) -> int:
        return sum(c.jobs_submitted for c in self.clusters)

    @property
    def jobs_succeeded(self) -> int:
        return sum(c.jobs_succeeded for c in self.clusters)

    @property
    def events_processed(self) -> int:
        return sum(c.events_processed for c in self.clusters)

    @property
    def sim_seconds(self) -> float:
        return max((c.sim_seconds for c in self.clusters), default=0.0)

    @property
    def events_per_job(self) -> float:
        return self.events_processed / max(1, self.jobs_submitted)

    def per_user_completed(self) -> dict[str, int]:
        totals: dict[str, int] = {}
        for stats in self.clusters:
            for user in sorted(stats.per_user_completed):
                totals[user] = (
                    totals.get(user, 0) + stats.per_user_completed[user]
                )
        return totals

    def per_user_mean_wait(self) -> dict[str, float]:
        waits: dict[str, float] = {}
        for stats in self.clusters:
            for user in sorted(stats.per_user_wait_sum):
                waits[user] = waits.get(user, 0.0) + stats.per_user_wait_sum[user]
        done = self.per_user_completed()
        return {
            user: waits[user] / done[user]
            for user in sorted(waits)
            if done.get(user)
        }

    def describe(self) -> str:
        lines = [
            f"Campus scenario {self.scenario!r}: "
            f"{self.num_students} students / {self.num_clusters} clusters",
            f"  jobs: {self.jobs_succeeded}/{self.jobs_submitted} succeeded",
            f"  engine events: {self.events_processed} "
            f"({self.events_per_job:.1f} per job)",
        ]
        for user, wait in sorted(self.per_user_mean_wait().items()):
            done = self.per_user_completed().get(user, 0)
            lines.append(
                f"  {user}: {done} done, mean wait {wait / 60:.1f} min"
            )
        return "\n".join(lines)


def _campus_job(user: str, student_id: int, attempt: int) -> object:
    """One student submission: a small wordcount under a course account."""
    conf = JobConf(
        name=f"{user}-s{student_id}-a{attempt}",
        user=user,
        num_reduces=1,
        max_attempts=4,
    )
    return streaming_job(
        name=conf.name,
        map_fn=lambda k, v: ((w, 1) for w in v.split()),
        reduce_fn=lambda k, vs: [(k, sum(vs))],
        conf=conf,
    )


class CampusClusterRun:
    """One course cluster's semester hour, snapshot/restore friendly.

    All mutable run state hangs off this object, so
    ``sim.snapshot(run)`` captures the full closure of the run and
    :meth:`digest` computed on the restored copy matches the original
    bit-for-bit.
    """

    def __init__(self, scenario: CampusScenario, cluster_index: int):
        self.scenario = scenario
        self.cluster_index = cluster_index
        rng = RngStream(seed=scenario.seed).child("campus", cluster_index)
        self._rng = rng
        self.mr = MapReduceCluster(
            num_workers=scenario.workers_per_cluster,
            hdfs_config=HdfsConfig(
                block_size=scenario.block_size,
                replication=min(3, scenario.workers_per_cluster),
                heartbeat_interval=scenario.daemon_interval,
                replication_check_interval=scenario.daemon_interval,
            ),
            mr_config=MapReduceConfig(
                tasktracker_heartbeat=scenario.daemon_interval,
                scheduler=scenario.scheduler,
                user_quotas=scenario.user_quotas,
            ),
            seed=scenario.seed + cluster_index,
        )
        self.sim = self.mr.sim
        self.stats = ClusterStats(cluster=cluster_index)
        # Shared corpus: a deterministic line of words sized to the knob
        # (a Zipf text generator would dominate the wall-clock at this
        # scale without changing any scheduling behaviour).
        words = ("campus scale hadoop deadline crunch " * 64).split()
        text = " ".join(words)
        while len(text) < scenario.input_bytes:
            text += "\n" + text
        self.mr.client().put_text("/campus/input.txt", text[: scenario.input_bytes])

        self._epoch = self.sim.now
        self._watching: list[tuple[object, str]] = []
        self._planned = 0
        self._schedule_submissions(rng)
        self.sim.wheel(scenario.poll_interval).subscribe(self._poll)
        if scenario.chaos_interval > 0:
            self.sim.wheel(scenario.chaos_interval).subscribe(self._chaos_tick)

    # ------------------------------------------------------------------
    def _schedule_submissions(self, rng: RngStream) -> None:
        scenario = self.scenario
        weights = scenario.user_weights
        if weights is not None:
            total = sum(weights)
            weights = [w / total for w in weights]
        for local_id in range(scenario.students_of_cluster(self.cluster_index)):
            srng = rng.child("student", local_id)
            if weights is None:
                user = scenario.users[local_id % len(scenario.users)]
            else:
                user = srng.child("user").choice(list(scenario.users), p=weights)
            window = scenario.window
            if (
                scenario.flood_user is not None
                and user == scenario.flood_user
                and scenario.flood_window is not None
            ):
                window = scenario.flood_window
            for attempt in range(scenario.jobs_per_student):
                at = self._epoch + srng.child("at", attempt).uniform(
                    0.0, window
                )
                self.sim.schedule_at(at, self._submit, user, local_id, attempt)
                self._planned += 1

    def _submit(self, user: str, student_id: int, attempt: int) -> None:
        job = _campus_job(user, student_id, attempt)
        output = f"/campus/out/s{student_id}/a{attempt}"
        try:
            running = self.mr.submit(job, "/campus/input.txt", output)
        except ReproError:
            # Submission rejected (e.g. safemode during chaos): the
            # student walks away — campus stats count it as an error,
            # not a retry loop.
            self.stats.submit_errors += 1
            return
        self.stats.jobs_submitted += 1
        self._watching.append((running, user))

    def _poll(self) -> None:
        if not self._watching:
            return
        still = []
        for running, user in self._watching:
            if not running.finished:
                still.append((running, user))
                continue
            if running.succeeded:
                self.stats.jobs_succeeded += 1
                done = self.stats.per_user_completed
                done[user] = done.get(user, 0) + 1
                wait = running.finish_time - running.submit_time
                sums = self.stats.per_user_wait_sum
                sums[user] = sums.get(user, 0.0) + wait
                peaks = self.stats.per_user_wait_max
                peaks[user] = max(peaks.get(user, 0.0), wait)
            else:
                self.stats.jobs_failed += 1
        self._watching = still

    def _chaos_tick(self) -> None:
        live = self.mr.live_trackers()
        if len(live) <= 1:
            return
        victim = self._rng.child(
            "chaos", self.stats.chaos_crashes
        ).choice(live)
        self.stats.chaos_crashes += 1
        self.mr.crash_worker(victim)
        self.sim.schedule(
            self.scenario.chaos_downtime, self.mr.restart_worker, victim
        )

    # ------------------------------------------------------------------
    @property
    def done(self) -> bool:
        finished = (
            self.stats.jobs_submitted + self.stats.submit_errors
            >= self._planned
        )
        return finished and not self._watching

    def _next_step_target(self, step: float) -> float:
        """First epoch-grid point strictly after ``sim.now``.

        Float subtraction can round ``(now - epoch)`` just below a grid
        multiple when now sits exactly on the grid; the naive
        ``epoch + (k + 1) * step`` then equals now and stepping stalls
        forever, so bump one more step in that case.
        """
        steps_done = int((self.sim.now - self._epoch) // step)
        target = self._epoch + (steps_done + 1) * step
        if target <= self.sim.now:
            target += step
        return target

    def run_to_completion(self) -> ClusterStats:
        """Advance the sim until every planned job has resolved.

        Steps land on epoch-aligned boundaries, so a run paused at an
        arbitrary instant (snapshot, inspection) and resumed finishes
        on exactly the same simulated clock as one that never paused —
        the digest's bit-identity depends on it.
        """
        scenario = self.scenario
        deadline = self._epoch + scenario.window + scenario.drain_horizon
        step = max(scenario.poll_interval, scenario.daemon_interval)
        while not self.done and self.sim.now < deadline:
            target = self._next_step_target(step)
            self.sim.run_until(min(target, deadline))
        return self.finalize()

    def finalize(self) -> ClusterStats:
        stats = self.stats
        stats.sim_seconds = self.sim.now - self._epoch
        stats.events_processed = self.sim.events_processed
        health = fsck(self.mr.hdfs.namenode)
        stats.missing_blocks = health.missing_blocks
        stats.under_replicated = health.under_replicated
        stats.digest = self.digest()
        return stats

    def digest(self) -> str:
        """A bit-identity witness over everything the run observed.

        Two runs with equal digests made the same scheduling decisions,
        processed the same number of engine events, finished the same
        jobs for the same users at the same simulated times, and left
        HDFS in the same health state.
        """
        stats = self.stats
        health = fsck(self.mr.hdfs.namenode)
        payload = repr(
            (
                round(self.sim.now, 9),
                self.sim.events_processed,
                self.sim.pending(),
                stats.jobs_submitted,
                stats.jobs_succeeded,
                stats.jobs_failed,
                stats.submit_errors,
                stats.chaos_crashes,
                sorted(stats.per_user_completed.items()),
                sorted(
                    (u, round(w, 6))
                    for u, w in stats.per_user_wait_sum.items()
                ),
                health.total_blocks,
                health.missing_blocks,
                health.under_replicated,
                health.corrupt_replicas,
            )
        )
        return hashlib.sha256(payload.encode()).hexdigest()

    def close(self) -> None:
        self.mr.close()


def run_campus(scenario: CampusScenario) -> CampusReport:
    """Run every course cluster to completion (sequentially: clusters
    are independent simulations, and one at a time bounds memory)."""
    report = CampusReport(
        scenario=scenario.name,
        num_students=scenario.num_students,
        num_clusters=scenario.num_clusters,
    )
    for index in range(scenario.num_clusters):
        run = CampusClusterRun(scenario, index)
        try:
            report.clusters.append(run.run_to_completion())
        finally:
            run.close()
    return report
