"""Data behind the paper's two figures.

Figure 1 contrasts the two cluster architectures; since the original is
a diagram, the reproduction target is the *claim the diagram makes*:
co-locating storage with compute scales data-intensive scans, while the
shared parallel store saturates.  :func:`figure1_scan_sweep` produces
that as a data series (and the bench renders it).

Figure 2 is the layered HDFS/MapReduce integration picture;
:func:`figure2_integration_text` regenerates its content from a live
cluster via :func:`repro.mapreduce.webui.render_integration_view`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cluster.builder import build_hadoop_cluster, build_hpc_cluster
from repro.cluster.hardware import NodeSpec
from repro.core.platforms import TeachingPlatform, build_teaching_cluster
from repro.datasets.zipf_text import ZipfTextGenerator
from repro.jobs.wordcount import WordCountWithCombinerJob
from repro.mapreduce.webui import render_integration_view
from repro.util.rng import RngStream
from repro.util.units import GB, MB


@dataclass(frozen=True)
class ScanPoint:
    """One sweep point: both architectures scanning the same data."""

    num_nodes: int
    data_bytes: int
    hpc_seconds: float
    hadoop_seconds: float

    @property
    def hadoop_speedup(self) -> float:
        return self.hpc_seconds / self.hadoop_seconds if self.hadoop_seconds else 0.0


def figure1_scan_sweep(
    node_counts: tuple[int, ...] = (4, 8, 16, 32, 64, 128),
    data_bytes: int = 10 * 1024 * GB,
    storage_aggregate_bw: float = 4_000 * MB,
    spec: NodeSpec | None = None,
) -> list[ScanPoint]:
    """Sweep a full-data scan over both Figure-1 architectures.

    The HPC curve flattens once the parallel store's aggregate
    bandwidth saturates (its ``saturation_point``); the Hadoop curve
    keeps scaling because every added node brings its own disk.
    """
    spec = spec or NodeSpec()
    points = []
    for n in node_counts:
        hpc = build_hpc_cluster(
            num_compute=n,
            storage_aggregate_bw=storage_aggregate_bw,
            spec=NodeSpec(
                cores=spec.cores,
                ram_bytes=spec.ram_bytes,
                disk_bytes=spec.disk_bytes,
                disk_read_bw=spec.disk_read_bw,
                disk_write_bw=spec.disk_write_bw,
                nic_bw=spec.nic_bw,
            ),
        )
        hadoop = build_hadoop_cluster(num_workers=n, spec=spec)
        points.append(
            ScanPoint(
                num_nodes=n,
                data_bytes=data_bytes,
                hpc_seconds=hpc.scan_time(data_bytes),
                hadoop_seconds=hadoop.scan_time(data_bytes),
            )
        )
    return points


def figure2_integration_text(
    platform: TeachingPlatform | None = None, seed: int = 0
) -> str:
    """Regenerate Figure 2's content from a live cluster.

    Loads a small file, runs WordCount over it, and renders the four
    layers of the figure: HDFS abstraction, NameNode block metadata,
    JobTracker placement decisions, and the per-node ``blk_xxx``
    physical view.
    """
    platform = platform or build_teaching_cluster(
        num_workers=4, seed=seed, block_size=2048
    )
    text = ZipfTextGenerator(
        RngStream(seed=seed).child("figure2"), vocab_size=200
    ).text(1200)
    platform.put_text("/user/demo/file01.txt", text)
    running = platform.mr.submit(
        WordCountWithCombinerJob(), "/user/demo/file01.txt", "/user/demo/out"
    )
    platform.mr.wait_for_job(running)
    return render_integration_view(
        platform.mr, path="/user/demo", running=running
    )
