"""The four versions of the Hadoop MapReduce module (Section II).

This is the paper's actual contribution — a curriculum refined over
four offerings — encoded as data so benchmarks and docs can cite it and
tests can sanity-check its internal consistency (hours, assignment
wiring, platform choices).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.util.textable import TextTable


@dataclass(frozen=True)
class Lecture:
    """One class meeting (the course met for 75-minute lectures)."""

    title: str
    kind: str  # "lecture" | "lab"
    topic: str


@dataclass(frozen=True)
class ModuleVersion:
    """One offering of the module."""

    version: int
    term: str
    format: str
    lectures: tuple[Lecture, ...]
    assignment_ids: tuple[str, ...]
    platform_keys: tuple[str, ...]
    issues: tuple[str, ...] = ()
    changes: tuple[str, ...] = ()

    @property
    def num_sessions(self) -> int:
        return len(self.lectures)

    @property
    def num_labs(self) -> int:
        return sum(1 for lec in self.lectures if lec.kind == "lab")


MODULE_VERSIONS: tuple[ModuleVersion, ...] = (
    ModuleVersion(
        version=1,
        term="Fall 2012",
        format="5 of 21 lectures in the distributed-computing course",
        lectures=(
            Lecture("Basic MapReduce concepts", "lecture", "mapreduce"),
            Lecture("MapReduce in-class lab (WordCount)", "lab", "mapreduce"),
            Lecture("HDFS", "lecture", "hdfs"),
            Lecture("HDFS in-class lab", "lab", "hdfs"),
            Lecture("Advanced MapReduce optimization", "lecture", "mapreduce"),
        ),
        assignment_ids=("v1-top-word", "v1-google-trace"),
        platform_keys=("vm", "dedicated"),
        issues=(
            "SSH-tunnelled VM GUIs over wireless were unusably slow",
            "deadline congestion slowed the shared cluster to a crawl",
            "leaky student jobs crashed TaskTracker and DataNode daemons",
            "restart took 15+ minutes of block integrity checking",
            "resubmissions during recovery created under-replicated blocks",
            "the shared cluster ended the term corrupted; ~1/3 finished A2",
        ),
    ),
    ModuleVersion(
        version=2,
        term="Spring 2013",
        format="5 lectures; programming API separated from infrastructure",
        lectures=(
            Lecture("MapReduce programming API", "lecture", "mapreduce"),
            Lecture("MapReduce lab (serial, no HDFS)", "lab", "mapreduce"),
            Lecture("HDFS and data locality", "lecture", "hdfs"),
            Lecture("myHadoop cluster lab", "lab", "hdfs"),
            Lecture("Advanced MapReduce optimization", "lecture", "mapreduce"),
        ),
        assignment_ids=("v2-movielens", "v2-yahoo-hdfs"),
        platform_keys=("serial", "myhadoop"),
        issues=(
            "Eclipse-over-X11 needed too much wireless bandwidth",
            "myHadoop path misconfiguration was the top error source",
            "ghost daemons from unstopped clusters blocked ports",
        ),
        changes=(
            "dropped the shared dedicated cluster for per-student "
            "myHadoop clusters on the supercomputer",
            "assignment 1 became serial/no-HDFS to isolate the "
            "programming model",
            "all students completed both assignments on time",
        ),
    ),
    ModuleVersion(
        version=3,
        term="Summer 2013 (REU)",
        format="one four-hour training session",
        lectures=(
            Lecture("MapReduce (compressed)", "lecture", "mapreduce"),
            Lecture("HDFS (compressed)", "lecture", "hdfs"),
            Lecture("Hands-on: WordCount + airline delay", "lab", "mapreduce"),
            Lecture("Hands-on: myHadoop cluster setup", "lab", "hdfs"),
        ),
        assignment_ids=(),
        platform_keys=("serial", "myhadoop"),
        changes=(
            "command-line-only workflow with a detailed tutorial handout",
            "pre-modified myHadoop scripts needing almost no edits",
            "feedback: easier setup, more handout detail, slower pace",
        ),
    ),
    ModuleVersion(
        version=4,
        term="Fall 2013",
        format="7 lectures (labs doubled), plus HBase/Hive overview",
        lectures=(
            Lecture("MapReduce programming API", "lecture", "mapreduce"),
            Lecture("MapReduce lab I", "lab", "mapreduce"),
            Lecture("MapReduce lab II", "lab", "mapreduce"),
            Lecture("HDFS and data locality", "lecture", "hdfs"),
            Lecture("HDFS/myHadoop lab I", "lab", "hdfs"),
            Lecture("HDFS/myHadoop lab II", "lab", "hdfs"),
            Lecture("HBase/Hive and the wider ecosystem", "lecture", "ecosystem"),
        ),
        assignment_ids=("v2-movielens", "v2-yahoo-hdfs"),
        platform_keys=("serial", "myhadoop"),
        changes=(
            "exact required directory structure + compile/package scripts",
            "lab hours doubled on student feedback",
            "survey evaluation executed (Tables I-IV)",
        ),
    ),
)


def module_history_table() -> TextTable:
    """The evolution at a glance."""
    table = TextTable(
        ["Version", "Term", "Sessions", "Labs", "Assignments", "Platforms"],
        title="Hadoop MapReduce module: four offerings",
    )
    for version in MODULE_VERSIONS:
        table.add_row(
            [
                version.version,
                version.term,
                version.num_sessions,
                version.num_labs,
                len(version.assignment_ids),
                ",".join(version.platform_keys),
            ]
        )
    return table


def version_by_number(number: int) -> ModuleVersion:
    for version in MODULE_VERSIONS:
        if version.version == number:
            return version
    raise KeyError(f"no module version {number}")
