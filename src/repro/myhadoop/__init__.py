"""myHadoop-on-PBS: dynamic per-student Hadoop clusters.

The paper's eventual platform: "the myHadoop scripts ... allowed
students to have their own Hadoop clusters running on the supercomputer
without any additional administrative support."  This package models
that workflow and its sharp edges:

- :mod:`~repro.myhadoop.pbs` — a PBS-like batch scheduler with
  reservations, priority preemption (research jobs bump students) and
  the 15-minute node cleanup sweep;
- :mod:`~repro.myhadoop.provision` — the myHadoop provisioner: config
  validation (the wrong-path student errors), daemon port binding, ghost
  daemons from un-stopped clusters, and the no-file-locking constraint
  that rules out persistent HDFS;
- :mod:`~repro.myhadoop.submission` — the batch submission script:
  stage in, run, export, stop.
"""

from repro.myhadoop.pbs import PbsScheduler, Reservation, ReservationState
from repro.myhadoop.provision import (
    MyHadoopConfig,
    MyHadoopProvisioner,
    DynamicHadoopCluster,
    PortRegistry,
    DAEMON_PORTS,
)
from repro.myhadoop.submission import BatchSubmission, SubmissionResult

__all__ = [
    "PbsScheduler",
    "Reservation",
    "ReservationState",
    "MyHadoopConfig",
    "MyHadoopProvisioner",
    "DynamicHadoopCluster",
    "PortRegistry",
    "DAEMON_PORTS",
    "BatchSubmission",
    "SubmissionResult",
]
