"""The myHadoop provisioner: per-user dynamic Hadoop clusters.

Models Section II.B's workflow and every failure mode it reports:

- configuration validation — "the most common [errors] were incorrect
  paths to the Hadoop MapReduce installation directory, data nodes'
  local directory, and log directory" (:class:`MyHadoopConfig.validate`);
- daemon port binding — "if students exited from their reserved nodes
  without explicitly stopping Hadoop, the Hadoop daemons became orphaned
  while still bound to the ports for Hadoop communication", blocking the
  next student's startup (:class:`PortRegistry`, ghost daemons);
- the same-student escape hatch — "if the orphaned daemons belonged to
  the same student, they could be terminated individually"
  (:meth:`MyHadoopProvisioner.kill_user_daemons`);
- no persistent HDFS — Clemson's parallel storage "is not configured
  with file-locking support, [so] all Hadoop data storage must reside on
  the local hard drive of the scheduled compute nodes".
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cluster.builder import HadoopHardware
from repro.cluster.network import NetworkModel
from repro.cluster.storage import ParallelFileSystem
from repro.cluster.topology import ClusterTopology
from repro.hdfs.cluster import HdfsCluster
from repro.hdfs.config import HdfsConfig
from repro.mapreduce.cluster import MapReduceCluster
from repro.mapreduce.config import MapReduceConfig
from repro.myhadoop.pbs import PbsScheduler, Reservation
from repro.sim.engine import Simulation
from repro.util.errors import BadPathError, ConfigError, PortInUseError
from repro.util.rng import derive_seed

#: The Hadoop-1 daemon ports myHadoop must bind on every node.
DAEMON_PORTS: tuple[int, ...] = (
    9000,  # fs.default.name (NameNode RPC)
    50010,  # DataNode data transfer
    50030,  # JobTracker web UI
    50060,  # TaskTracker web UI
    50070,  # NameNode web UI
)

#: Paths a correct student configuration must use (the course's
#: "exact directory structure" from Version 4).
EXPECTED_LAYOUT = {
    "hadoop_home": "/home/{user}/hadoop-1.2.1",
    "data_dir": "/scratch/{user}/hdfs-data",
    "log_dir": "/scratch/{user}/hadoop-logs",
}


@dataclass
class MyHadoopConfig:
    """A student's myHadoop configuration."""

    user: str
    num_nodes: int = 8
    hadoop_home: str = ""
    data_dir: str = ""
    log_dir: str = ""
    persistent: bool = False  # persist HDFS on the parallel file system
    hdfs: HdfsConfig = field(
        default_factory=lambda: HdfsConfig(block_size=64 * 1024, replication=2)
    )

    def __post_init__(self) -> None:
        # Fill correct defaults; tests inject wrong paths deliberately.
        if not self.hadoop_home:
            self.hadoop_home = EXPECTED_LAYOUT["hadoop_home"].format(user=self.user)
        if not self.data_dir:
            self.data_dir = EXPECTED_LAYOUT["data_dir"].format(user=self.user)
        if not self.log_dir:
            self.log_dir = EXPECTED_LAYOUT["log_dir"].format(user=self.user)

    def validate(self, pfs: ParallelFileSystem | None = None) -> None:
        """Reject the classic path mistakes before any daemon starts."""
        expected_home = EXPECTED_LAYOUT["hadoop_home"].format(user=self.user)
        if self.hadoop_home != expected_home:
            raise BadPathError(
                f"HADOOP_HOME {self.hadoop_home!r} not found "
                f"(expected {expected_home!r})"
            )
        for name in ("data_dir", "log_dir"):
            value = getattr(self, name)
            if not value.startswith("/scratch/"):
                raise BadPathError(
                    f"{name} {value!r} must live on node-local /scratch "
                    f"(the parallel file system has no file locking)"
                )
            if f"/{self.user}/" not in value + "/":
                raise BadPathError(
                    f"{name} {value!r} does not belong to user {self.user!r}"
                )
        if self.persistent:
            if pfs is None or not pfs.supports_file_locking:
                raise ConfigError(
                    "persistent HDFS requires file-locking support on the "
                    "parallel file system, which this machine does not have"
                )


class PortRegistry:
    """Who has which daemon port bound on which node."""

    def __init__(self) -> None:
        self._bound: dict[tuple[str, int], str] = {}

    def bind(self, node: str, port: int, owner: str) -> None:
        key = (node, port)
        holder = self._bound.get(key)
        if holder is not None:
            raise PortInUseError(
                f"port {port} on {node} is already bound by {holder!r}"
            )
        self._bound[key] = owner

    def release(self, node: str, port: int, owner: str) -> bool:
        key = (node, port)
        if self._bound.get(key) == owner:
            del self._bound[key]
            return True
        return False

    def release_all(self, node: str, owner: str | None = None) -> int:
        """Release every port on a node (optionally only one owner's)."""
        keys = [
            k
            for k, holder in self._bound.items()
            if k[0] == node and (owner is None or holder == owner)
        ]
        for key in keys:
            del self._bound[key]
        return len(keys)

    def owner_of(self, node: str, port: int) -> str | None:
        return self._bound.get((node, port))

    def bound_on(self, node: str) -> dict[int, str]:
        return {
            port: holder
            for (n, port), holder in self._bound.items()
            if n == node
        }


@dataclass
class DynamicHadoopCluster:
    """A student's live Hadoop cluster on reserved nodes."""

    user: str
    reservation: Reservation
    config: MyHadoopConfig
    mr: MapReduceCluster
    node_names: list[str]
    started_at: float
    stopped: bool = False
    abandoned: bool = False  # exited without stop-all.sh: ghost daemons

    @property
    def hdfs(self) -> HdfsCluster:
        return self.mr.hdfs


class MyHadoopProvisioner:
    """Creates and tears down per-user Hadoop clusters on PBS nodes."""

    def __init__(
        self,
        sim: Simulation,
        scheduler: PbsScheduler,
        pfs: ParallelFileSystem | None = None,
        mr_config: MapReduceConfig | None = None,
    ):
        self.sim = sim
        self.scheduler = scheduler
        self.pfs = pfs
        self.mr_config = mr_config or MapReduceConfig()
        self.ports = PortRegistry()
        #: Live (or ghost) clusters by node name.
        self._clusters_on_node: dict[str, DynamicHadoopCluster] = {}
        self.ghost_daemon_conflicts = 0
        scheduler.cleanup_hooks.append(self._cleanup_node)

    # ------------------------------------------------------------------
    def start_cluster(
        self, reservation: Reservation, config: MyHadoopConfig
    ) -> DynamicHadoopCluster:
        """Run the (modified) myHadoop start sequence on reserved nodes."""
        if not reservation.active:
            raise ConfigError(
                f"reservation {reservation.job_id} is not running"
            )
        if reservation.user != config.user:
            raise ConfigError("configuration user does not match reservation")
        config.validate(self.pfs)
        nodes = reservation.nodes
        if config.num_nodes > len(nodes):
            raise ConfigError(
                f"config wants {config.num_nodes} nodes; reservation has "
                f"{len(nodes)}"
            )
        use_nodes = nodes[: config.num_nodes]

        # Bind daemon ports first — this is where ghost daemons bite.
        bound: list[tuple[str, int]] = []
        try:
            for node in use_nodes:
                for port in DAEMON_PORTS:
                    self.ports.bind(node.name, port, config.user)
                    bound.append((node.name, port))
        except PortInUseError:
            for node_name, port in bound:
                self.ports.release(node_name, port, config.user)
            self.ghost_daemon_conflicts += 1
            raise

        # Build the cluster over the reserved hardware.
        sub_topology = ClusterTopology()
        for node in use_nodes:
            sub_topology.add_node(node, node.rack_name)
        hardware = HadoopHardware(
            topology=sub_topology,
            network=NetworkModel(
                topology=sub_topology, nic_bw=use_nodes[0].spec.nic_bw
            ),
        )
        hdfs = HdfsCluster(
            hardware=hardware,
            config=config.hdfs,
            sim=self.sim,
            # A stable per-user seed (Python's hash() is randomized
            # per process and would break replayability).
            seed=derive_seed(0, "myhadoop", config.user) % (2**31),
        )
        mr = MapReduceCluster(hdfs=hdfs, mr_config=self.mr_config)
        cluster = DynamicHadoopCluster(
            user=config.user,
            reservation=reservation,
            config=config,
            mr=mr,
            node_names=[n.name for n in use_nodes],
            started_at=self.sim.now,
        )
        for name in cluster.node_names:
            self._clusters_on_node[name] = cluster
        self.sim.bus.publish(
            "myhadoop.started",
            self.sim.now,
            user=config.user,
            nodes=cluster.node_names,
        )
        return cluster

    # ------------------------------------------------------------------
    def stop_cluster(self, cluster: DynamicHadoopCluster) -> None:
        """``stop-all.sh`` + scratch cleanup: the polite exit."""
        if cluster.stopped:
            return
        self._tear_down(cluster)
        cluster.stopped = True
        self.sim.bus.publish(
            "myhadoop.stopped", self.sim.now, user=cluster.user
        )

    def abandon_cluster(self, cluster: DynamicHadoopCluster) -> None:
        """The student logs out without stopping Hadoop.

        Daemons stay up and bound to their ports — ghosts — until the
        scheduler's cleanup sweep reaches the node or the owner kills
        them by hand.
        """
        cluster.abandoned = True
        self.sim.bus.publish(
            "myhadoop.abandoned", self.sim.now, user=cluster.user
        )

    def kill_user_daemons(self, user: str, node_names: list[str]) -> int:
        """Kill one's *own* orphaned daemons (the same-student fix)."""
        killed = 0
        for name in node_names:
            cluster = self._clusters_on_node.get(name)
            if cluster is not None and cluster.user == user:
                self._tear_down(cluster)
                cluster.stopped = True
                killed += 1
        return killed

    def ghost_daemons_on(self, node_name: str) -> dict[int, str]:
        """Ports still bound on a node by clusters no longer active."""
        cluster = self._clusters_on_node.get(node_name)
        if cluster is None or (cluster.reservation.active and not cluster.abandoned):
            return {}
        return self.ports.bound_on(node_name)

    # ------------------------------------------------------------------
    def _tear_down(self, cluster: DynamicHadoopCluster) -> None:
        for name in cluster.node_names:
            # Stop daemons and free the node-local scratch space.
            tracker = cluster.mr.tasktrackers.get(name)
            if tracker is not None and tracker.is_serving:
                tracker.stop()
            datanode = cluster.hdfs.datanodes.get(name)
            if datanode is not None:
                if datanode.is_serving:
                    datanode.stop()
                for stored in datanode.blocks.values():
                    datanode.node.disk.release(stored.length)
                datanode.blocks.clear()
            self.ports.release_all(name, cluster.user)
            if self._clusters_on_node.get(name) is cluster:
                del self._clusters_on_node[name]

    def _cleanup_node(self, node_name: str) -> None:
        """The scheduler's sweep: scrub ghosts from a free node."""
        cluster = self._clusters_on_node.get(node_name)
        if cluster is None:
            return
        if cluster.reservation.active and not cluster.abandoned:
            return
        self._tear_down(cluster)
        cluster.stopped = True
        self.sim.bus.publish(
            "myhadoop.ghosts_cleaned",
            self.sim.now,
            node=node_name,
            user=cluster.user,
        )
