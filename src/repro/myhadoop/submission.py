"""The batch submission script, as a workflow object.

Section III.D: "The submission script also includes Hadoop commands to
automatically create HDFS directories, load data from the Linux file
system, check HDFS' health status, execute an example MapReduce job,
and export output data back to students' home directories ... the
scheduler will record all outputs from these commands, so that the
students can review and analyze the performance of their Hadoop
platforms."

:class:`BatchSubmission` is that script; :class:`SubmissionResult` is
the recorded output.  An optional ``sleep`` turns the batch allocation
into an interactive one, exactly as the paper describes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.hdfs.fsck import fsck
from repro.hdfs.localfs import LinuxFileSystem
from repro.mapreduce.api import Job
from repro.mapreduce.job import JobReport
from repro.myhadoop.pbs import PbsScheduler, Reservation
from repro.myhadoop.provision import (
    DynamicHadoopCluster,
    MyHadoopConfig,
    MyHadoopProvisioner,
)
from repro.util.errors import ProvisionError, ReproError


@dataclass
class StepRecord:
    """One command's recorded outcome in the PBS output file."""

    name: str
    started: float
    finished: float
    ok: bool
    detail: str = ""

    @property
    def elapsed(self) -> float:
        return self.finished - self.started


@dataclass
class SubmissionResult:
    """Everything the scheduler's output file would contain."""

    user: str
    steps: list[StepRecord] = field(default_factory=list)
    job_reports: list[JobReport] = field(default_factory=list)
    succeeded: bool = False
    failure: str | None = None

    def render_log(self) -> str:
        lines = [f"=== PBS output for {self.user} ==="]
        for step in self.steps:
            status = "OK" if step.ok else "FAILED"
            lines.append(
                f"[{step.started:9.1f}s +{step.elapsed:7.1f}s] "
                f"{step.name}: {status}"
                + (f" ({step.detail})" if step.detail else "")
            )
        lines.append(
            f"=== submission {'succeeded' if self.succeeded else 'FAILED'} ==="
        )
        return "\n".join(lines)


@dataclass
class JobSpec:
    """One MapReduce job the submission runs."""

    job: Job
    input_hdfs: str
    output_hdfs: str
    export_local: str | None = None  # -copyToLocal destination


class BatchSubmission:
    """The modified-myHadoop submission script."""

    def __init__(
        self,
        scheduler: PbsScheduler,
        provisioner: MyHadoopProvisioner,
        config: MyHadoopConfig,
        home: LinuxFileSystem,
        walltime: float = 2 * 3600.0,
    ):
        self.scheduler = scheduler
        self.provisioner = provisioner
        self.config = config
        self.home = home
        self.walltime = walltime
        #: (local path in home dir, HDFS destination) staging pairs.
        self.stage_in: list[tuple[str, str]] = []
        self.jobs: list[JobSpec] = []
        #: Seconds of interactive "sleep" after the jobs (Section III.D).
        self.sleep_seconds: float = 0.0
        #: Whether the script runs stop-all.sh at the end (forgetting it
        #: is how ghost daemons are born).
        self.stop_cluster_at_end: bool = True

    def add_stage_in(self, local_path: str, hdfs_path: str) -> None:
        self.stage_in.append((local_path, hdfs_path))

    def add_job(
        self,
        job: Job,
        input_hdfs: str,
        output_hdfs: str,
        export_local: str | None = None,
    ) -> None:
        self.jobs.append(JobSpec(job, input_hdfs, output_hdfs, export_local))

    # ------------------------------------------------------------------
    def run(self, reservation: Reservation | None = None) -> SubmissionResult:
        """Execute the whole script under a (new or given) reservation."""
        sim = self.provisioner.sim
        result = SubmissionResult(user=self.config.user)

        def record(name: str, started: float, ok: bool, detail: str = "") -> None:
            result.steps.append(
                StepRecord(
                    name=name,
                    started=started,
                    finished=sim.now,
                    ok=ok,
                    detail=detail,
                )
            )

        if reservation is None:
            reservation = self.scheduler.qsub(
                user=self.config.user,
                num_nodes=self.config.num_nodes,
                walltime=self.walltime,
            )
        cluster: DynamicHadoopCluster | None = None
        try:
            started = sim.now
            cluster = self.provisioner.start_cluster(reservation, self.config)
            record(
                "myhadoop-configure + start-all.sh",
                started,
                True,
                f"nodes={','.join(cluster.node_names)}",
            )

            client = cluster.mr.client()
            for local_path, hdfs_path in self.stage_in:
                started = sim.now
                write = client.copy_from_local(self.home, local_path, hdfs_path)
                record(
                    f"hadoop fs -put {local_path} {hdfs_path}",
                    started,
                    True,
                    f"{write.length} bytes, {write.blocks} blocks",
                )

            started = sim.now
            health = fsck(cluster.hdfs.namenode)
            record("hadoop fsck /", started, health.healthy, health.status)

            for spec in self.jobs:
                started = sim.now
                # A batch job can only wait out the reservation: when the
                # walltime expires PBS takes the nodes back, finished or
                # not (a wedged cluster fails the submission, it does not
                # hang the student forever).
                reservation_end = (reservation.start_time or sim.now) + min(
                    self.walltime, reservation.walltime
                )
                remaining = max(0.0, reservation_end - sim.now)
                running = cluster.mr.submit(
                    spec.job, spec.input_hdfs, spec.output_hdfs
                )
                slice_len = 60.0
                while not running.finished and sim.now < reservation_end:
                    cluster.mr.wait_for_job(
                        running,
                        timeout=min(slice_len, reservation_end - sim.now),
                    )
                    if running.finished:
                        break
                    if not any(
                        t.is_serving
                        for t in cluster.mr.tasktrackers.values()
                    ):
                        # Every daemon in this cluster is dead (the heap
                        # leak took them all): the job can never finish.
                        break
                if not running.finished:
                    reason = (
                        "all cluster daemons died"
                        if not any(
                            t.is_serving
                            for t in cluster.mr.tasktrackers.values()
                        )
                        else "walltime expired before the job finished"
                    )
                    record(
                        f"hadoop jar {spec.job.name}.jar", started, False, reason
                    )
                    result.failure = reason
                    return result
                report = running.report()
                result.job_reports.append(report)
                record(
                    f"hadoop jar {spec.job.name}.jar",
                    started,
                    report.succeeded,
                    f"maps={report.num_maps} reduces={report.num_reduces}",
                )
                if not report.succeeded:
                    result.failure = report.failure_reason
                    return result
                if spec.export_local is not None:
                    started = sim.now
                    pairs = cluster.mr.read_output(spec.output_hdfs)
                    text = "\n".join(f"{k}\t{v}" for k, v in pairs) + "\n"
                    self.home.write_file(spec.export_local, text)
                    record(
                        f"hadoop fs -copyToLocal {spec.output_hdfs} "
                        f"{spec.export_local}",
                        started,
                        True,
                        f"{len(pairs)} records",
                    )

            if self.sleep_seconds > 0:
                started = sim.now
                sim.run_for(self.sleep_seconds)
                record("sleep (interactive window)", started, True)

            result.succeeded = True
            return result
        except ReproError as exc:
            record(type(exc).__name__, sim.now, False, str(exc))
            result.failure = str(exc)
            return result
        finally:
            if cluster is not None:
                if self.stop_cluster_at_end:
                    started = sim.now
                    self.provisioner.stop_cluster(cluster)
                    record("stop-all.sh + scratch cleanup", started, True)
                else:
                    self.provisioner.abandon_cluster(cluster)
            if reservation.active:
                self.scheduler.release(reservation)
