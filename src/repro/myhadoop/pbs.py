"""A PBS-like batch scheduler over the shared supercomputer.

Models the scheduling behaviours the paper leans on:

- students reserve N nodes for a walltime (``qsub``);
- "their jobs can be preempted from the system by higher priority
  research jobs asking for more computational resources";
- when a reservation ends, a periodic *cleanup sweep* (every 15 minutes)
  scrubs orphaned daemons off released nodes — which is why a student
  hitting a ghost-daemon port conflict "would have to wait 15 minutes
  for the scheduler to clean up these daemons".
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Callable

from repro.cluster.hardware import Node
from repro.cluster.topology import ClusterTopology
from repro.sim.engine import Simulation
from repro.util.errors import ReservationError
from repro.util.units import MINUTE


class ReservationState(enum.Enum):
    QUEUED = "queued"
    RUNNING = "running"
    COMPLETED = "completed"
    EXPIRED = "expired"  # walltime exceeded
    PREEMPTED = "preempted"
    CANCELLED = "cancelled"


@dataclass
class Reservation:
    """One ``qsub`` allocation."""

    job_id: str
    user: str
    num_nodes: int
    walltime: float
    priority: int = 0  # students 0; research jobs higher
    state: ReservationState = ReservationState.QUEUED
    nodes: list[Node] = field(default_factory=list)
    submit_time: float = 0.0
    start_time: float | None = None
    end_time: float | None = None
    #: Called when the reservation ends for any reason (nodes released).
    on_release: Callable[["Reservation", str], None] | None = None

    @property
    def active(self) -> bool:
        return self.state == ReservationState.RUNNING

    def node_names(self) -> list[str]:
        return [n.name for n in self.nodes]


class PbsScheduler:
    """FIFO-with-priority-preemption scheduler over a node pool."""

    def __init__(
        self,
        sim: Simulation,
        topology: ClusterTopology,
        cleanup_interval: float = 15 * MINUTE,
    ):
        self.sim = sim
        self.topology = topology
        self.cleanup_interval = cleanup_interval
        self._free: list[str] = [n.name for n in topology.nodes()]
        self._queue: list[Reservation] = []
        self._running: dict[str, Reservation] = {}
        self._seq = itertools.count(1)
        #: Cleanup hooks: called with a node name during each sweep for
        #: every free node (the provisioner registers its daemon scrub).
        self.cleanup_hooks: list[Callable[[str], None]] = []
        self.cleanups_performed = 0
        self.sim.every(cleanup_interval, self._cleanup_sweep)

    # ------------------------------------------------------------------
    def qsub(
        self,
        user: str,
        num_nodes: int,
        walltime: float,
        priority: int = 0,
        on_release: Callable[[Reservation, str], None] | None = None,
    ) -> Reservation:
        """Submit a reservation request."""
        if num_nodes < 1:
            raise ReservationError("num_nodes must be >= 1")
        if num_nodes > len(self.topology):
            raise ReservationError(
                f"requested {num_nodes} nodes; the machine has "
                f"{len(self.topology)}"
            )
        if walltime <= 0:
            raise ReservationError("walltime must be positive")
        reservation = Reservation(
            job_id=f"pbs.{next(self._seq)}",
            user=user,
            num_nodes=num_nodes,
            walltime=walltime,
            priority=priority,
            submit_time=self.sim.now,
            on_release=on_release,
        )
        self._queue.append(reservation)
        self._try_schedule()
        return reservation

    def qstat(self) -> list[Reservation]:
        return [*self._running.values(), *self._queue]

    def qdel(self, job_id: str) -> bool:
        for reservation in self._queue:
            if reservation.job_id == job_id:
                reservation.state = ReservationState.CANCELLED
                self._queue.remove(reservation)
                return True
        reservation = self._running.get(job_id)
        if reservation is not None:
            self._end(reservation, ReservationState.CANCELLED)
            return True
        return False

    def free_nodes(self) -> int:
        return len(self._free)

    # ------------------------------------------------------------------
    def _try_schedule(self) -> None:
        # Highest priority first; FIFO within a priority level.
        self._queue.sort(key=lambda r: (-r.priority, r.submit_time))
        progressed = True
        while progressed:
            progressed = False
            for reservation in list(self._queue):
                if len(self._free) >= reservation.num_nodes:
                    self._start(reservation)
                    progressed = True
                elif reservation.priority > 0:
                    # Research job: preempt enough student reservations.
                    if self._preempt_for(reservation):
                        progressed = True
                        if len(self._free) >= reservation.num_nodes:
                            self._start(reservation)

    def _preempt_for(self, incoming: Reservation) -> bool:
        victims = sorted(
            (
                r
                for r in self._running.values()
                if r.priority < incoming.priority
            ),
            key=lambda r: r.start_time or 0.0,
        )
        preempted_any = False
        for victim in victims:
            if len(self._free) >= incoming.num_nodes:
                break
            self._end(victim, ReservationState.PREEMPTED)
            preempted_any = True
        return preempted_any

    def _start(self, reservation: Reservation) -> None:
        self._queue.remove(reservation)
        # LIFO allocation: recently freed nodes are handed out first —
        # which is precisely how one student inherits another's ghost
        # daemons "immediately afterward" (Section II.B).
        names = [self._free.pop() for _ in range(reservation.num_nodes)]
        reservation.nodes = [self.topology.node(n) for n in names]
        reservation.state = ReservationState.RUNNING
        reservation.start_time = self.sim.now
        self._running[reservation.job_id] = reservation
        self.sim.schedule(
            reservation.walltime, self._walltime_expired, reservation
        )
        self.sim.bus.publish(
            "pbs.started",
            self.sim.now,
            job_id=reservation.job_id,
            user=reservation.user,
            nodes=names,
        )

    def _walltime_expired(self, reservation: Reservation) -> None:
        if reservation.state == ReservationState.RUNNING:
            self._end(reservation, ReservationState.EXPIRED)

    def release(self, reservation: Reservation) -> None:
        """The user's script finished early (normal completion)."""
        if reservation.state == ReservationState.RUNNING:
            self._end(reservation, ReservationState.COMPLETED)

    def _end(self, reservation: Reservation, state: ReservationState) -> None:
        reservation.state = state
        reservation.end_time = self.sim.now
        self._running.pop(reservation.job_id, None)
        if reservation.on_release is not None:
            reservation.on_release(reservation, state.value)
        # Nodes go straight back to the pool — possibly still dirty with
        # the previous user's daemons (the ghost-daemon hazard).
        self._free.extend(reservation.node_names())
        reservation.nodes = []
        self.sim.bus.publish(
            "pbs.ended",
            self.sim.now,
            job_id=reservation.job_id,
            user=reservation.user,
            state=state.value,
        )
        self._try_schedule()

    # ------------------------------------------------------------------
    def _cleanup_sweep(self) -> None:
        """Scrub orphaned daemons cluster-wide.

        The sweep visits every node: a ghost daemon whose reservation
        ended is fair game even if the node has already been handed to
        another student — that student "would have to wait 15 minutes
        for the scheduler to clean up these daemons" (Section II.B).
        """
        self.cleanups_performed += 1
        for node in self.topology.nodes():
            for hook in self.cleanup_hooks:
                hook(node.name)
        self.sim.bus.publish(
            "pbs.cleanup", self.sim.now, free_nodes=len(self._free)
        )
